"""Benchmarks regenerating Figures 6, 7 and 8 (charge-loss model)."""

from repro.experiments import fig6_7_8


def test_fig6(benchmark):
    series = benchmark(fig6_7_8.fig6_series)
    print("\nFig 6 (Rowhammer TCL): first points", series[:5])
    assert all(tcl == k for k, tcl in series)


def test_fig7(benchmark):
    data = benchmark(fig6_7_8.fig7_series)
    print(
        f"\nFig 7: {len(data['device_points'])} device points; "
        f"fitted alpha {data['fitted_alpha']:.3f} <= cover "
        f"{data['clm_alpha']}"
    )
    by_time = {}
    for time_trc, tcl in data["device_points"]:
        by_time.setdefault(time_trc, []).append(tcl)
    for time_trc, tcls in sorted(by_time.items()):
        print(
            f"  t={time_trc:7.0f} tRC: TCL min {min(tcls):6.1f} "
            f"mean {sum(tcls) / len(tcls):6.1f} max {max(tcls):6.1f}"
        )
    assert data["fitted_alpha"] <= data["clm_alpha"]
    # RowPress headline: ~18x at 1 tREFI, ~156x at 9 tREFI on average.
    mean_1 = sum(by_time[162.0]) / len(by_time[162.0])
    mean_9 = sum(by_time[1462.0]) / len(by_time[1462.0])
    assert 13 < mean_1 < 23
    assert 120 < mean_9 < 195


def test_fig8(benchmark):
    data = benchmark(fig6_7_8.fig8_series)
    print(f"\nFig 8: CLM alpha {data['clm_alpha']:.3f}; "
          f"power fit a={data['power_fit'][0]:.3f} b={data['power_fit'][1]:.3f}")
    print("  time(tRC)  data  CLM  power-fit")
    for (t, tcl), (_, clm), (_, power) in zip(
        data["data_points"], data["clm_line"], data["power_line"]
    ):
        print(f"  {t:9.2f}  {tcl:.3f}  {clm:.3f}  {power:.3f}")
    assert abs(data["clm_alpha"] - data["paper_alpha"]) < 1e-9
    # CLM covers every data point; the power fit crosses through them.
    for (t, tcl), (_, clm) in zip(data["data_points"], data["clm_line"]):
        assert clm >= tcl - 1e-9
