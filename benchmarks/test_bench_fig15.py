"""Benchmark regenerating Figure 15: scaling to lower TRH."""

from conftest import run_once

from repro.experiments import fig15


def test_fig15(benchmark, runner):
    data = run_once(benchmark, fig15.run, runner, quick=True)
    print("\nFig 15 (perf vs unprotected, TRH sweep):")
    for tracker, schemes in data.items():
        for scheme, series in schemes.items():
            cells = "  ".join(
                f"TRH={int(t)}:{v:.3f}" for t, v in series.items()
            )
            print(f"  {tracker:>8} {scheme:>10}  {cells}")
    for tracker in ("graphene", "para"):
        for trh in (4000.0, 2000.0, 1000.0):
            no_rp = data[tracker]["no-rp"][trh]
            express = data[tracker]["express"][trh]
            impress_p = data[tracker]["impress-p"][trh]
            # ImPress-P stays near the No-RP line; ExPress is the
            # costly one at every threshold.
            assert impress_p >= express - 0.01
            assert abs(impress_p - no_rp) < 0.06
