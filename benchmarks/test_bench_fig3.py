"""Benchmark regenerating Figure 3: performance vs tMRO per workload."""

from conftest import run_once

from repro.experiments import fig3


def test_fig3(benchmark, runner):
    series = run_once(benchmark, fig3.run, runner, quick=False)
    workloads = list(next(iter(series.values())))
    print("\nFig 3 (perf normalized to no-tMRO):")
    header = "  ".join(f"{t:>7.0f}" for t in series)
    print(f"{'workload':>16}  {header}")
    for name in workloads:
        cells = "  ".join(f"{series[t][name]:7.3f}" for t in series)
        print(f"{name:>16}  {cells}")
    # Shape: STREAM hurts at low tMRO, SPEC does not; both flat by 636.
    assert series[36.0]["STREAM (GMean)"] < 0.95
    assert series[36.0]["SPEC (GMean)"] > 0.93
    assert series[636.0]["STREAM (GMean)"] > 0.97
    assert (
        series[36.0]["STREAM (GMean)"]
        < series[186.0]["STREAM (GMean)"] + 0.02
    )
