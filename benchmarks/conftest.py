"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints
the rows/series the paper reports.  Simulation-backed benchmarks run a
single round (the workload sweep itself is the benchmark); analytic
benchmarks let pytest-benchmark time them normally.
"""

import pytest

from repro.experiments.common import SweepRunner
from repro.sim.config import SystemConfig

#: Requests per core for benchmark-scale simulations (see the
#: DEFAULT_REQUESTS note in repro.experiments.common for why this stays
#: in the contention-heavy window).
BENCH_REQUESTS = 800


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    """Shared sweep runner so benchmarks reuse cached baselines."""
    return SweepRunner(system=SystemConfig(), n_requests=BENCH_REQUESTS)


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution of an expensive sweep."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
