"""Benchmark regenerating Figure 13: scheme comparison per tracker."""

from conftest import run_once

from repro.experiments import fig13


def test_fig13(benchmark, runner):
    data = run_once(benchmark, fig13.run, runner, quick=False)
    print("\nFig 13 (perf normalized to No-RP, alpha=1):")
    for tracker, schemes in data.items():
        for scheme, rows in schemes.items():
            print(
                f"  {tracker:>8} {scheme:>10}  "
                f"SPEC {rows['SPEC (GMean)']:.3f}  "
                f"STREAM {rows['STREAM (GMean)']:.3f}"
            )
    for tracker in ("graphene", "para"):
        express = data[tracker]["express"]["STREAM (GMean)"]
        impress_n = data[tracker]["impress-n"]["STREAM (GMean)"]
        impress_p = data[tracker]["impress-p"]["STREAM (GMean)"]
        # Paper's ordering on stream: ImPress-P ~ No-RP > ImPress-N
        # (no tON limit) > ExPress (reduced row-buffer hits).
        assert impress_p > express
        assert impress_n > express
        assert impress_p > 0.95
    # MINT: ImPress-P identical to No-RP; ImPress-N (RFM-40) pays a
    # small RFM-rate cost.
    assert data["mint"]["impress-p"]["SPEC (GMean)"] > 0.97
    assert data["mint"]["impress-n"]["SPEC (GMean)"] <= 1.01
