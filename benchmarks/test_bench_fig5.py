"""Benchmark regenerating Figure 5: Graphene/PARA vs tMRO (ExPress)."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5(benchmark, runner):
    data = run_once(benchmark, fig5.run, runner, quick=True)
    print("\nFig 5 (geomean perf vs tMRO, ExPress-provisioned trackers):")
    for tracker, categories in data.items():
        for category, series in categories.items():
            cells = "  ".join(
                f"{('noMRO' if t == float('inf') else f'{t:.0f}')}:{v:.3f}"
                for t, v in series.items()
            )
            print(f"  {tracker:>8} {category:>6}  {cells}")
    for tracker in ("graphene", "para"):
        stream = data[tracker]["STREAM"]
        spec = data[tracker]["SPEC"]
        # Stream suffers at low tMRO; SPEC stays near 1 throughout.
        assert stream[36.0] < 0.97
        assert spec[36.0] > 0.9
        assert stream[636.0] > stream[36.0]
