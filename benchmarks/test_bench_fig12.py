"""Benchmark regenerating Figure 12: T* vs fractional counter bits."""

from repro.experiments import fig12


def test_fig12(benchmark):
    rows = benchmark(fig12.run)
    print("\nFig 12 (ImPress-P T* vs fraction bits):")
    print("  bits  analytic  verified")
    for row in rows:
        print(
            f"  {row['fraction_bits']:4d}  "
            f"{row['relative_threshold_analytic']:8.4f}  "
            f"{row['relative_threshold_verified']:8.4f}"
        )
    by_bits = {row["fraction_bits"]: row for row in rows}
    # Paper: 7 bits lossless, 0 bits degenerate to 0.5; the verifier's
    # exact search never does worse than the analytic bound.
    assert by_bits[7]["relative_threshold_verified"] == 1.0
    assert abs(by_bits[0]["relative_threshold_verified"] - 0.5) < 0.01
    for row in rows:
        assert (
            row["relative_threshold_verified"]
            >= row["relative_threshold_analytic"] - 1e-6
        )
