"""Benchmarks regenerating Figures 18 and 19 (attack-pattern slowdown)."""

from repro.experiments import fig18_19


def test_fig18(benchmark):
    series = benchmark(fig18_19.fig18_series)
    print("\nFig 18 (Graphene + ImPress-P slowdown vs K):")
    for trh, rows in series.items():
        values = {row["slowdown_pct"] for row in rows}
        print(f"  TRH={int(trh)}: {rows[0]['slowdown_pct']:.2f}% "
              f"(flat: {len(values) == 1})")
    # Paper: 0.2% / 0.4% / 0.8% for 4000/2000/1000, independent of K.
    assert series[4000.0][0]["slowdown_pct"] == 0.2
    assert series[2000.0][0]["slowdown_pct"] == 0.4
    assert series[1000.0][0]["slowdown_pct"] == 0.8
    for rows in series.values():
        assert len({row["slowdown_pct"] for row in rows}) == 1


def test_fig19(benchmark):
    series = benchmark(fig18_19.fig19_series)
    print("\nFig 19 (PARA + ImPress-P slowdown vs K):")
    for trh, rows in series.items():
        peak = max(row["slowdown_pct"] for row in rows)
        tail = rows[-1]["slowdown_pct"]
        print(f"  TRH={int(trh)}: peak {peak:.2f}%, K=100 {tail:.2f}%")
    # Paper: 4.76% at TRH 4000 (p=1/84), Rowhammer (K=0) most potent,
    # overhead decays once probability saturates.
    assert abs(series[4000.0][0]["slowdown_pct"] - 4.76) < 0.02
    for trh, rows in series.items():
        peak = max(row["slowdown_pct"] for row in rows)
        assert abs(rows[0]["slowdown_pct"] - peak) < 1e-9
        assert rows[-1]["slowdown_pct"] < rows[0]["slowdown_pct"] + 1e-9
