"""Benchmarks for Tables I-III and the storage comparison (Section VI-C)."""

from repro.experiments import tables


def test_table1(benchmark):
    values = benchmark(tables.table1)
    print("\nTable I (DRAM timings, ns):")
    for name, value in values.items():
        print(f"  {name:>8}: {value}")
    assert values["tRC"] == 48.0


def test_table2(benchmark):
    values = benchmark(tables.table2)
    print("\nTable II (baseline system):")
    for name, value in values.items():
        print(f"  {name:>20}: {value}")
    assert values["cores"] == 8


def test_table3(benchmark):
    rows = benchmark(tables.table3)
    print("\nTable III (scheme comparison):")
    header = ("scheme", "tON limit", "rel T*", "entries x", "in-DRAM ok")
    print("  " + "  ".join(f"{h:>12}" for h in header))
    for row in rows:
        print(
            f"  {row['scheme']:>12}  {str(row['limits_ton']):>12}  "
            f"{row['relative_threshold']:>12.2f}  "
            f"{row['entries_factor']:>12.2f}  "
            f"{str(row['in_dram_compatible']):>12}"
        )
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["impress-p"]["relative_threshold"] == 1.0
    assert by_scheme["impress-p"]["entries_factor"] == 1.0
    assert by_scheme["express"]["entries_factor"] == 2.0


def test_storage(benchmark):
    storage = benchmark(tables.storage_comparison)
    print("\nStorage (Section VI-C / Appendix A):")
    print(f"  Graphene entries: {storage['graphene_entries']}")
    print(f"  Graphene KiB/channel: "
          f"{ {k: round(v, 1) for k, v in storage['graphene_kib_per_channel'].items()} }")
    print(f"  Mithril entries: {storage['mithril_entries']}")
    print(f"  MINT bytes: {storage['mint_bytes']}")
    assert storage["graphene_entries"]["no-rp"] == 448
    assert storage["graphene_entries"]["express_a1"] == 896
    assert storage["mithril_entries"]["no-rp"] == 383
    assert storage["mithril_entries"]["impress-n_a1"] == 1545
    # ImPress-P's storage factor is ~1.25x vs the 2x of ExPress/ImPress-N.
    assert 1.2 < storage["graphene_impress_p_storage_factor"] < 1.3
