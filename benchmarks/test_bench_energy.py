"""Benchmark regenerating the Section VI-E energy comparison."""

from conftest import run_once

from repro.experiments import energy


def test_energy(benchmark, runner):
    data = run_once(benchmark, energy.run, runner, quick=True)
    share = data["baseline"]["activation_share"]
    print(f"\nEnergy (Section VI-E): baseline ACT share {share:.3f}")
    for tracker in ("graphene", "para"):
        for scheme, ratio in data[tracker].items():
            print(f"  {tracker:>8} {scheme:>10}  energy x{ratio:.3f}")
    # Paper: activations are ~11% of baseline DRAM energy; ExPress adds
    # 6-7% energy while ImPress-P adds 1-2%.
    assert 0.03 < share < 0.35
    for tracker in ("graphene", "para"):
        assert data[tracker]["express"] > data[tracker]["no-rp"]
        assert data[tracker]["impress-p"] < data[tracker]["express"]
        assert data[tracker]["impress-p"] < 1.1
