"""Benchmark regenerating Figure 4: relative T* vs tMRO."""

from repro.experiments import fig4


def test_fig4(benchmark):
    rows = benchmark(fig4.run)
    print("\nFig 4 (T* vs tMRO):")
    print("  tMRO(ns)  T*(measured)  T*(CLM)")
    for row in rows:
        print(
            f"  {row['tmro_ns']:8.0f}  "
            f"{row['relative_threshold_measured']:12.3f}  "
            f"{row['relative_threshold_clm']:7.3f}"
        )
    measured = {row["tmro_ns"]: row["relative_threshold_measured"]
                for row in rows}
    # Paper anchors: no reduction at tRAS, 0.62 at 186 ns, ~0.45 floor.
    assert measured[36.0] == 1.0
    assert abs(measured[186.0] - 0.62) < 0.01
    assert measured[636.0] < 0.5
