"""Benchmark regenerating Figure 14: demand vs mitigative activations."""

from conftest import run_once

from repro.experiments import fig14


def test_fig14(benchmark, runner):
    data = run_once(benchmark, fig14.run, runner, quick=True)
    print("\nFig 14 (ACTs relative to unprotected baseline):")
    for tracker, schemes in data.items():
        for scheme, acts in schemes.items():
            print(
                f"  {tracker:>8} {scheme:>10}  demand {acts['demand']:.3f}  "
                f"mitigative {acts['mitigative']:.3f}"
            )
    for tracker in ("graphene", "para"):
        # ExPress inflates demand ACTs (paper: +56%); ImPress-P does not.
        assert data[tracker]["express"]["demand"] > 1.15
        assert abs(data[tracker]["impress-p"]["demand"] - 1.0) < 0.05
        assert abs(data[tracker]["no-rp"]["demand"] - 1.0) < 0.03
    # PARA + ImPress-P pays in mitigative ACTs (paper: +12%) instead.
    assert (
        data["para"]["impress-p"]["mitigative"]
        > data["graphene"]["impress-p"]["mitigative"]
    )
