"""Benchmark regenerating Figure 16 (Appendix A): alpha sensitivity."""

from conftest import run_once

from repro.experiments import fig16


def test_fig16(benchmark, runner):
    data = run_once(benchmark, fig16.run, runner, quick=True)
    print("\nFig 16 (ExPress vs ImPress-N at alpha 0.35 / 1):")
    for tracker, variants in data.items():
        for label, rows in variants.items():
            spec = rows.get("SPEC (GMean)")
            stream = rows.get("STREAM (GMean)")
            print(f"  {tracker:>8} {label:>28}  SPEC {spec:.3f}  "
                  f"STREAM {stream:.3f}")
    for tracker in ("graphene", "para"):
        for alpha in (0.35, 1.0):
            express = data[tracker][f"express a={alpha}"]["STREAM (GMean)"]
            impress_n = data[tracker][f"impress-n a={alpha}"]["STREAM (GMean)"]
            # Appendix A: ImPress-N avoids the tON limit, so it beats
            # (or at worst matches) ExPress on stream workloads.
            assert impress_n >= express - 0.02
    # MINT keeps its threshold by tightening RFMTH; the cost is small.
    for label, rows in data["mint"].items():
        assert rows["SPEC (GMean)"] > 0.9
        assert rows["STREAM (GMean)"] > 0.9
