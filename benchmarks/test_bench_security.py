"""Benchmark for the security results: Eq 5 and the Fig 10 pattern."""

from repro.core.analysis import impress_n_effective_threshold
from repro.dram.timing import default_cycle_timings
from repro.security.verifier import effective_threshold

TRH = 4000.0


def test_effective_thresholds(benchmark):
    timings = default_cycle_timings()

    def sweep():
        results = {}
        results["no-rp"] = effective_threshold(
            "no-rp", TRH, alpha=0.48, timings=timings
        )
        results["express"] = effective_threshold(
            "express", TRH, alpha=0.35, timings=timings,
            tmro_cycles=timings.tRAS + timings.tRC,
        )
        for alpha in (0.35, 1.0):
            results[f"impress-n a={alpha}"] = effective_threshold(
                "impress-n", TRH, alpha=alpha, timings=timings
            )
        results["impress-p"] = effective_threshold(
            "impress-p", TRH, alpha=1.0, timings=timings, fraction_bits=7
        )
        return results

    results = benchmark(sweep)
    print("\nEffective thresholds (TRH = 4000):")
    for name, report in results.items():
        print(
            f"  {name:>18}: T* = {report.effective_threshold:7.1f} "
            f"({report.relative_threshold:.3f} TRH)  "
            f"worst: {report.worst_pattern}"
        )
    # No-RP collapses under Row-Press; Eq 5 for ImPress-N; ImPress-P
    # keeps the full threshold.
    assert results["no-rp"].relative_threshold < 0.05
    for alpha in (0.35, 1.0):
        expected = impress_n_effective_threshold(TRH, alpha)
        measured = results[f"impress-n a={alpha}"].effective_threshold
        assert abs(measured - expected) / expected < 0.01
    assert results["impress-p"].relative_threshold == 1.0
