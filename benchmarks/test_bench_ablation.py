"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.experiments import ablation


def test_alpha_ablation(benchmark):
    rows = benchmark(ablation.alpha_ablation)
    print("\nAlpha ablation (ExPress/ImPress-N provisioning):")
    for row in rows:
        print(f"  alpha={row['alpha']:.2f}  T*/TRH={row['relative_threshold']:.3f}  "
              f"entries={row['graphene_entries']}  "
              f"KiB={row['graphene_kib']:.0f}")
    # Larger alpha = safer cover but lower T* and more entries.
    thresholds = [row["relative_threshold"] for row in rows]
    entries = [row["graphene_entries"] for row in rows]
    assert thresholds == sorted(thresholds, reverse=True)
    assert entries == sorted(entries)


def test_rfmth_ablation(benchmark):
    rows = benchmark(ablation.rfmth_ablation)
    print("\nRFMTH ablation (in-DRAM trackers):")
    for row in rows:
        print(f"  rfmth={row['rfmth']}  mithril entries={row['mithril_entries']}"
              f"  MINT tolerated TRH={row['mint_tolerated_trh']:.0f}")
    # More frequent RFM (lower RFMTH) -> fewer Mithril entries needed
    # and lower MINT tolerated threshold.
    assert rows[0]["mithril_entries"] < rows[-1]["mithril_entries"]
    assert rows[0]["mint_tolerated_trh"] < rows[-1]["mint_tolerated_trh"]


def test_mop_burst_ablation(benchmark):
    rows = run_once(benchmark, ablation.mop_burst_ablation, n_requests=700)
    print("\nMOP burst ablation (copy @ tMRO=66ns):")
    for row in rows:
        print(f"  lines/group={row['lines_per_group']}  "
              f"hit rate={row['baseline_hit_rate']:.3f}  "
              f"perf@66ns={row['perf_at_tmro']:.3f}")
    # Longer bursts give higher baseline hit rates (more to lose).
    hits = [row["baseline_hit_rate"] for row in rows]
    assert hits == sorted(hits)


def test_page_policy_ablation(benchmark):
    rows = run_once(benchmark, ablation.page_policy_ablation, n_requests=700)
    print("\nPage-policy ablation (mcf, idle-precharge timer):")
    for row in rows:
        label = ("none" if row["idle_close_cycles"] == -1
                 else row["idle_close_cycles"])
        print(f"  idle_close={label}  conflict rate={row['conflict_rate']:.3f}"
              f"  perf@tMRO36={row['perf_at_tmro36']:.3f}")
    # Without idle precharge, random traffic conflicts more, which is
    # exactly what makes a forced-close policy (tMRO) look better.
    by_idle = {row["idle_close_cycles"]: row for row in rows}
    assert by_idle[-1]["conflict_rate"] >= by_idle[150]["conflict_rate"]


def test_dsac_ablation(benchmark):
    rows = benchmark(ablation.dsac_ablation)
    print("\nDSAC underestimation (Section VII):")
    for row in rows:
        print(f"  tON={row['ton_trc']:.0f} tRC: "
              f"{row['underestimation']:.1f}x under-counted")
    factors = [row["underestimation"] for row in rows]
    assert factors == sorted(factors)
    # The paper's example: ~15x at tON = 256 tRC.
    at_256 = next(r for r in rows if r["ton_trc"] == 256.0)
    assert 13 < at_256["underestimation"] < 17
