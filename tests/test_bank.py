"""Unit tests for the bank state machine."""

import pytest

from repro.dram.bank import Bank, TimingViolation


@pytest.fixture
def bank(timings):
    return Bank(timings=timings)


class TestActivate:
    def test_opens_row(self, bank):
        bank.activate(5, 0)
        assert bank.is_open
        assert bank.open_row == 5
        assert bank.act_cycle == 0

    def test_rejects_double_open(self, bank, timings):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.activate(6, timings.tRC)

    def test_enforces_trc(self, bank, timings):
        bank.activate(5, 0)
        bank.precharge(timings.tRAS)
        with pytest.raises(TimingViolation):
            bank.activate(6, timings.tRC - 1)
        bank.activate(6, timings.tRC)

    def test_hook_fires(self, bank):
        seen = []
        bank.add_activate_hook(lambda row, cycle: seen.append((row, cycle)))
        bank.activate(9, 3)
        assert seen == [(9, 3)]


class TestPrecharge:
    def test_enforces_tras(self, bank, timings):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.precharge(timings.tRAS - 1)
        assert bank.precharge(timings.tRAS) == timings.tRAS

    def test_rejects_closed(self, bank):
        with pytest.raises(TimingViolation):
            bank.precharge(100)

    def test_close_hook_reports_total_time(self, bank, timings):
        seen = []
        bank.add_close_hook(
            lambda row, open_c, total_c: seen.append((row, open_c, total_c))
        )
        bank.activate(5, 0)
        bank.precharge(timings.tRAS)
        assert seen == [(5, timings.tRAS, timings.tRAS + timings.tPRE)]

    def test_minimum_access_is_one_trc(self, bank, timings):
        # tRAS + tPRE == tRC: a minimal access is exactly one EACT.
        bank.activate(5, 0)
        bank.precharge(timings.tRAS)
        assert timings.tRAS + timings.tPRE == timings.tRC


class TestColumnAccess:
    def test_requires_open_row(self, bank):
        with pytest.raises(TimingViolation):
            bank.column_access(10)

    def test_enforces_trcd(self, bank, timings):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.column_access(timings.tRCD - 1)
        data = bank.column_access(timings.tRCD)
        assert data == timings.tRCD + timings.tCAS

    def test_enforces_tccd(self, bank, timings):
        bank.activate(5, 0)
        bank.column_access(timings.tRCD)
        with pytest.raises(TimingViolation):
            bank.column_access(timings.tRCD + 1)
        bank.column_access(timings.tRCD + timings.tCCD)


class TestRefreshAndRfm:
    def test_refresh_blocks_bank(self, bank, timings):
        done = bank.refresh(0)
        assert done == timings.tRFC
        with pytest.raises(TimingViolation):
            bank.activate(1, done - 1)
        bank.activate(1, done)

    def test_refresh_requires_closed_row(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.refresh(200)

    def test_rfm_blocks_for_trfm(self, bank, timings):
        assert bank.rfm(0) == timings.tRFM

    def test_block_until(self, bank, timings):
        bank.block_until(500)
        with pytest.raises(TimingViolation):
            bank.activate(1, 499)
        bank.activate(1, 500)

    def test_block_until_requires_closed(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.block_until(1000)


class TestOpenTime:
    def test_open_time_tracks(self, bank, timings):
        bank.activate(5, 100)
        assert bank.open_time(100 + timings.tRAS) == timings.tRAS
        assert bank.open_time(100) == 0

    def test_closed_open_time_zero(self, bank):
        assert bank.open_time(1000) == 0
