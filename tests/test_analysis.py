"""Unit tests for the closed-form analyses (Eq 5, Fig 12, Eq 6-10)."""

import pytest

from repro.core.analysis import (
    appendix_para_probability,
    attack_iteration_time_trc,
    express_relative_threshold_clm,
    express_relative_threshold_measured,
    graphene_attack_slowdown,
    impress_n_effective_threshold,
    impress_p_relative_threshold,
    para_attack_slowdown,
)


class TestEq5:
    def test_alpha_035_gives_074(self):
        # Section V-B: T* = TRH/1.35 = 0.74 TRH.
        t_star = impress_n_effective_threshold(4000, 0.35)
        assert t_star / 4000 == pytest.approx(0.74, abs=0.01)

    def test_alpha_1_halves(self):
        assert impress_n_effective_threshold(4000, 1.0) == 2000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            impress_n_effective_threshold(0, 1.0)
        with pytest.raises(ValueError):
            impress_n_effective_threshold(4000, -0.1)


class TestFig12Formula:
    def test_paper_values(self):
        # Section VI-B: 6 bits -> 0.985-ish, 5 -> 0.97, 4 -> 0.94.
        assert impress_p_relative_threshold(6) == pytest.approx(0.985, abs=0.002)
        assert impress_p_relative_threshold(5) == pytest.approx(0.97, abs=0.002)
        assert impress_p_relative_threshold(4) == pytest.approx(0.94, abs=0.003)

    def test_seven_bits_exact(self):
        assert impress_p_relative_threshold(7) == 1.0

    def test_zero_bits_degenerates_to_impress_n(self):
        assert impress_p_relative_threshold(0) == 0.5

    def test_monotone_in_bits(self):
        values = [impress_p_relative_threshold(b) for b in range(8)]
        assert values == sorted(values)


class TestExpressThreshold:
    def test_clm_at_tras_is_one(self):
        assert express_relative_threshold_clm(36.0) == pytest.approx(1.0)

    def test_clm_never_above_measured(self):
        # CLM is conservative: it predicts at most the measured T*.
        for tmro in (66.0, 96.0, 186.0, 336.0, 636.0):
            assert (
                express_relative_threshold_clm(tmro, 0.35)
                <= express_relative_threshold_measured(tmro) + 1e-9
            )

    def test_measured_anchor_062_at_186(self):
        assert express_relative_threshold_measured(186.0) == pytest.approx(0.62)


class TestAppendixB:
    def test_appendix_para_probabilities(self):
        assert appendix_para_probability(4000) == pytest.approx(1 / 84)
        assert appendix_para_probability(2000) == pytest.approx(1 / 42)
        assert appendix_para_probability(1000) == pytest.approx(1 / 21)

    def test_graphene_slowdown_is_8_over_t(self):
        # Eq 9: slowdown = 8/T regardless of K.
        assert graphene_attack_slowdown(4000, 0) == pytest.approx(0.002)
        assert graphene_attack_slowdown(4000, 100) == pytest.approx(0.002)
        assert graphene_attack_slowdown(1000, 50) == pytest.approx(0.008)

    def test_para_slowdown_k0(self):
        # 4p at K = 0: 4/84 = 4.76% for TRH 4000.
        assert para_attack_slowdown(4000, 0) == pytest.approx(0.0476, abs=1e-3)

    def test_para_slowdown_flat_until_saturation(self):
        # Until p (K+1) reaches 1 the slowdown stays 4p.
        p = appendix_para_probability(4000)
        for k in (0, 10, 50):
            if p * (k + 1) < 1:
                assert para_attack_slowdown(4000, k) == pytest.approx(4 * p)

    def test_para_slowdown_decays_after_saturation(self):
        k_sat = int(1 / appendix_para_probability(1000))
        saturated = para_attack_slowdown(1000, k_sat)
        further = para_attack_slowdown(1000, 2 * k_sat)
        assert further < saturated

    def test_iteration_time(self):
        # Fig 17: one loop iteration takes (K+1) tRC.
        assert attack_iteration_time_trc(0) == 1.0
        assert attack_iteration_time_trc(72) == 73.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            graphene_attack_slowdown(4000, -1)
        with pytest.raises(ValueError):
            para_attack_slowdown(4000, -1)
        with pytest.raises(ValueError):
            appendix_para_probability(0)
