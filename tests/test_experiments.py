"""Integration tests for the experiment modules (small sizes).

Each test checks the *shape* the paper reports, not absolute numbers:
who wins, what is flat, where the crossovers are.
"""

import pytest

from repro.experiments import (
    energy,
    fig3,
    fig4,
    fig5,
    fig6_7_8,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig18_19,
    tables,
)
from repro.experiments.common import SweepRunner
from repro.sim.config import SystemConfig


@pytest.fixture(scope="module")
def runner():
    # Small but stable: 2 cores, few banks would distort contention, so
    # keep the real system shape and cut requests instead.
    return SweepRunner(system=SystemConfig(), n_requests=400)


class TestAnalyticExperiments:
    def test_fig4_clm_below_measured(self):
        for row in fig4.run():
            assert (
                row["relative_threshold_clm"]
                <= row["relative_threshold_measured"] + 1e-9
            )

    def test_fig6_is_linear(self):
        series = fig6_7_8.fig6_series(5)
        assert series == [(k, float(k)) for k in range(1, 6)]

    def test_fig7_cover_holds(self):
        data = fig6_7_8.fig7_series()
        assert data["fitted_alpha"] <= data["clm_alpha"]
        clm = dict(data["clm_line"])
        for time_trc, tcl in data["device_points"]:
            assert tcl <= clm[time_trc] + 1e-9

    def test_fig8_alpha_is_035(self):
        assert fig6_7_8.fig8_series()["clm_alpha"] == pytest.approx(0.35)

    def test_fig12_monotone_and_converges(self):
        rows = fig12.run()
        verified = [row["relative_threshold_verified"] for row in rows]
        assert verified == sorted(verified)
        assert verified[-1] == pytest.approx(1.0, abs=1e-6)
        assert verified[0] == pytest.approx(0.5, abs=0.01)

    def test_fig18_flat_in_k(self):
        series = fig18_19.fig18_series(thresholds=(4000.0,))
        slowdowns = {row["slowdown_pct"] for row in series[4000.0]}
        assert len(slowdowns) == 1

    def test_fig19_saturates_then_decays(self):
        series = fig18_19.fig19_series(thresholds=(1000.0,))
        rows = series[1000.0]
        assert rows[0]["slowdown_pct"] == pytest.approx(400 / 21, rel=0.01)
        assert rows[-1]["slowdown_pct"] < rows[0]["slowdown_pct"]

    def test_tables(self):
        assert tables.table1()["tRC"] == 48.0
        assert tables.table2()["cores"] == 8
        by_scheme = {row["scheme"]: row for row in tables.table3()}
        assert by_scheme["impress-p"]["relative_threshold"] == 1.0
        assert by_scheme["express"]["limits_ton"]
        assert not by_scheme["impress-n"]["limits_ton"]
        storage = tables.storage_comparison()
        assert storage["graphene_entries"]["no-rp"] == 448
        assert storage["mithril_entries"]["no-rp"] == 383


@pytest.mark.slow
class TestSimulationExperiments:
    def test_fig3_stream_sensitive_spec_not(self, runner):
        series = fig3.run(runner, tmros_ns=(36.0, 636.0), quick=True)
        # STREAM suffers at tMRO = 36 ns; at 636 ns nothing changes.
        assert series[36.0]["STREAM (GMean)"] < 0.97
        assert series[636.0]["STREAM (GMean)"] == pytest.approx(1.0, abs=0.03)
        assert series[36.0]["SPEC (GMean)"] == pytest.approx(1.0, abs=0.07)

    def test_fig13_impress_p_beats_express(self, runner):
        data = fig13.run(runner, quick=True)
        for tracker in ("graphene", "para"):
            express = data[tracker]["express"]["STREAM (GMean)"]
            impress_p = data[tracker]["impress-p"]["STREAM (GMean)"]
            assert impress_p > express
            assert impress_p == pytest.approx(1.0, abs=0.05)

    def test_fig13_mint_impress_p_matches_no_rp(self, runner):
        data = fig13.run(runner, quick=True)
        assert data["mint"]["impress-p"]["SPEC (GMean)"] == pytest.approx(
            1.0, abs=0.03
        )

    def test_fig14_express_demand_acts_inflate(self, runner):
        data = fig14.run(runner, quick=True)
        for tracker in ("graphene", "para"):
            assert data[tracker]["express"]["demand"] > 1.1
            assert data[tracker]["impress-p"]["demand"] == pytest.approx(
                1.0, abs=0.05
            )

    def test_fig15_impress_p_tracks_no_rp(self, runner):
        data = fig15.run(runner, quick=True, thresholds=(4000.0, 1000.0))
        for tracker in ("graphene", "para"):
            for trh in (4000.0, 1000.0):
                no_rp = data[tracker]["no-rp"][trh]
                impress_p = data[tracker]["impress-p"][trh]
                assert impress_p == pytest.approx(no_rp, abs=0.05)

    def test_fig16_impress_n_at_least_express_on_stream(self, runner):
        data = fig16.run(runner, quick=True)
        for tracker in ("graphene", "para"):
            for alpha in (0.35, 1.0):
                express = data[tracker][f"express a={alpha}"]["STREAM (GMean)"]
                impress_n = data[tracker][f"impress-n a={alpha}"][
                    "STREAM (GMean)"
                ]
                assert impress_n >= express - 0.02

    def test_fig5_low_tmro_hurts_stream(self, runner):
        data = fig5.run(runner, tmros_ns=(36.0, 636.0), quick=True)
        for tracker in ("graphene", "para"):
            stream = data[tracker]["STREAM"]
            assert stream[36.0] < stream[float("inf")] + 0.02
            assert stream[36.0] < 0.97

    def test_energy_express_worst(self, runner):
        data = energy.run(runner, quick=True)
        share = data["baseline"]["activation_share"]
        assert 0.03 < share < 0.35
        for tracker in ("graphene", "para"):
            assert data[tracker]["express"] >= data[tracker]["impress-p"] - 0.01
