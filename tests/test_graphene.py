"""Unit tests for the Graphene (Misra-Gries) tracker."""

import pytest

from repro.trackers.graphene import GrapheneTracker


class TestBasicTracking:
    def test_mitigates_at_internal_threshold(self):
        tracker = GrapheneTracker(entries=4, internal_threshold=3)
        assert tracker.record(7) == []
        assert tracker.record(7) == []
        assert tracker.record(7) == [7]
        assert tracker.mitigations == 1

    def test_counter_resets_after_mitigation(self):
        tracker = GrapheneTracker(entries=4, internal_threshold=2)
        tracker.record(7)
        assert tracker.record(7) == [7]
        assert tracker.count_for(7) == 0.0
        tracker.record(7)
        assert tracker.record(7) == [7]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GrapheneTracker(entries=0, internal_threshold=10)
        with pytest.raises(ValueError):
            GrapheneTracker(entries=4, internal_threshold=0)
        with pytest.raises(ValueError):
            GrapheneTracker(entries=4, internal_threshold=4, fraction_bits=-1)

    def test_reset_clears(self):
        tracker = GrapheneTracker(entries=2, internal_threshold=10)
        tracker.record(1)
        tracker.reset()
        assert tracker.count_for(1) == 0.0
        assert tracker.tracked_rows() == []


class TestMisraGries:
    def test_spillover_grows_when_full(self):
        tracker = GrapheneTracker(entries=2, internal_threshold=100)
        tracker.record(1)
        tracker.record(2)
        tracker.record(3)  # table full -> spillover
        assert tracker.spillover == 1.0

    def test_new_row_swaps_in_at_spill_level(self):
        tracker = GrapheneTracker(entries=2, internal_threshold=100)
        tracker.record(1)
        tracker.record(2)
        tracker.record(2)
        # Spill reaches row 1's count (1): a later row replaces it.
        tracker.record(3)
        assert 3 in tracker.tracked_rows()
        assert 1 not in tracker.tracked_rows()
        assert tracker.count_for(3) == 1.0

    def test_heavy_hitter_never_lost(self):
        # The Misra-Gries guarantee: a row with more than
        # total/(entries+1) activations is always tracked.
        tracker = GrapheneTracker(entries=4, internal_threshold=10_000)
        for i in range(400):
            tracker.record(1000 + (i % 40))  # 40 distinct light rows
            tracker.record(7)                # one heavy row
        assert 7 in tracker.tracked_rows()
        assert tracker.count_for(7) >= 400 - tracker.spillover

    def test_count_never_below_true_count(self):
        # Misra-Gries counters over-approximate (insert at spill level),
        # which is the conservative direction for security.
        tracker = GrapheneTracker(entries=2, internal_threshold=1000)
        for _ in range(10):
            tracker.record(1)
        assert tracker.count_for(1) >= 10


class TestFractionalGraphene:
    def test_eact_weights_accumulate(self):
        tracker = GrapheneTracker(
            entries=4, internal_threshold=3, fraction_bits=7
        )
        assert tracker.record(7, weight=1.5) == []
        assert tracker.record(7, weight=1.5) == [7]

    def test_zero_bits_truncates_fraction(self):
        tracker = GrapheneTracker(
            entries=4, internal_threshold=2, fraction_bits=0
        )
        tracker.record(7, weight=1.9)
        assert tracker.count_for(7) == 1.0

    def test_zero_weight_noop(self):
        tracker = GrapheneTracker(entries=4, internal_threshold=2)
        assert tracker.record(7, weight=0.0) == []
        assert tracker.count_for(7) == 0.0

    def test_rejects_negative_weight(self):
        tracker = GrapheneTracker(entries=4, internal_threshold=2)
        with pytest.raises(ValueError):
            tracker.record(7, weight=-1.0)

    def test_large_eact_triggers_immediately(self):
        tracker = GrapheneTracker(
            entries=4, internal_threshold=3, fraction_bits=7
        )
        assert tracker.record(7, weight=3.0) == [7]
