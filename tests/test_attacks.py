"""Tests for attack-pattern generators."""

import pytest

from repro.dram.address import MopAddressMapper
from repro.workloads.attacks import (
    TimedAccess,
    decoy_pattern_accesses,
    hammer_trace,
    k_pattern_accesses,
    row_press_accesses,
    row_press_trace,
    rowhammer_accesses,
)


class TestTimedAccess:
    def test_open_cycles(self):
        access = TimedAccess(row=1, act_cycle=10, close_cycle=110)
        assert access.open_cycles() == 100

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            TimedAccess(row=1, act_cycle=10, close_cycle=10)


class TestRowhammerPattern:
    def test_one_act_per_trc(self, timings):
        accesses = rowhammer_accesses(5, 10, timings)
        assert len(accesses) == 10
        gaps = {
            b.act_cycle - a.act_cycle
            for a, b in zip(accesses, accesses[1:])
        }
        assert gaps == {timings.tRC}

    def test_each_open_for_tras(self, timings):
        for access in rowhammer_accesses(5, 4, timings):
            assert access.open_cycles() == timings.tRAS


class TestRowPressPattern:
    def test_period_is_ton_plus_tpre(self, timings):
        ton = timings.tRAS + 3 * timings.tRC
        accesses = row_press_accesses(5, 4, ton, timings)
        gaps = {
            b.act_cycle - a.act_cycle
            for a, b in zip(accesses, accesses[1:])
        }
        assert gaps == {ton + timings.tPRE}

    def test_rejects_short_ton(self, timings):
        with pytest.raises(ValueError):
            row_press_accesses(5, 4, timings.tRAS - 1, timings)


class TestKPattern:
    def test_k0_is_rowhammer(self, timings):
        k0 = k_pattern_accesses(5, 4, 0, timings)
        rh = rowhammer_accesses(5, 4, timings)
        assert [a.open_cycles() for a in k0] == [
            a.open_cycles() for a in rh
        ]

    def test_loop_time_is_k_plus_1_trc(self, timings):
        # Fig 17: one iteration takes (K+1) tRC.
        for k in (1, 8, 72):
            accesses = k_pattern_accesses(5, 3, k, timings)
            period = accesses[1].act_cycle - accesses[0].act_cycle
            assert period == (k + 1) * timings.tRC

    def test_rejects_negative_k(self, timings):
        with pytest.raises(ValueError):
            k_pattern_accesses(5, 3, -1, timings)


class TestDecoyPattern:
    def test_target_open_for_trc_plus_tras(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 5, timings)
        targets = [a for a in accesses if a.row == 1]
        assert len(targets) == 5
        for access in targets:
            assert access.open_cycles() == timings.tRC + timings.tRAS

    def test_act_lands_within_tact_of_boundary(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 3, timings)
        for access in accesses:
            if access.row != 1:
                continue
            to_boundary = -access.act_cycle % timings.tRC
            assert 0 < to_boundary <= timings.tACT

    def test_decoy_interleaves(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 3, timings)
        rows = [a.row for a in accesses]
        assert rows == [1, 2, 1, 2, 1, 2]

    def test_rejects_bad_lead(self, timings):
        with pytest.raises(ValueError):
            decoy_pattern_accesses(1, 2, 3, timings, lead_cycles=0)


class TestTraceAttacks:
    def test_hammer_trace_alternates_rows(self):
        mapper = MopAddressMapper()
        trace = hammer_trace(mapper, bank=3, rows=[10, 20], n_requests=6)
        mapped = [mapper.map_address(r.address) for r in trace]
        assert all(m.bank == 3 for m in mapped)
        assert [m.row for m in mapped] == [10, 20, 10, 20, 10, 20]

    def test_hammer_trace_needs_rows(self):
        with pytest.raises(ValueError):
            hammer_trace(MopAddressMapper(), 0, [], 10)

    def test_row_press_trace_same_row(self):
        mapper = MopAddressMapper()
        trace = row_press_trace(
            mapper, bank=3, row=10, n_requests=16, hold_gap_cycles=50
        )
        mapped = [mapper.map_address(r.address) for r in trace]
        assert all(m.row == 10 and m.bank == 3 for m in mapped)
        assert all(r.gap_cycles == 50 for r in trace)
