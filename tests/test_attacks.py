"""Tests for attack-pattern generators."""

import pytest

from repro.dram.address import MopAddressMapper
from repro.workloads.attacks import (
    TimedAccess,
    decoy_pattern_accesses,
    decoy_trace,
    hammer_trace,
    k_pattern_accesses,
    k_sided_hammer_trace,
    k_sided_rows,
    refresh_sync_hammer_trace,
    row_press_accesses,
    row_press_dwell_trace,
    row_press_trace,
    rowhammer_accesses,
)
from repro.workloads.compiled import CompiledTrace


class TestTimedAccess:
    def test_open_cycles(self):
        access = TimedAccess(row=1, act_cycle=10, close_cycle=110)
        assert access.open_cycles() == 100

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            TimedAccess(row=1, act_cycle=10, close_cycle=10)


class TestRowhammerPattern:
    def test_one_act_per_trc(self, timings):
        accesses = rowhammer_accesses(5, 10, timings)
        assert len(accesses) == 10
        gaps = {
            b.act_cycle - a.act_cycle
            for a, b in zip(accesses, accesses[1:])
        }
        assert gaps == {timings.tRC}

    def test_each_open_for_tras(self, timings):
        for access in rowhammer_accesses(5, 4, timings):
            assert access.open_cycles() == timings.tRAS


class TestRowPressPattern:
    def test_period_is_ton_plus_tpre(self, timings):
        ton = timings.tRAS + 3 * timings.tRC
        accesses = row_press_accesses(5, 4, ton, timings)
        gaps = {
            b.act_cycle - a.act_cycle
            for a, b in zip(accesses, accesses[1:])
        }
        assert gaps == {ton + timings.tPRE}

    def test_rejects_short_ton(self, timings):
        with pytest.raises(ValueError):
            row_press_accesses(5, 4, timings.tRAS - 1, timings)


class TestKPattern:
    def test_k0_is_rowhammer(self, timings):
        k0 = k_pattern_accesses(5, 4, 0, timings)
        rh = rowhammer_accesses(5, 4, timings)
        assert [a.open_cycles() for a in k0] == [
            a.open_cycles() for a in rh
        ]

    def test_loop_time_is_k_plus_1_trc(self, timings):
        # Fig 17: one iteration takes (K+1) tRC.
        for k in (1, 8, 72):
            accesses = k_pattern_accesses(5, 3, k, timings)
            period = accesses[1].act_cycle - accesses[0].act_cycle
            assert period == (k + 1) * timings.tRC

    def test_rejects_negative_k(self, timings):
        with pytest.raises(ValueError):
            k_pattern_accesses(5, 3, -1, timings)

    def test_k1_holds_one_extra_trc(self, timings):
        # K = 1 (the smallest dwell): each access stays open for
        # tRAS + tRC and the loop takes 2 tRC.
        accesses = k_pattern_accesses(5, 3, 1, timings)
        for access in accesses:
            assert access.open_cycles() == timings.tRAS + timings.tRC
        assert (
            accesses[1].act_cycle - accesses[0].act_cycle
            == 2 * timings.tRC
        )

    def test_large_k_approaches_one_long_dwell(self, timings):
        # A very large K degenerates toward pure Row-Press: nearly the
        # whole (K+1) tRC loop is spent with the row open.
        k = 1 << 10
        accesses = k_pattern_accesses(5, 2, k, timings)
        period = accesses[1].act_cycle - accesses[0].act_cycle
        assert period == (k + 1) * timings.tRC
        open_fraction = accesses[0].open_cycles() / period
        assert open_fraction > 0.99


class TestDecoyPattern:
    def test_target_open_for_trc_plus_tras(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 5, timings)
        targets = [a for a in accesses if a.row == 1]
        assert len(targets) == 5
        for access in targets:
            assert access.open_cycles() == timings.tRC + timings.tRAS

    def test_act_lands_within_tact_of_boundary(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 3, timings)
        for access in accesses:
            if access.row != 1:
                continue
            to_boundary = -access.act_cycle % timings.tRC
            assert 0 < to_boundary <= timings.tACT

    def test_decoy_interleaves(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 3, timings)
        rows = [a.row for a in accesses]
        assert rows == [1, 2, 1, 2, 1, 2]

    def test_rejects_bad_lead(self, timings):
        with pytest.raises(ValueError):
            decoy_pattern_accesses(1, 2, 3, timings, lead_cycles=0)

    def test_lead_window_boundaries(self, timings):
        # The lead must land inside (0, tACT]: exactly tACT is the last
        # cycle at which the boundary sample still misses the ACT.
        edge = decoy_pattern_accesses(
            1, 2, 2, timings, lead_cycles=timings.tACT
        )
        targets = [a for a in edge if a.row == 1]
        for access in targets:
            assert -access.act_cycle % timings.tRC == timings.tACT
        with pytest.raises(ValueError):
            decoy_pattern_accesses(
                1, 2, 2, timings, lead_cycles=timings.tACT + 1
            )

    def test_phase_locked_to_the_window(self, timings):
        # Every round's target ACT keeps the same phase within the tRC
        # window — the evasion depends on the 3*tRC period being a
        # whole number of windows.
        accesses = decoy_pattern_accesses(1, 2, 5, timings)
        phases = {
            a.act_cycle % timings.tRC for a in accesses if a.row == 1
        }
        assert len(phases) == 1

    def test_decoy_opens_exactly_at_target_close(self, timings):
        accesses = decoy_pattern_accesses(1, 2, 4, timings)
        for target, decoy in zip(accesses[0::2], accesses[1::2]):
            assert decoy.act_cycle == target.close_cycle
            assert decoy.open_cycles() == timings.tRAS


class TestKSidedRows:
    def test_k1_is_single_sided(self):
        assert k_sided_rows(100, 1) == [99]

    def test_k2_is_double_sided(self):
        assert k_sided_rows(100, 2) == [99, 101]

    def test_large_k_rows_are_distinct_and_spare_the_victim(self):
        rows = k_sided_rows(100, 33)
        assert len(rows) == 33
        assert len(set(rows)) == 33
        assert 100 not in rows
        assert all(row >= 0 for row in rows)

    def test_folds_below_zero(self):
        rows = k_sided_rows(0, 4)
        assert all(row >= 0 for row in rows)
        assert len(set(rows)) == 4

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            k_sided_rows(100, 0)


class TestScenarioTraceGenerators:
    def setup_method(self):
        self.mapper = MopAddressMapper()

    def test_k_sided_trace_cycles_aggressors(self):
        trace = k_sided_hammer_trace(
            self.mapper, bank=3, victim_row=100, k=3, n_requests=6
        )
        mapped = [self.mapper.map_address(r.address) for r in trace]
        assert [m.row for m in mapped] == [99, 101, 97, 99, 101, 97]
        assert all(m.bank == 3 for m in mapped)

    def test_dwell_trace_holds_then_switches(self):
        trace = row_press_dwell_trace(
            self.mapper, bank=3, rows=[10, 20], n_requests=8,
            hold_gap_cycles=50, hits_per_dwell=4,
        )
        mapped = [self.mapper.map_address(r.address) for r in trace]
        assert [m.row for m in mapped] == [10] * 4 + [20] * 4
        # First access of each dwell is immediate (the conflicting
        # ACT); the holds are spaced.
        assert [r.gap_cycles for r in trace] == [0, 50, 50, 50] * 2

    def test_dwell_trace_single_hit_is_hammering(self):
        trace = row_press_dwell_trace(
            self.mapper, bank=3, rows=[10, 20], n_requests=4,
            hold_gap_cycles=50, hits_per_dwell=1,
        )
        mapped = [self.mapper.map_address(r.address) for r in trace]
        assert [m.row for m in mapped] == [10, 20, 10, 20]
        assert all(r.gap_cycles == 0 for r in trace)

    def test_decoy_trace_round_shape(self):
        trace = decoy_trace(
            self.mapper, bank=3, target_row=10, decoy_row=30,
            n_requests=8, hold_gap_cycles=40, hold_hits=2,
        )
        mapped = [self.mapper.map_address(r.address) for r in trace]
        # Round = target ACT + 2 held hits + decoy closure.
        assert [m.row for m in mapped] == [10, 10, 10, 30] * 2
        assert [r.gap_cycles for r in trace] == [0, 40, 40, 0] * 2

    def test_refresh_sync_trace_burst_then_idle(self):
        trace = refresh_sync_hammer_trace(
            self.mapper, bank=3, rows=[10, 20], n_requests=7,
            burst_acts=3, idle_gap_cycles=5000,
        )
        gaps = [r.gap_cycles for r in trace]
        assert gaps == [0, 0, 0, 5000, 0, 0, 5000]

    def test_generators_validate_arguments(self):
        with pytest.raises(ValueError):
            row_press_dwell_trace(self.mapper, 0, [], 4, 50, 2)
        with pytest.raises(ValueError):
            row_press_dwell_trace(self.mapper, 0, [1], 4, 50, 0)
        with pytest.raises(ValueError):
            decoy_trace(self.mapper, 0, 1, 2, 4, 40, hold_hits=0)
        with pytest.raises(ValueError):
            refresh_sync_hammer_trace(self.mapper, 0, [1], 4, 0, 100)
        with pytest.raises(ValueError):
            refresh_sync_hammer_trace(self.mapper, 0, [1], 4, 2, -1)

    @pytest.mark.parametrize("maker", [
        lambda m: k_sided_hammer_trace(m, 2, 100, 5, 40),
        lambda m: row_press_dwell_trace(m, 2, [10, 20], 40, 50, 4),
        lambda m: decoy_trace(m, 2, 10, 30, 40, 40),
        lambda m: refresh_sync_hammer_trace(m, 2, [10, 20], 40, 8, 5000),
    ], ids=["k_sided", "dwell", "decoy", "refresh_sync"])
    def test_compiled_trace_equivalence(self, maker):
        # The attacker generators must compile exactly like benign
        # traces: the CompiledTrace arrays match per-request
        # map_address decomposition.
        for mapper in (
            MopAddressMapper(),
            MopAddressMapper(channels=2, banks_per_channel=8),
        ):
            trace = maker(mapper)
            compiled = CompiledTrace(trace, mapper)
            for i, request in enumerate(trace):
                mapped = mapper.map_address(request.address)
                assert compiled.channels[i] == mapped.channel
                assert compiled.banks[i] == mapped.bank
                assert compiled.rows[i] == mapped.row
                assert compiled.columns[i] == mapped.column
                assert compiled.flat_banks[i] == (
                    mapped.channel * mapper.banks_per_channel + mapped.bank
                )
                assert compiled.is_write[i] == request.is_write
                assert compiled.gaps[i] == request.gap_cycles


class TestTraceAttacks:
    def test_hammer_trace_alternates_rows(self):
        mapper = MopAddressMapper()
        trace = hammer_trace(mapper, bank=3, rows=[10, 20], n_requests=6)
        mapped = [mapper.map_address(r.address) for r in trace]
        assert all(m.bank == 3 for m in mapped)
        assert [m.row for m in mapped] == [10, 20, 10, 20, 10, 20]

    def test_hammer_trace_needs_rows(self):
        with pytest.raises(ValueError):
            hammer_trace(MopAddressMapper(), 0, [], 10)

    def test_row_press_trace_same_row(self):
        mapper = MopAddressMapper()
        trace = row_press_trace(
            mapper, bank=3, row=10, n_requests=16, hold_gap_cycles=50
        )
        mapped = [mapper.map_address(r.address) for r in trace]
        assert all(m.row == 10 and m.bank == 3 for m in mapped)
        assert all(r.gap_cycles == 50 for r in trace)
