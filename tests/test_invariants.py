"""Online invariant engine: clean runs stay clean, planted faults trip.

Three contracts:

* **No false positives** — every defense in the equivalence matrix,
  including attack traffic, runs violation-free under the monitor.
* **No perturbation** — a monitored run's SimResult is bit-identical to
  an unmonitored one, and an unmonitored simulator carries no hooks at
  all (the zero-cost-when-disabled guarantee).
* **True positives** — the planted ``lax-tmro`` fault trips the
  ``tmro-deadline`` invariant; tampering with conservation or refresh
  state trips their checks.
"""

import pytest

from repro.security import faults
from repro.security.invariants import (
    DEFAULT_TMRO_SLACK_CYCLES,
    InvariantMonitor,
    monitored_run,
)
from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.reference import ReferenceSimulator
from repro.sim.system import SystemSimulator
from repro.workloads.attacks import hammer_trace, row_press_trace
from repro.workloads.synthetic import rate_mode_traces

from test_engine_equivalence import result_fields

REQUESTS = 120

DEFENSES = [
    DefenseConfig(tracker="graphene", scheme="impress-p"),
    DefenseConfig(tracker="graphene", scheme="impress-n"),
    DefenseConfig(tracker="graphene", scheme="express", alpha=1.0),
    DefenseConfig(tracker="para", scheme="impress-p", trh=100),
    DefenseConfig(tracker="mithril", scheme="impress-p", rfmth=20),
    DefenseConfig(tracker="mint", scheme="impress-n", trh=1600, rfmth=20),
    DefenseConfig(tracker="prac", scheme="impress-p", trh=150),
    DefenseConfig(tracker="dsac", scheme="impress-p", trh=300),
]


def _defense_id(defense):
    return f"{defense.tracker}-{defense.scheme}"


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faults.clear()
    yield
    faults.clear()


class TestCleanRuns:
    @pytest.mark.parametrize("defense", DEFENSES, ids=_defense_id)
    def test_workload_matrix_is_violation_free(self, defense):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("mcf", 2, REQUESTS, seed=7)
        sim = SystemSimulator(system, traces, defense)
        _, monitor = monitored_run(sim, checkpoint_cycles=20_000)
        assert monitor.ok, [v.describe() for v in monitor.violations]
        assert monitor.closures_checked > 0

    @pytest.mark.parametrize(
        "defense",
        [
            DefenseConfig(tracker="graphene", scheme="impress-p", trh=200),
            DefenseConfig(tracker="graphene", scheme="impress-n", trh=200),
            DefenseConfig(tracker="graphene", scheme="express", trh=200),
        ],
        ids=_defense_id,
    )
    def test_row_press_attack_is_violation_free(self, defense):
        system = SystemConfig(n_cores=1, banks_per_channel=4)
        trace = row_press_trace(
            system.mapper(), bank=0, row=12, n_requests=250,
            hold_gap_cycles=40,
        )
        sim = SystemSimulator(system, [trace], defense)
        _, monitor = monitored_run(sim, checkpoint_cycles=20_000)
        assert monitor.ok, [v.describe() for v in monitor.violations]

    def test_hammer_attack_is_violation_free(self):
        system = SystemConfig(n_cores=1, banks_per_channel=4)
        trace = hammer_trace(
            system.mapper(), bank=0, rows=[10, 30], n_requests=1500
        )
        defense = DefenseConfig(tracker="graphene", scheme="impress-p",
                                trh=60)
        sim = SystemSimulator(system, [trace], defense)
        _, monitor = monitored_run(sim, checkpoint_cycles=20_000)
        assert monitor.ok, [v.describe() for v in monitor.violations]
        # The attack forces mitigations, so conservation was exercised.
        assert any(ledger.produced > 0 for ledger in monitor._ledgers)

    def test_reference_engine_supported(self):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("copy", 2, REQUESTS, seed=3)
        defense = DefenseConfig(tracker="graphene", scheme="impress-n")
        sim = ReferenceSimulator(system, traces, defense)
        _, monitor = monitored_run(sim, checkpoint_cycles=20_000)
        assert monitor.ok, [v.describe() for v in monitor.violations]


class TestNonPerturbation:
    def test_monitored_result_is_bit_identical(self):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        defense = DefenseConfig(tracker="graphene", scheme="impress-p")
        traces = rate_mode_traces("add_copy", 2, REQUESTS, seed=5)
        straight = SystemSimulator(system, traces, defense).run()
        monitored, monitor = monitored_run(
            SystemSimulator(system, traces, defense),
            checkpoint_cycles=7_000,
        )
        assert result_fields(monitored) == result_fields(straight)
        assert monitor.last_checkpoint_cycle == straight.elapsed_cycles

    def test_unmonitored_simulator_has_no_hooks(self):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("mcf", 2, 40, seed=0)
        sim = SystemSimulator(
            system, traces, DefenseConfig(tracker="graphene",
                                          scheme="impress-p")
        )
        sim.run()
        for controller in sim.controllers:
            for bank in controller.banks:
                assert bank._close_hooks is None
                assert bank._activate_hooks is None

    def test_double_attach_rejected(self):
        system = SystemConfig(n_cores=1, banks_per_channel=4)
        traces = rate_mode_traces("mcf", 1, 10, seed=0)
        sim = SystemSimulator(system, traces)
        monitor = InvariantMonitor().attach(sim)
        with pytest.raises(RuntimeError, match="already attached"):
            monitor.attach(sim)


def _express_press_sim():
    """An ExPress run whose workload holds rows open against tMRO.

    MOP auto-precharge is disabled so only the tMRO limit (or the
    planted fault's lax version of it) closes the pressed row.
    """
    system = SystemConfig(
        n_cores=1, banks_per_channel=4, mop_burst_lines=None
    )
    trace = row_press_trace(
        system.mapper(), bank=0, row=12, n_requests=250, hold_gap_cycles=40
    )
    defense = DefenseConfig(tracker="graphene", scheme="express", trh=200)
    return SystemSimulator(system, [trace], defense)


class TestPlantedFault:
    def test_lax_tmro_trips_the_deadline_invariant(self):
        with faults.injected("lax-tmro"):
            _, monitor = monitored_run(
                _express_press_sim(), checkpoint_cycles=10_000
            )
        assert not monitor.ok
        assert monitor.violation_names() == ("tmro-deadline",)
        first = monitor.violations[0]
        assert first.cycle > 0
        assert first.checkpoint_cycle >= 0
        assert first.cycle >= first.checkpoint_cycle

    def test_same_run_without_fault_is_clean(self):
        _, monitor = monitored_run(
            _express_press_sim(), checkpoint_cycles=10_000
        )
        assert monitor.ok, [v.describe() for v in monitor.violations]

    def test_slack_covers_legitimate_scheduling_delay(self):
        """The intended tMRO is never overshot by more than the slack on
        a clean run — the margin that makes the deadline check sound."""
        sim = _express_press_sim()
        tight = InvariantMonitor(tmro_slack_cycles=0)
        monitored_run(sim, monitor=tight, checkpoint_cycles=10_000)
        overshoots = [
            v for v in tight.violations if v.invariant == "tmro-deadline"
        ]
        # With zero slack a handful of in-flight-burst overshoots are
        # expected; none may reach the default slack.
        for violation in overshoots:
            open_cycles = int(violation.message.split(" open ")[1].split()[0])
            intended = int(violation.message.split("tMRO ")[1].split()[0])
            assert open_cycles - intended < DEFAULT_TMRO_SLACK_CYCLES


class TestTamperDetection:
    def _run_monitored(self):
        system = SystemConfig(n_cores=1, banks_per_channel=4)
        trace = hammer_trace(
            system.mapper(), bank=0, rows=[10, 30], n_requests=300
        )
        defense = DefenseConfig(tracker="graphene", scheme="impress-p",
                                trh=150)
        sim = SystemSimulator(system, [trace], defense)
        monitor = InvariantMonitor().attach(sim)
        sim.run()
        return sim, monitor

    def test_conservation_catches_partial_blocks(self):
        sim, monitor = self._run_monitored()
        sim.controllers[0].counts.mitigative_acts += 1
        monitor.checkpoint()
        assert "mitigation-conservation" in monitor.violation_names()
        assert "whole 4-ACT" in monitor.violations[0].message

    def test_conservation_catches_lost_mitigations(self):
        sim, monitor = self._run_monitored()
        sim.controllers[0].counts.mitigative_acts += 4
        monitor.checkpoint()
        assert "mitigation-conservation" in monitor.violation_names()

    def test_refresh_monotonicity_catches_rewind(self):
        sim, monitor = self._run_monitored()
        monitor.checkpoint()
        sim.controllers[0].refresh[0]._next_due -= 10
        monitor.checkpoint()
        assert "refresh-monotonic" in monitor.violation_names()
