"""Unit tests for DRAM timing parameters and cycle conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.timing import (
    CycleTimings,
    DramClock,
    TimingParams,
    ddr4_timings,
    ddr5_timings,
    default_cycle_timings,
)


class TestTimingParams:
    def test_table1_defaults(self):
        params = ddr5_timings()
        assert params.tACT == 12.0
        assert params.tPRE == 12.0
        assert params.tRAS == 36.0
        assert params.tRC == 48.0
        assert params.tREFW == 32e6
        assert params.tREFI == 3900.0
        assert params.tRFC == 350.0
        assert params.tONMAX == 19500.0

    def test_trc_covers_ras_plus_pre(self):
        params = ddr5_timings()
        assert params.tRC == params.tRAS + params.tPRE

    def test_ddr4_trefi(self):
        assert ddr4_timings().tREFI == 7800.0

    def test_refresh_groups_near_8192(self):
        # 32 ms / 3900 ns = 8205 pulse slots; the paper rounds to 8192.
        assert 8000 < ddr5_timings().refresh_groups < 8400

    def test_rejects_inverted_ras(self):
        with pytest.raises(ValueError):
            TimingParams(tRAS=10.0, tACT=12.0)

    def test_rejects_small_trc(self):
        with pytest.raises(ValueError):
            TimingParams(tRC=40.0)

    def test_rejects_nonpositive_refresh(self):
        with pytest.raises(ValueError):
            TimingParams(tREFI=0.0)

    def test_with_overrides(self):
        params = ddr5_timings().with_overrides(tREFI=7800.0)
        assert params.tREFI == 7800.0
        assert params.tRC == 48.0


class TestDramClock:
    def test_trc_is_128_cycles(self, clock):
        assert clock.cycles(48.0) == 128

    def test_roundtrip(self, clock):
        assert clock.ns(clock.cycles(3900.0)) == pytest.approx(3900.0, rel=1e-2)

    def test_ceil_cycles_at_least_cycles(self, clock):
        assert clock.ceil_cycles(48.0) >= 128

    @given(st.floats(min_value=0.1, max_value=1e6))
    def test_cycles_monotone(self, time_ns):
        clock = DramClock()
        assert clock.cycles(time_ns) <= clock.cycles(time_ns * 2) + 1


class TestCycleTimings:
    def test_shift_is_7(self, timings):
        assert timings.tRC == 128
        assert timings.trc_shift == 7

    def test_tras_tpre_sum_to_trc(self, timings):
        assert timings.tRAS + timings.tPRE == timings.tRC

    def test_eact_of_one_trc(self, timings):
        assert timings.eact_of_cycles(timings.tRC) == pytest.approx(1.0)

    def test_no_shift_for_non_power_of_two(self):
        odd = CycleTimings.from_ns(
            ddr5_timings(), DramClock(freq_ghz=2.5)
        )
        assert odd.tRC == 120
        assert odd.trc_shift is None

    def test_default_factory(self):
        assert default_cycle_timings().tRC == 128
