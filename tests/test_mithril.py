"""Unit tests for the Mithril in-DRAM tracker."""

import pytest

from repro.trackers.mithril import MithrilTracker


class TestRecording:
    def test_never_mitigates_synchronously(self):
        tracker = MithrilTracker(entries=4)
        for _ in range(100):
            assert tracker.record(7) == []

    def test_in_dram_flag(self):
        assert MithrilTracker(entries=4).in_dram is True

    def test_counts_accumulate(self):
        tracker = MithrilTracker(entries=4)
        for _ in range(5):
            tracker.record(7)
        assert tracker.count_for(7) == 5.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MithrilTracker(entries=0)
        with pytest.raises(ValueError):
            MithrilTracker(entries=4, fraction_bits=-1)
        tracker = MithrilTracker(entries=4)
        with pytest.raises(ValueError):
            tracker.record(1, weight=-1.0)


class TestRfmMitigation:
    def test_rfm_picks_hottest_row(self):
        tracker = MithrilTracker(entries=4)
        for _ in range(3):
            tracker.record(1)
        for _ in range(10):
            tracker.record(2)
        assert tracker.on_rfm() == 2
        assert tracker.mitigations == 1

    def test_rfm_resets_winner_to_spill(self):
        tracker = MithrilTracker(entries=2)
        for _ in range(10):
            tracker.record(2)
        tracker.on_rfm()
        assert tracker.count_for(2) == tracker.spillover

    def test_rfm_on_empty_returns_none(self):
        assert MithrilTracker(entries=4).on_rfm() is None

    def test_alternating_aggressors_both_served(self):
        tracker = MithrilTracker(entries=4)
        for _ in range(10):
            tracker.record(1)
            tracker.record(2)
        first = tracker.on_rfm()
        second = tracker.on_rfm()
        assert {first, second} == {1, 2}


class TestMisraGriesBehavior:
    def test_spill_replacement(self):
        tracker = MithrilTracker(entries=2)
        tracker.record(1)
        tracker.record(2)
        tracker.record(3)  # spills
        tracker.record(4)  # spill reaches min -> swap in
        rows = set(tracker._table)
        assert 4 in rows
        assert len(rows) == 2

    def test_heavy_hitter_survives_churn(self):
        tracker = MithrilTracker(entries=4)
        for i in range(300):
            tracker.record(7)
            tracker.record(100 + (i % 50))
        assert tracker.on_rfm() == 7


class TestFractionalMithril:
    def test_eact_weights(self):
        tracker = MithrilTracker(entries=4, fraction_bits=7)
        tracker.record(7, weight=2.5)
        assert tracker.count_for(7) == pytest.approx(2.5)

    def test_fractional_winner(self):
        tracker = MithrilTracker(entries=4, fraction_bits=7)
        tracker.record(1, weight=1.0)
        tracker.record(2, weight=1.5)
        assert tracker.on_rfm() == 2

    def test_reset(self):
        tracker = MithrilTracker(entries=4)
        tracker.record(1)
        tracker.reset()
        assert tracker.count_for(1) == 0.0
        assert tracker.on_rfm() is None
