"""Golden end-to-end SimResults pinned from the pre-kernel-rewrite tree.

``tests/test_engine_equivalence.py`` proves the fast engine matches the
reference engine *at the same commit*; these tests additionally prove
the whole simulation stack (trackers, mitigation schemes, controller,
event loop) still produces the **same numbers it produced before the
tracker-kernel/controller refactor**.  The fixture was captured from the
pre-refactor tree; any diff here means the optimization changed
simulation semantics, not just speed.

Regenerate (only for a deliberate semantic change) with::

    PYTHONPATH=src python tests/test_sim_golden.py --regenerate
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.system import SystemSimulator
from repro.workloads.synthetic import rate_mode_traces

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_simresults.json"

REQUESTS = 150

#: (case name, workload, defense) — one per tracker/scheme shape the
#: simulator supports, matching the equivalence-matrix coverage.
CASES = [
    ("unprotected_mcf", "mcf", None),
    ("graphene_impress_p", "mcf",
     DefenseConfig(tracker="graphene", scheme="impress-p")),
    ("graphene_impress_n", "copy",
     DefenseConfig(tracker="graphene", scheme="impress-n")),
    ("graphene_express", "copy",
     DefenseConfig(tracker="graphene", scheme="express", alpha=1.0)),
    ("para_no_rp", "mcf",
     DefenseConfig(tracker="para", scheme="no-rp", trh=100)),
    ("mithril_no_rp", "add_copy",
     DefenseConfig(tracker="mithril", scheme="no-rp", rfmth=20)),
    ("mint_impress_n", "add_copy",
     DefenseConfig(tracker="mint", scheme="impress-n", trh=1600, rfmth=20)),
]


def _result_fields(result):
    return {
        "elapsed_cycles": result.elapsed_cycles,
        "core_cycles": list(result.core_cycles),
        "core_requests": list(result.core_requests),
        "counts": dataclasses.asdict(result.counts),
        "row_hits": result.row_hits,
        "row_misses": result.row_misses,
        "row_conflicts": result.row_conflicts,
        "rfm_mitigations": result.rfm_mitigations,
        "tmro_closures": result.tmro_closures,
    }


def _run_case(workload, defense):
    system = SystemConfig(n_cores=2, banks_per_channel=8)
    traces = rate_mode_traces(workload, 2, REQUESTS, seed=5)
    return _result_fields(SystemSimulator(system, traces, defense).run())


def _load_golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "name,workload,defense", CASES, ids=[case[0] for case in CASES]
)
def test_golden_simresult(name, workload, defense):
    assert _run_case(workload, defense) == _load_golden()[name]


def test_fixture_covers_every_case():
    assert sorted(_load_golden()) == sorted(name for name, _, _ in CASES)


def _regenerate():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: _run_case(workload, defense)
        for name, workload, defense in CASES
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
