"""Tests for the content-addressed result store (repro.results)."""

import json

import pytest

from repro.experiments.orchestrator import Orchestrator, experiment_recipe
from repro.results import (
    ResultStore,
    canonical_json,
    content_key,
    store_for,
)
from repro.results.report import compare_stores, resolve_store
from repro.scenarios import (
    run_scenario_cached,
    scenario_baseline_recipe,
    scenario_run_recipe,
)
from repro.scenarios.spec import ScenarioSpec
from repro.sim.config import DefenseConfig, SystemConfig
from repro.workloads.sources import AttackerSource

SMALL = SystemConfig(n_cores=2, banks_per_channel=8)
DEFENSE = DefenseConfig(tracker="graphene", scheme="impress-p")
REQUESTS = 120

RECIPE = {"kind": "test", "x": 1, "y": [1, 2, 3]}
PAYLOAD = {"metrics": {"a": 1.5}, "note": "hello"}


def colocated(pattern="hammer", bank=2):
    """A small co-located spec; hammer/dwell variants share a baseline."""
    if pattern == "hammer":
        attacker = AttackerSource("hammer", bank=bank, rows=(50, 52))
    else:
        attacker = AttackerSource("dwell", bank=bank, rows=(60, 62))
    return ScenarioSpec.colocated(
        f"small_{pattern}", "mcf", attackers=(attacker,),
        system=SMALL, defense=DEFENSE,
    )


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_does_not_matter(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_tuples_serialize_as_lists(self):
        assert canonical_json({"t": (1, 2)}) == canonical_json({"t": [1, 2]})

    def test_rejects_non_finite_with_path(self):
        with pytest.raises(ValueError, match=r"\$\.metrics\[1\]"):
            canonical_json({"metrics": [1.0, float("inf")]})
        with pytest.raises(ValueError, match="non-finite"):
            content_key({"x": float("nan")})

    def test_random_scenario_recipes_key_deterministically(self):
        """Fuzzer-generated specs hash stably through the store layer.

        For every random spec: the run recipe is strict JSON (survives a
        serialize/reload cycle byte-identically) and its content key is
        insensitive to both dict key order and the spec's display name.
        """
        import dataclasses
        import random

        from repro.scenarios.fuzz import mutate_spec, random_spec

        rng = random.Random(505)
        for index in range(8):
            spec = mutate_spec(rng, random_spec(rng, index))
            recipe = scenario_run_recipe(spec, REQUESTS, 0)
            text = canonical_json(recipe)
            assert canonical_json(json.loads(text)) == text
            assert content_key(json.loads(text)) == content_key(recipe)
            renamed = dataclasses.replace(spec, name="other")
            assert (
                content_key(scenario_run_recipe(renamed, REQUESTS, 0))
                == content_key(recipe)
            )


class TestBlobs:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key, path, created = store.put(RECIPE, PAYLOAD)
        assert created
        assert path.is_file()
        assert key == content_key(RECIPE)
        assert store.get(key) == PAYLOAD
        assert store.fetch(RECIPE) == PAYLOAD
        assert store.get("0" * 16) is None

    def test_second_put_dedups(self, tmp_path):
        store = ResultStore(tmp_path)
        _, path, _ = store.put(RECIPE, PAYLOAD)
        before = path.read_text()
        key, path2, created = store.put(RECIPE, PAYLOAD)
        assert not created
        assert path2 == path
        assert path.read_text() == before

    def test_overwrite_rewrites(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(RECIPE, PAYLOAD)
        _, _, created = store.put(
            RECIPE, {"metrics": {"a": 2.0}}, overwrite=True
        )
        assert created
        assert store.fetch(RECIPE)["metrics"]["a"] == 2.0

    def test_corrupt_blob_reads_as_miss_and_is_rewritten(self, tmp_path):
        store = ResultStore(tmp_path)
        key, path, _ = store.put(RECIPE, PAYLOAD)
        path.write_text("{ not json")
        assert store.get(key) is None
        _, _, created = store.put(RECIPE, PAYLOAD)
        assert created
        assert store.get(key) == PAYLOAD

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key, path, _ = store.put(RECIPE, PAYLOAD)
        blob = json.loads(path.read_text())
        blob["key"] = "deadbeefdeadbeef"
        path.write_text(json.dumps(blob))
        assert store.get(key) is None

    def test_non_finite_payload_rejected_at_write(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="non-finite"):
            store.put(RECIPE, {"metrics": {"slowdown": float("inf")}})
        assert store.fetch(RECIPE) is None


class TestIndex:
    def test_alias_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _, _ = store.put(
            RECIPE, PAYLOAD, name="run_a", kind="scenario",
            meta={"seed": 0},
        )
        entry = store.latest("run_a")
        assert entry["key"] == key
        assert entry["kind"] == "scenario"
        assert entry["meta"] == {"seed": 0}
        assert entry["timestamp"]
        assert entry["git_sha"]
        assert store.names(kind="scenario") == ["run_a"]

    def test_two_recipes_one_name_both_retrievable(self, tmp_path):
        """The overwrite bug fix: names alias, content keys identify."""
        store = ResultStore(tmp_path)
        key0, _, _ = store.put(
            {**RECIPE, "seed": 0}, {"seed": 0}, name="run"
        )
        key1, _, _ = store.put(
            {**RECIPE, "seed": 1}, {"seed": 1}, name="run"
        )
        assert key0 != key1
        assert store.get(key0) == {"seed": 0}
        assert store.get(key1) == {"seed": 1}
        assert [e["key"] for e in store.entries(name="run")] == [key0, key1]
        assert store.latest("run")["key"] == key1

    def test_realiasing_same_key_does_not_duplicate(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(RECIPE, PAYLOAD, name="run")
        store.put(RECIPE, PAYLOAD, name="run")
        assert len(store.entries(name="run")) == 1

    def test_corrupt_index_reads_empty_and_rebuilds(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _, _ = store.put(RECIPE, PAYLOAD, name="run")
        store.index_path.write_text("not json at all")
        assert store.entries() == []
        assert store.get(key) == PAYLOAD  # blobs survive index loss
        store.put({**RECIPE, "v": 2}, PAYLOAD, name="run2")
        assert store.names() == ["run2"]


class TestScenarioStoreIntegration:
    def test_distinct_seeds_are_distinct_artifacts(self, tmp_path):
        spec = colocated()
        _, path0, _ = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS, seed=0
        )
        _, path1, _ = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS, seed=1
        )
        assert path0 != path1
        assert path0.is_file() and path1.is_file()
        store = store_for(tmp_path)
        keys = {e["key"] for e in store.entries(name=spec.name)}
        assert len(keys) == 2
        for seed, key in ((0, path0.stem), (1, path1.stem)):
            payload = store.get(key)
            assert payload["seed"] == seed

    def test_shared_baseline_leg_stored_once(self, tmp_path):
        """N scenarios with identical victim sides share one baseline blob."""
        hammer, dwell = colocated("hammer"), colocated("dwell")
        assert hammer.baseline().recipe() == dwell.baseline().recipe()
        run_scenario_cached(hammer, tmp_path, n_requests=REQUESTS)
        run_scenario_cached(dwell, tmp_path, n_requests=REQUESTS)
        store = store_for(tmp_path)
        baselines = store.entries(kind="scenario-baseline")
        assert {e["name"] for e in baselines} == {
            "small_hammer@baseline", "small_dwell@baseline"
        }
        assert len({e["key"] for e in baselines}) == 1  # one blob
        scenarios = store.entries(kind="scenario")
        assert len({e["key"] for e in scenarios}) == 2
        # Both payloads reference the shared blob.
        for entry in scenarios:
            payload = store.get(entry["key"])
            assert payload["baseline_key"] == baselines[0]["key"]
            assert store.get(payload["baseline_key"]) is not None

    def test_recipe_is_explicit_fields_not_repr(self):
        recipe = scenario_run_recipe(colocated(), REQUESTS, 0)
        text = canonical_json(recipe)
        assert "ScenarioSpec(" not in text
        assert recipe["scenario"]["system"]["n_cores"] == 2
        assert recipe["scenario"]["defense"]["tracker"] == "graphene"
        assert recipe["scenario"]["cores"][1]["kind"] == "attacker"
        assert recipe["n_requests"] == REQUESTS

    def test_baseline_leg_never_collides_with_a_full_run(self, tmp_path):
        """Running a scenario's victims-plus-idle composition as a
        scenario in its own right must not hit the reduced baseline-leg
        blob: the leg recipe carries a distinct kind."""
        spec = colocated()
        as_scenario = spec.baseline()
        assert scenario_baseline_recipe(spec, REQUESTS, 0) != (
            scenario_run_recipe(as_scenario, REQUESTS, 0)
        )
        run_scenario_cached(spec, tmp_path, n_requests=REQUESTS)
        payload, _, cached = run_scenario_cached(
            as_scenario, tmp_path, n_requests=REQUESTS
        )
        assert not cached  # the leg blob is not a run artifact
        assert payload["config_hash"]  # full run payload shape
        assert payload["scenario"] == as_scenario.name

    def test_cache_hit_rebuilds_a_lost_index(self, tmp_path):
        spec = colocated()
        run_scenario_cached(spec, tmp_path, n_requests=REQUESTS)
        store = store_for(tmp_path)
        store.index_path.unlink()
        _, _, cached = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS
        )
        assert cached  # blobs are the durable layer ...
        names = {e["name"] for e in store.entries()}
        assert names == {spec.name, f"{spec.name}@baseline"}

    def test_no_temp_files_linger(self, tmp_path):
        run_scenario_cached(colocated(), tmp_path, n_requests=REQUESTS)
        assert not list((tmp_path / "store").rglob("*.tmp"))


class TestOrchestratorCacheParity:
    """The store-backed cache keeps the pre-refactor layer's contract."""

    def make(self, tmp_path, **kwargs):
        defaults = dict(results_dir=tmp_path, jobs=1, n_requests=40)
        defaults.update(kwargs)
        return Orchestrator(**defaults)

    def test_miss_then_hit_then_force(self, tmp_path):
        first = self.make(tmp_path).run(only=["table1"])
        assert [o.cached for o in first.outcomes] == [False]
        second = self.make(tmp_path).run(only=["table1"])
        assert [o.cached for o in second.outcomes] == [True]
        assert second.outcomes[0].result == first.outcomes[0].result
        forced = self.make(tmp_path, force=True).run(only=["table1"])
        assert [o.cached for o in forced.outcomes] == [False]

    def test_option_change_is_a_new_blob_not_an_overwrite(self, tmp_path):
        self.make(tmp_path, n_requests=40).run(only=["table1"])
        self.make(tmp_path, n_requests=41).run(only=["table1"])
        store = store_for(tmp_path)
        entries = store.entries(name="table1", kind="experiment")
        assert len({e["key"] for e in entries}) == 2
        for entry in entries:
            assert store.get(entry["key"]) is not None
        # The older options still hit their own cache entry.
        again = self.make(tmp_path, n_requests=40).run(only=["table1"])
        assert [o.cached for o in again.outcomes] == [True]

    def test_shares_one_store_with_scenarios(self, tmp_path):
        self.make(tmp_path).run(only=["table1"])
        run_scenario_cached(colocated(), tmp_path, n_requests=REQUESTS)
        store = store_for(tmp_path)
        kinds = {e["kind"] for e in store.entries()}
        assert {"experiment", "scenario", "scenario-baseline"} <= kinds

    def test_recipe_carries_version_and_options(self, tmp_path):
        recipe = experiment_recipe("table1", {"quick": True})
        assert recipe["kind"] == "experiment"
        assert recipe["artifact_version"] >= 1
        assert recipe["options"] == {"quick": True}


class TestReport:
    def fill(self, root, seed):
        run_scenario_cached(
            colocated(), root, n_requests=REQUESTS, seed=seed
        )

    def test_compare_two_stores(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        self.fill(a, 0)
        self.fill(b, 1)
        rows, only_a, only_b, mismatched = compare_stores(
            resolve_store(a), resolve_store(b)
        )
        assert only_a == [] and only_b == []
        metrics = {row["metric"] for row in rows}
        assert "victim_slowdown" in metrics
        assert "attacker_act_rate_per_cycle" in metrics
        for row in rows:
            assert row["scenario"] == "small_hammer"
        # Different seeds are a run-shape mismatch worth flagging.
        assert [m["scenario"] for m in mismatched] == ["small_hammer"]
        assert mismatched[0]["meta_a"] == {"n_requests": REQUESTS,
                                           "seed": 0}
        assert mismatched[0]["meta_b"] == {"n_requests": REQUESTS,
                                           "seed": 1}

    def test_same_shape_runs_are_not_flagged(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        self.fill(a, 0)
        self.fill(b, 0)
        rows, _, _, mismatched = compare_stores(
            resolve_store(a), resolve_store(b)
        )
        assert rows and mismatched == []

    def test_resolve_store_accepts_dir_or_root(self, tmp_path):
        self.fill(tmp_path, 0)
        via_dir = resolve_store(tmp_path)
        via_root = resolve_store(tmp_path / "store")
        assert via_dir.root == via_root.root

    def test_empty_stores_are_not_comparable(self, tmp_path):
        rows, _, _, _ = compare_stores(
            resolve_store(tmp_path / "x"), resolve_store(tmp_path / "y")
        )
        assert rows == []


class TestLockRetry:
    def test_transient_lock_timeouts_are_retried(self, tmp_path):
        from repro.results.store import StoreLockTimeout, with_lock_retry

        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise StoreLockTimeout(tmp_path / "lock", 0.1)
            return "ok"

        assert with_lock_retry(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        # Jittered exponential: bounded by 0.5x-1.5x of base * 2**n.
        assert 0.5 * 0.05 <= sleeps[0] <= 1.5 * 0.05
        assert 0.5 * 0.10 <= sleeps[1] <= 1.5 * 0.10

    def test_exhausted_attempts_reraise(self, tmp_path):
        from repro.results.store import StoreLockTimeout, with_lock_retry

        sleeps = []

        def always_contended():
            raise StoreLockTimeout(tmp_path / "lock", 0.1)

        with pytest.raises(StoreLockTimeout):
            with_lock_retry(
                always_contended, attempts=3, sleep=sleeps.append
            )
        assert len(sleeps) == 2   # no sleep after the final attempt

    def test_other_exceptions_pass_straight_through(self):
        from repro.results.store import with_lock_retry

        def broken():
            raise ValueError("not a lock problem")

        with pytest.raises(ValueError):
            with_lock_retry(broken, sleep=lambda _s: None)


class TestStoreStats:
    def test_stats_counts_blobs_bytes_and_index(self, tmp_path):
        store = store_for(tmp_path)
        assert store.stats() == {
            "blobs": 0, "blob_bytes": 0, "index_entries": 0,
        }
        store.put({"kind": "t", "n": 1}, {"x": 1}, name="a", kind="t")
        store.put({"kind": "t", "n": 2}, {"x": 2}, name="b", kind="t")
        stats = store.stats()
        assert stats["blobs"] == 2
        assert stats["index_entries"] == 2
        assert stats["blob_bytes"] == sum(
            p.stat().st_size for p in store.objects_dir.glob("*.json")
        )


class TestGCReportJson:
    def test_to_json_names_every_reclaimable_item(self, tmp_path):
        store = store_for(tmp_path)
        key, _path, _created = store.put(
            {"kind": "t", "n": 1}, {"x": 1}, name="a", kind="t"
        )
        store.unalias("a")
        report = store.gc(dry_run=True, blob_grace_s=0.0)
        doc = report.to_json()
        assert doc["dry_run"] is True
        assert doc["unreferenced_blobs"] == [{
            "key": key,
            "bytes": store.blob_path(key).stat().st_size,
        }]
        assert doc["stale_tmp"] == []
        assert doc["live_blobs"] == 0
        assert doc["reclaimable_bytes"] > 0
        json.dumps(doc)   # round-trippable, no Path objects leak
