"""Tests for the experiment helpers (SweepRunner, geomean rows)."""

import pytest

from repro.experiments.common import (
    QUICK_SPEC,
    QUICK_STREAM,
    SweepRunner,
    category_geomeans,
    spec_of,
    stream_of,
    workload_set,
)
from repro.sim.config import DefenseConfig, SystemConfig


class TestWorkloadSets:
    def test_quick_set(self):
        names = workload_set(quick=True)
        assert set(names) == set(QUICK_SPEC) | set(QUICK_STREAM)

    def test_full_set_is_20(self):
        assert len(workload_set(quick=False)) == 20

    def test_spec_stream_partition(self):
        names = workload_set(quick=False)
        assert len(spec_of(names)) == 10
        assert len(stream_of(names)) == 10
        assert not set(spec_of(names)) & set(stream_of(names))


class TestCategoryGeomeans:
    def test_appends_geomean_rows(self):
        per = {"mcf": 0.9, "gcc": 1.1, "add": 0.8, "copy": 0.5}
        out = category_geomeans(per, list(per))
        assert out["SPEC (GMean)"] == pytest.approx((0.9 * 1.1) ** 0.5)
        assert out["STREAM (GMean)"] == pytest.approx((0.8 * 0.5) ** 0.5)

    def test_preserves_workload_rows(self):
        per = {"mcf": 0.9}
        out = category_geomeans(per, ["mcf"])
        assert out["mcf"] == 0.9
        assert "STREAM (GMean)" not in out


class TestSweepRunner:
    def test_caches_runs(self):
        runner = SweepRunner(
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            n_requests=80,
        )
        first = runner.run("mcf", None)
        second = runner.run("mcf", None)
        assert first is second  # same object: cached

    def test_distinct_configs_not_conflated(self):
        runner = SweepRunner(
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            n_requests=80,
        )
        base = runner.run("mcf", None)
        defended = runner.run(
            "mcf", DefenseConfig(tracker="para", scheme="no-rp", trh=200)
        )
        assert base is not defended

    def test_speedup_of_baseline_is_one(self):
        runner = SweepRunner(
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            n_requests=80,
        )
        assert runner.speedup("gcc", None, None) == pytest.approx(1.0)

    def test_cache_stats_track_hits_and_misses(self):
        runner = SweepRunner(
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            n_requests=80,
        )
        assert runner.cache_stats().size == 0
        runner.run("mcf", None)
        runner.run("mcf", None)
        stats = runner.cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_tmro_sweep_shares_one_baseline_entry(self):
        # The key contract: the baseline leg of speedup() is cached under
        # (workload, baseline, None), so a tMRO sweep adds one entry per
        # point plus a single shared baseline.
        runner = SweepRunner(
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            n_requests=80,
        )
        for tmro_ns in (36.0, 66.0, 96.0):
            runner.speedup("copy", None, None, tmro_ns=tmro_ns)
        stats = runner.cache_stats()
        assert stats.size == 4          # 3 sweep points + 1 baseline
        assert stats.hits == 2          # baseline reused on points 2 and 3

    def test_clear_cache_resets(self):
        runner = SweepRunner(
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            n_requests=80,
        )
        runner.run("mcf", None)
        runner.clear_cache()
        stats = runner.cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        assert stats.hit_rate == 0.0
