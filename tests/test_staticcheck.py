"""Tests for the ``repro check`` AST contract checker.

Every rule gets three fixtures: source that fires it, compliant source
it stays quiet on, and a suppressed violation that is honored *and*
counted.  Each firing fixture selects its rule by id through
``run_check(rule_ids=[...])``, so deleting a rule's implementation
fails these tests at the registry lookup — no rule can go vacuous.
The suite ends with the gate the CI job enforces: the real repo is
clean, with zero waivers in ``distrib/``, ``results/`` and ``serve/``.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import all_rules, get_rules, run_check
from repro.staticcheck.cli import changed_files, main
from repro.staticcheck.engine import PARSE_ERROR_RULE

REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_RULE_IDS = (
    "no-repr-key",
    "rename-is-final",
    "atomic-write-only",
    "slots-on-hot-classes",
    "no-alloc-in-kernels",
    "no-wallclock-nondeterminism",
    "simresult-parity",
)


def write_tree(tmp_path, files):
    """Materialize ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def check(tmp_path, rule_id=None):
    rule_ids = [rule_id] if rule_id else None
    return run_check([tmp_path], rule_ids=rule_ids, root=tmp_path)


# -- registry ---------------------------------------------------------------


def test_registry_has_all_rules():
    assert {rule.rule_id for rule in all_rules()} == set(ALL_RULE_IDS)


def test_every_rule_has_summary():
    for rule in all_rules():
        assert rule.summary, rule.rule_id


def test_unknown_rule_id_raises_with_known_names():
    with pytest.raises(KeyError, match="no-repr-key"):
        get_rules(["no-such-rule"])


# -- no-repr-key ------------------------------------------------------------


def test_no_repr_key_fires(tmp_path):
    write_tree(tmp_path, {"store.py": """
        def recipe(cfg):
            return content_key({"cfg": repr(cfg)})

        def recipe2(cfg):
            return canonical_json({"cfg": f"{cfg}"})

        def recipe3(cfg):
            return content_key({"cfg": str(cfg)})
    """})
    report = check(tmp_path, "no-repr-key")
    lines = sorted(f.line for f in report.findings)
    assert len(report.findings) == 3
    assert [f.rule_id for f in report.findings] == ["no-repr-key"] * 3
    assert lines == [3, 6, 9]


def test_no_repr_key_quiet_on_plain_data(tmp_path):
    write_tree(tmp_path, {"store.py": """
        def recipe(cfg):
            key = content_key({"name": cfg.name, "trh": cfg.trh})
            label = f"experiment {key}"   # f-string outside the sink
            return key, repr(cfg)          # repr outside the sink
    """})
    assert check(tmp_path, "no-repr-key").findings == []


def test_no_repr_key_suppression_counted(tmp_path):
    write_tree(tmp_path, {"store.py": """
        def recipe(cfg):
            # repro: allow[no-repr-key] legacy key, migrated in PR 11
            return content_key({"cfg": repr(cfg)})
    """})
    report = check(tmp_path, "no-repr-key")
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert len(report.suppressions) == 1
    assert report.suppressions[0].reason == "legacy key, migrated in PR 11"
    assert report.exit_code == 0


# -- rename-is-final --------------------------------------------------------


def test_rename_is_final_fires_on_write_after_rename(tmp_path):
    write_tree(tmp_path, {"distrib/queue.py": """
        import os

        def release(claimed_path, pending_path):
            os.rename(claimed_path, pending_path)
            claimed_path.write_text("{}")   # resurrects the moved file
    """})
    report = check(tmp_path, "rename-is-final")
    assert [f.line for f in report.findings] == [6]


def test_rename_is_final_fires_on_handoff_rewrite(tmp_path):
    # Writing into a *pending* destination after the rename races the
    # next claimant -- even atomically (the PR 7 bug shape).
    write_tree(tmp_path, {"distrib/queue.py": """
        import os

        def requeue(self, claimed_path, task_id):
            pending_path = self._path("pending", task_id)
            os.rename(claimed_path, pending_path)
            _atomic_write_json(pending_path, {"attempts": 1})
    """})
    report = check(tmp_path, "rename-is-final")
    assert [f.line for f in report.findings] == [7]


def test_rename_is_final_fires_on_unwritten_tmp(tmp_path):
    write_tree(tmp_path, {"results/store.py": """
        import os

        def put(tmp, path):
            os.replace(tmp, path)   # tmp was never written here
    """})
    report = check(tmp_path, "rename-is-final")
    assert len(report.findings) == 1
    assert "without its content" in report.findings[0].message


def test_rename_is_final_quiet_on_claim_handshake(tmp_path):
    # The blessed acquisition: rename into a state the winner owns
    # (claimed), then atomically rewrite the lease.
    write_tree(tmp_path, {"distrib/queue.py": """
        import os

        def claim(self, task_id, payload):
            pending_path = self._path("pending", task_id)
            claimed_path = self._path("claimed", task_id)
            os.rename(pending_path, claimed_path)
            _atomic_write_json(claimed_path, payload)

        def put(tmp, path, text):
            tmp.write_text(text)
            os.replace(tmp, path)
    """})
    assert check(tmp_path, "rename-is-final").findings == []


def test_rename_is_final_ignores_out_of_scope_files(tmp_path):
    write_tree(tmp_path, {"workloads/gen.py": """
        import os

        def shuffle(a, b):
            os.rename(a, b)
            a.write_text("x")
    """})
    assert check(tmp_path, "rename-is-final").findings == []


def test_rename_is_final_suppression_counted(tmp_path):
    write_tree(tmp_path, {"serve/journal.py": """
        import os

        def rotate(old, new):
            os.rename(old, new)
            old.write_text("")  # repro: allow[rename-is-final] recreate empty journal
    """})
    report = check(tmp_path, "rename-is-final")
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- atomic-write-only ------------------------------------------------------


def test_atomic_write_only_fires(tmp_path):
    write_tree(tmp_path, {"results/store.py": """
        import json

        def save_index(path, index):
            path.write_text(json.dumps(index))

        def save_blob(path, blob):
            with open(path, "w") as handle:
                handle.write(blob)
    """})
    report = check(tmp_path, "atomic-write-only")
    assert [f.line for f in report.findings] == [5, 8]


def test_atomic_write_only_quiet_on_blessed_patterns(tmp_path):
    write_tree(tmp_path, {"results/store.py": """
        import os

        def atomic_write_text(path, text):
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(text)
            os.replace(tmp, path)

        def lock(lock_path):
            with open(lock_path, "w"):
                pass

        def append_log(log_path, line):
            log_path.write_text(line)

        def read(path):
            with open(path) as handle:
                return handle.read()
    """})
    assert check(tmp_path, "atomic-write-only").findings == []


def test_atomic_write_only_excludes_chaos_harness(tmp_path):
    write_tree(tmp_path, {"distrib/chaos.py": """
        def tear(path):
            path.write_text("{tor")   # manufacturing torn state is the job
    """})
    assert check(tmp_path, "atomic-write-only").findings == []


def test_atomic_write_only_suppression_counted(tmp_path):
    write_tree(tmp_path, {"serve/server.py": """
        def save(path, text):
            path.write_text(text)  # repro: allow[atomic-write-only] pidfile
    """})
    report = check(tmp_path, "atomic-write-only")
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- slots-on-hot-classes ---------------------------------------------------


def test_slots_fires_on_hot_class_without_slots(tmp_path):
    write_tree(tmp_path, {"sim/engine.py": """
        class Simulator:
            def __init__(self):
                self.now = 0
    """})
    report = check(tmp_path, "slots-on-hot-classes")
    assert len(report.findings) == 1
    assert "Simulator" in report.findings[0].message


def test_slots_quiet_on_compliant_and_exempt(tmp_path):
    write_tree(tmp_path, {"trackers/impl.py": """
        from dataclasses import dataclass

        class Tracker:
            __slots__ = ("count",)

        @dataclass(slots=True)
        class Config:
            trh: float = 4000.0

        class TrackerError(Exception):
            pass

        class QueueEmptyError(RuntimeError):
            pass
    """})
    assert check(tmp_path, "slots-on-hot-classes").findings == []


def test_slots_ignores_out_of_scope_files(tmp_path):
    write_tree(tmp_path, {"experiments/fig3.py": """
        class Plot:
            pass
    """})
    assert check(tmp_path, "slots-on-hot-classes").findings == []


def test_slots_suppression_counted(tmp_path):
    write_tree(tmp_path, {"memctrl/debug.py": """
        # repro: allow[slots-on-hot-classes] debug-only, never in the loop
        class Probe:
            pass
    """})
    report = check(tmp_path, "slots-on-hot-classes")
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- no-alloc-in-kernels ----------------------------------------------------


def test_no_alloc_fires_in_record_unit(tmp_path):
    write_tree(tmp_path, {"trackers/impl.py": """
        class Tracker:
            __slots__ = ("rows",)

            def record_unit(self, row):
                spill = [row]          # per-ACT allocation
                return len(spill)
    """})
    report = check(tmp_path, "no-alloc-in-kernels")
    assert len(report.findings) == 1
    assert "record_unit" in report.findings[0].message


def test_no_alloc_fires_in_kernel_closures(tmp_path):
    write_tree(tmp_path, {"trackers/impl.py": """
        def raw_kernel(table):
            def kernel(row, raw):
                return {row: raw}      # per-event dict
            return kernel

        def _build_act_kernels(controller):
            bound = []                 # bind-time list: allowed
            for bank in range(4):
                def kernel(row):
                    return sorted(bound)   # per-event sort
                bound.append(kernel)
            return bound
    """})
    report = check(tmp_path, "no-alloc-in-kernels")
    assert [f.line for f in report.findings] == [4, 11]


def test_no_alloc_quiet_on_integer_kernels(tmp_path):
    write_tree(tmp_path, {"trackers/impl.py": """
        class Tracker:
            __slots__ = ("counts", "threshold")

            def record_unit(self, row):
                counts = self.counts
                counts[row] = counts.get(row, 0) + 1
                return 1 if counts[row] >= self.threshold else 0

        def raw_kernel(scale):
            table = {}                 # bind-time allocation: allowed
            def kernel(row, raw):
                table[row] = table.get(row, 0) + raw
                return 0
            return kernel
    """})
    assert check(tmp_path, "no-alloc-in-kernels").findings == []


def test_no_alloc_suppression_counted(tmp_path):
    write_tree(tmp_path, {"trackers/impl.py": """
        class Tracker:
            __slots__ = ()

            def record_unit(self, row):
                return len([row])  # repro: allow[no-alloc-in-kernels] cold path
    """})
    report = check(tmp_path, "no-alloc-in-kernels")
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- no-wallclock-nondeterminism --------------------------------------------


def test_no_wallclock_fires(tmp_path):
    write_tree(tmp_path, {"sim/engine.py": """
        import random
        import time

        def jitter():
            start = time.time()
            rng = random.Random()
            return start + rng.random() + random.random()
    """})
    report = check(tmp_path, "no-wallclock-nondeterminism")
    messages = "\n".join(f.message for f in report.findings)
    assert len(report.findings) == 3
    assert "time.time" in messages
    assert "unseeded random.Random()" in messages
    assert "module-level random.random()" in messages


def test_no_wallclock_quiet_on_seeded_rng(tmp_path):
    write_tree(tmp_path, {"workloads/gen.py": """
        import random

        def trace(seed):
            rng = random.Random(seed)
            return [rng.randrange(64) for _ in range(8)]
    """})
    assert check(tmp_path, "no-wallclock-nondeterminism").findings == []


def test_no_wallclock_ignores_out_of_scope_files(tmp_path):
    write_tree(tmp_path, {"serve/client.py": """
        import random
        import time

        def backoff():
            return time.time() + random.Random().random()
    """})
    assert check(tmp_path, "no-wallclock-nondeterminism").findings == []


def test_no_wallclock_suppression_counted(tmp_path):
    write_tree(tmp_path, {"scenarios/presets.py": """
        import time

        def stamp():
            return time.time()  # repro: allow[no-wallclock-nondeterminism] display only
    """})
    report = check(tmp_path, "no-wallclock-nondeterminism")
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- simresult-parity -------------------------------------------------------


_PARITY_STATS = """
    from dataclasses import dataclass, field
    from typing import Dict, List

    @dataclass(slots=True)
    class SimResult:
        elapsed_cycles: int
        core_cycles: List[int]
        row_hits: int = 0
        counts: object = field(default_factory=dict)

        def to_json(self) -> Dict[str, object]:
            return {
                "elapsed_cycles": self.elapsed_cycles,
                "core_cycles": list(self.core_cycles),
                "row_hits": self.row_hits,
                "counts": dict(self.counts),
            }

        @classmethod
        def from_json(cls, data):
            return cls(
                elapsed_cycles=data["elapsed_cycles"],
                core_cycles=data["core_cycles"],
                row_hits=data["row_hits"],
                counts=data["counts"],
            )
"""


def test_simresult_parity_quiet_when_engines_agree(tmp_path):
    write_tree(tmp_path, {
        "sim/stats.py": _PARITY_STATS,
        "sim/system.py": """
            def _collect():
                return SimResult(elapsed_cycles=1, core_cycles=[1],
                                 row_hits=0, counts={})
        """,
        "sim/reference.py": """
            def _collect():
                return SimResult(elapsed_cycles=1, core_cycles=[1],
                                 row_hits=0, counts={})
        """,
        "sim/batch.py": """
            import dataclasses

            def _follower_result(leader):
                return dataclasses.replace(
                    leader,
                    core_cycles=list(leader.core_cycles),
                    counts=dict(leader.counts),
                )
        """,
    })
    assert check(tmp_path, "simresult-parity").findings == []


def test_simresult_parity_fires_on_missing_engine_field(tmp_path):
    write_tree(tmp_path, {
        "sim/stats.py": _PARITY_STATS,
        "sim/system.py": """
            def _collect():
                return SimResult(elapsed_cycles=1, core_cycles=[1],
                                 row_hits=0, counts={})
        """,
        "sim/reference.py": """
            def _collect():
                return SimResult(elapsed_cycles=1, core_cycles=[1],
                                 counts={})
        """,
    })
    report = check(tmp_path, "simresult-parity")
    assert len(report.findings) == 1
    assert report.findings[0].file == "sim/reference.py"
    assert "row_hits" in report.findings[0].message


def test_simresult_parity_fires_on_uncopied_mutable_field(tmp_path):
    write_tree(tmp_path, {
        "sim/stats.py": _PARITY_STATS,
        "sim/batch.py": """
            import dataclasses

            def _follower_result(leader):
                return dataclasses.replace(
                    leader,
                    core_cycles=list(leader.core_cycles),
                )
        """,
    })
    report = check(tmp_path, "simresult-parity")
    assert len(report.findings) == 1
    assert "counts" in report.findings[0].message
    assert "share one container" in report.findings[0].message


def test_simresult_parity_fires_on_json_drift(tmp_path):
    stats = _PARITY_STATS.replace('"row_hits": self.row_hits,\n', "")
    write_tree(tmp_path, {"sim/stats.py": stats})
    report = check(tmp_path, "simresult-parity")
    assert len(report.findings) == 1
    assert "to_json" in report.findings[0].message


def test_simresult_parity_suppression_counted(tmp_path):
    write_tree(tmp_path, {
        "sim/stats.py": _PARITY_STATS,
        "sim/reference.py": """
            def _collect():
                # repro: allow[simresult-parity] reference predates row_hits
                return SimResult(elapsed_cycles=1, core_cycles=[1],
                                 counts={})
        """,
    })
    report = check(tmp_path, "simresult-parity")
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- engine behaviors -------------------------------------------------------


def test_parse_error_is_a_finding_not_a_pass(tmp_path):
    write_tree(tmp_path, {"sim/broken.py": "def broken(:\n"})
    report = check(tmp_path)
    assert report.exit_code == 1
    assert [f.rule_id for f in report.findings] == [PARSE_ERROR_RULE]


def test_unused_waiver_is_reported(tmp_path):
    write_tree(tmp_path, {"sim/clean.py": """
        # repro: allow[no-wallclock-nondeterminism] nothing here needs it
        X = 1
    """})
    report = check(tmp_path)
    assert report.findings == []
    assert len(report.unused_suppressions) == 1
    assert any("unused waiver" in line for line in report.summary_lines())


def test_suppression_must_match_rule_id(tmp_path):
    write_tree(tmp_path, {"sim/engine.py": """
        class Simulator:  # repro: allow[no-wallclock-nondeterminism] wrong id
            pass
    """})
    report = check(tmp_path, "slots-on-hot-classes")
    assert len(report.findings) == 1        # wrong-rule waiver does not apply


def test_findings_sorted_and_json_round_trip(tmp_path):
    write_tree(tmp_path, {
        "sim/b.py": "class B:\n    pass\n",
        "sim/a.py": "class A:\n    pass\n",
    })
    report = check(tmp_path, "slots-on-hot-classes")
    assert [f.file for f in report.findings] == ["sim/a.py", "sim/b.py"]
    payload = json.loads(json.dumps(report.to_json()))
    assert payload["counts"]["findings"] == 2
    assert payload["findings"][0]["rule"] == "slots-on-hot-classes"


# -- CLI surface ------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_json_and_exit_codes(tmp_path, capsys):
    write_tree(tmp_path, {"sim/engine.py": "class Sim:\n    pass\n"})
    code = main([str(tmp_path), "--root", str(tmp_path), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["counts"]["findings"] == 1
    (tmp_path / "sim/engine.py").write_text(
        "class Sim:\n    __slots__ = ()\n"
    )
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 0


def test_cli_rule_selection_and_unknown_rule(tmp_path, capsys):
    write_tree(tmp_path, {"sim/engine.py": "class Sim:\n    pass\n"})
    args = [str(tmp_path), "--root", str(tmp_path)]
    assert main(args + ["--rule", "no-repr-key"]) == 0
    assert main(args + ["--rule", "slots-on-hot-classes"]) == 1
    capsys.readouterr()
    assert main(args + ["--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_changed_files_tracks_git_diff(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True,
        )

    git("init")
    git("config", "user.email", "t@t")
    git("config", "user.name", "t")
    write_tree(tmp_path, {
        "sim/engine.py": "class Sim:\n    __slots__ = ()\n",
        "sim/other.py": "X = 1\n",
    })
    git("add", "-A")
    git("commit", "-m", "seed")
    (tmp_path / "sim/engine.py").write_text("class Sim:\n    pass\n")
    write_tree(tmp_path, {"sim/new.py": "class New:\n    pass\n"})

    changed = changed_files("HEAD", tmp_path)
    names = {path.name for path in changed}
    assert names == {"engine.py", "new.py"}      # diff + untracked

    report = run_check(changed, root=tmp_path)
    assert {f.file for f in report.findings} == {"sim/engine.py",
                                                 "sim/new.py"}


def test_changed_files_unknown_ref_raises(tmp_path):
    subprocess.run(["git", "init"], cwd=tmp_path, check=True,
                   capture_output=True)
    with pytest.raises(RuntimeError):
        changed_files("no-such-ref", tmp_path)


# -- the repo-wide gate -----------------------------------------------------


def test_repo_is_clean():
    """The CI contract: the full repo passes every rule, exit 0."""
    report = run_check(
        [REPO_ROOT / "src", REPO_ROOT / "tools"], root=REPO_ROOT,
    )
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    assert report.exit_code == 0
    assert report.files_checked > 50


def test_repo_has_no_waivers_in_durability_layers():
    """Zero suppressions allowed in distrib/, results/, serve/."""
    report = run_check(
        [REPO_ROOT / "src", REPO_ROOT / "tools"], root=REPO_ROOT,
    )
    banned = [
        waiver for waiver in report.suppressions
        if any(layer in waiver.file
               for layer in ("distrib/", "results/", "serve/"))
    ]
    assert banned == []
