"""Seeded old-vs-new engine equivalence: SimResults must be bit-identical.

The optimized :class:`SystemSimulator` (packed events, bank-wakeup
deduplication, compiled traces, slotted hot structures) must produce
exactly the same :class:`SimResult` as the preserved pre-optimization
:class:`ReferenceSimulator` on every workload/defense combination.  Any
mismatch here means the optimization changed simulation semantics.
"""

import dataclasses

import pytest

from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.reference import ReferenceSimulator
from repro.sim.system import SystemSimulator
from repro.workloads.attacks import hammer_trace, row_press_trace
from repro.workloads.synthetic import rate_mode_traces
from repro.workloads.trace import Trace

REQUESTS = 150


def result_fields(result):
    """Every SimResult field, flattened for exact comparison."""
    return {
        "elapsed_cycles": result.elapsed_cycles,
        "core_cycles": result.core_cycles,
        "core_requests": result.core_requests,
        "counts": dataclasses.asdict(result.counts),
        "row_hits": result.row_hits,
        "row_misses": result.row_misses,
        "row_conflicts": result.row_conflicts,
        "rfm_mitigations": result.rfm_mitigations,
        "tmro_closures": result.tmro_closures,
    }


def assert_equivalent(system, traces, defense=None, tmro_ns=None):
    reference = ReferenceSimulator(
        system, traces, defense, tmro_ns=tmro_ns
    ).run()
    optimized = SystemSimulator(
        system, traces, defense, tmro_ns=tmro_ns
    ).run()
    assert result_fields(optimized) == result_fields(reference)


#: Every tracker the simulator supports appears at least once, so the
#: bit-identical contract covers the full kernel surface.
DEFENSES = [
    None,
    DefenseConfig(tracker="graphene", scheme="no-rp"),
    DefenseConfig(tracker="graphene", scheme="impress-p"),
    DefenseConfig(tracker="graphene", scheme="express", alpha=1.0),
    DefenseConfig(tracker="graphene", scheme="impress-n"),
    DefenseConfig(tracker="para", scheme="no-rp", trh=100),
    DefenseConfig(tracker="para", scheme="impress-p", trh=100),
    DefenseConfig(tracker="mithril", scheme="no-rp", rfmth=20),
    DefenseConfig(tracker="mithril", scheme="impress-p", rfmth=20),
    DefenseConfig(tracker="mint", scheme="impress-n", trh=1600, rfmth=20),
    DefenseConfig(tracker="mint", scheme="impress-p", trh=1600, rfmth=20),
    DefenseConfig(tracker="prac", scheme="no-rp", trh=150),
    DefenseConfig(tracker="prac", scheme="impress-p", trh=150),
    DefenseConfig(tracker="dsac", scheme="no-rp", trh=300),
    DefenseConfig(tracker="dsac", scheme="impress-p", trh=300),
]


def _defense_id(defense):
    if defense is None:
        return "none"
    return f"{defense.tracker}-{defense.scheme}"


class TestSeededEquivalence:
    @pytest.mark.parametrize("defense", DEFENSES, ids=_defense_id)
    @pytest.mark.parametrize("workload", ["mcf", "copy", "add_copy"])
    def test_workload_defense_matrix(self, workload, defense):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces(workload, 2, REQUESTS, seed=7)
        assert_equivalent(system, traces, defense)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeds(self, seed):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("mcf", 2, REQUESTS, seed=seed)
        assert_equivalent(
            system, traces, DefenseConfig(tracker="graphene",
                                          scheme="impress-p")
        )

    def test_tmro_override(self):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("copy", 2, REQUESTS, seed=4)
        assert_equivalent(system, traces, None, tmro_ns=66.0)

    def test_multi_channel(self):
        system = SystemConfig(n_cores=2, channels=2, banks_per_channel=8)
        traces = rate_mode_traces("add", 2, REQUESTS, seed=2)
        assert_equivalent(
            system, traces, DefenseConfig(tracker="graphene",
                                          scheme="impress-p")
        )

    def test_eight_core_table2_shape(self):
        system = SystemConfig()
        traces = rate_mode_traces("triad", 8, 60, seed=9)
        assert_equivalent(
            system, traces, DefenseConfig(tracker="mint", scheme="impress-n",
                                          rfmth=20)
        )

    def test_single_core_canonical(self):
        system = SystemConfig(n_cores=1)
        traces = rate_mode_traces("mcf", 1, 400, seed=0)
        assert_equivalent(system, traces)

    def test_empty_traces(self):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        assert_equivalent(system, [Trace([]), Trace([])])

    def test_attack_traffic(self):
        system = SystemConfig(n_cores=1, banks_per_channel=4)
        mapper = system.mapper()
        trace = hammer_trace(mapper, bank=0, rows=[10, 30], n_requests=600)
        assert_equivalent(
            system, [trace],
            DefenseConfig(tracker="graphene", scheme="no-rp", trh=150),
        )

    def test_row_press_traffic(self):
        system = SystemConfig(n_cores=1, banks_per_channel=4)
        mapper = system.mapper()
        trace = row_press_trace(
            mapper, bank=0, row=12, n_requests=300, hold_gap_cycles=40
        )
        assert_equivalent(
            system, [trace],
            DefenseConfig(tracker="graphene", scheme="impress-p", trh=200),
        )


def _fuzzed_specs(seed=2026, count=8):
    """Pinned-seed fuzzer candidates extending the equivalence matrix.

    The scenario fuzzer's generator reaches configurations the
    hand-written matrix above does not (phase-changing attackers,
    attacker-vs-attacker bank sharing, MOP disabled, mixed topologies),
    so a fixed sample of its space rides along here.
    """
    import random

    from repro.scenarios.fuzz import mutate_spec, random_spec

    rng = random.Random(seed)
    return [mutate_spec(rng, random_spec(rng, index)) for index in range(count)]


class TestFuzzedEquivalence:
    @pytest.mark.parametrize("index", range(8))
    def test_fuzzed_scenario_matrix(self, index):
        from repro.workloads.compiled import compiled_source_traces

        spec = _fuzzed_specs()[index]
        compiled = compiled_source_traces(
            spec.cores, REQUESTS, 0, spec.system.mapper()
        )
        traces = [entry.trace for entry in compiled]
        assert_equivalent(
            spec.system, traces, spec.defense, tmro_ns=spec.tmro_ns
        )


class TestCompiledPathInvariants:
    def test_precompiled_matches_on_the_fly(self):
        from repro.workloads.compiled import compile_traces

        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("mcf", 2, REQUESTS, seed=11)
        compiled = compile_traces(traces, system.mapper())
        from_traces = SystemSimulator(system, traces).run()
        from_compiled = SystemSimulator(system, compiled=compiled).run()
        assert result_fields(from_traces) == result_fields(from_compiled)

    def test_wrong_mapper_rejected(self):
        from repro.dram.address import MopAddressMapper
        from repro.workloads.compiled import compile_traces

        system = SystemConfig(n_cores=1, banks_per_channel=8)
        traces = rate_mode_traces("mcf", 1, 20, seed=0)
        wrong = compile_traces(
            traces, MopAddressMapper(channels=2, banks_per_channel=4)
        )
        with pytest.raises(ValueError):
            SystemSimulator(system, compiled=wrong)

    def test_rerun_determinism(self):
        system = SystemConfig(n_cores=2, banks_per_channel=8)
        traces = rate_mode_traces("add", 2, REQUESTS, seed=1)
        first = SystemSimulator(system, traces).run()
        second = SystemSimulator(system, traces).run()
        assert result_fields(first) == result_fields(second)
