"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.trh == 4000.0
        assert args.fraction_bits == 7

    def test_simulate_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "add", "--tracker", "bogus"]
            )


class TestCommands:
    def test_verify_runs(self, capsys):
        assert main(["verify", "--trh", "1000"]) == 0
        out = capsys.readouterr().out
        assert "impress-p" in out
        assert "no-rp" in out

    def test_size_runs(self, capsys):
        assert main(["size", "--trh", "4000", "--alpha", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "448" in out
        assert "383" in out

    def test_simulate_runs(self, capsys):
        code = main(
            ["simulate", "mcf", "--tracker", "para",
             "--scheme", "impress-p", "--requests", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_experiment_tables(self, capsys):
        assert main(["experiment", "tables"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_all_experiment_modules_registered(self):
        for name in ("fig3", "fig4", "fig13", "ablation", "all"):
            assert name in EXPERIMENT_MODULES
