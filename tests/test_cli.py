"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.trh == 4000.0
        assert args.fraction_bits == 7

    def test_simulate_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "add", "--tracker", "bogus"]
            )


class TestCommands:
    def test_verify_runs(self, capsys):
        assert main(["verify", "--trh", "1000"]) == 0
        out = capsys.readouterr().out
        assert "impress-p" in out
        assert "no-rp" in out

    def test_size_runs(self, capsys):
        assert main(["size", "--trh", "4000", "--alpha", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "448" in out
        assert "383" in out

    def test_simulate_runs(self, capsys):
        code = main(
            ["simulate", "mcf", "--tracker", "para",
             "--scheme", "impress-p", "--requests", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_experiment_tables(self, capsys):
        assert main(["experiment", "tables"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_all_experiment_modules_registered(self):
        for name in ("fig3", "fig4", "fig13", "ablation", "all"):
            assert name in EXPERIMENT_MODULES

    def test_simulate_accepts_mix_names(self, capsys):
        code = main(
            ["simulate", "add_copy", "--tracker", "graphene",
             "--requests", "120"]
        )
        assert code == 0
        assert "hit rate" in capsys.readouterr().out

    def test_simulate_accepts_scenario_names(self, capsys):
        code = main(["simulate", "colocated_hammer_mcf",
                     "--requests", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "victim slowdown" in out
        assert "attacker ACT rate" in out


class TestScenarioCommands:
    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "colocated_hammer_mcf" in out
        assert "multi_attacker_saturation" in out

    def test_scenario_run_unknown_name(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_scenario_run_writes_and_reuses_artifact(self, capsys, tmp_path):
        argv = ["scenario", "run", "colocated_hammer_mcf",
                "--requests", "60", "--results-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "simulated" in first
        assert "victim slowdown" in first
        # The artifact is a content-addressed blob, indexed by name.
        assert (tmp_path / "store" / "index.json").is_file()
        assert list((tmp_path / "store" / "objects").glob("*.json"))
        assert main(argv) == 0
        assert "cached" in capsys.readouterr().out

    def test_scenario_run_seeds_do_not_overwrite(self, capsys, tmp_path):
        base = ["scenario", "run", "colocated_hammer_mcf",
                "--requests", "60", "--results-dir", str(tmp_path)]
        assert main(base + ["--seed", "0"]) == 0
        assert main(base + ["--seed", "1"]) == 0
        out = capsys.readouterr().out
        artifacts = {
            line.split()[-1] for line in out.splitlines()
            if "artifact:" in line
        }
        assert len(artifacts) == 2  # two retrievable blobs, no clobber
        # Retrieval still works per seed: re-running either is a hit.
        assert main(base + ["--seed", "0"]) == 0
        assert "cached" in capsys.readouterr().out

    def test_scenario_run_benign(self, capsys, tmp_path):
        assert main(["scenario", "run", "benign_mcf", "--requests", "60",
                     "--results-dir", str(tmp_path)]) == 0
        assert "benign scenario" in capsys.readouterr().out

    def test_scenario_sweep(self, capsys):
        code = main(
            ["scenario", "sweep", "colocated_hammer_mcf",
             "--trackers", "graphene", "--schemes", "impress-p,no-rp",
             "--requests", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "graphene/impress-p" in out
        assert "graphene/no-rp" in out

    def test_scenario_sweep_unknown_tracker(self, capsys):
        code = main(
            ["scenario", "sweep", "colocated_hammer_mcf",
             "--trackers", "bogus", "--requests", "60"]
        )
        assert code == 2

    def test_scenario_report_diffs_two_stores(self, capsys, tmp_path):
        for side, seed in (("a", "0"), ("b", "1")):
            assert main(
                ["scenario", "run", "colocated_hammer_mcf",
                 "--requests", "60", "--seed", seed,
                 "--results-dir", str(tmp_path / side)]
            ) == 0
        capsys.readouterr()
        assert main(
            ["scenario", "report", str(tmp_path / "a"),
             str(tmp_path / "b")]
        ) == 0
        out = capsys.readouterr().out
        assert "colocated_hammer_mcf" in out
        assert "victim_slowdown" in out
        assert "B/A" in out
        # The two sides used different seeds: flagged, not silent.
        assert "run shapes differ" in out

    def test_scenario_report_empty_is_an_error(self, capsys, tmp_path):
        code = main(
            ["scenario", "report", str(tmp_path / "x"),
             str(tmp_path / "y")]
        )
        assert code == 2
        assert "no comparable" in capsys.readouterr().out


class TestFuzzCommand:
    def test_clean_budget_exits_zero(self, capsys, tmp_path):
        code = main(["fuzz", "--seed", "0", "--budget", "3",
                     "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_unknown_fault_is_an_error(self, capsys, tmp_path):
        code = main(["fuzz", "--fault", "bogus",
                     "--results-dir", str(tmp_path)])
        assert code == 2
        assert "unknown fault" in capsys.readouterr().out

    def test_planted_fault_found_stored_and_replayable(self, capsys,
                                                       tmp_path):
        code = main(["fuzz", "--seed", "0", "--budget", "6",
                     "--fault", "lax-tmro",
                     "--results-dir", str(tmp_path)])
        assert code == 1  # failures found -> non-zero for CI
        out = capsys.readouterr().out
        assert "tmro-deadline" in out
        key = next(
            line.split()[-1] for line in out.splitlines()
            if line.strip().startswith("[")
        )
        # The reproducer is listed in the store index...
        assert main(["results", "list", "--results-dir",
                     str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert key in listing
        assert "fuzz-repro" in listing
        # ...and replays to the same violation (fault restored from
        # the recipe — none is active here).
        assert main(["fuzz", "--replay", key,
                     "--results-dir", str(tmp_path)]) == 1
        assert "tmro-deadline" in capsys.readouterr().out

    def test_replay_unknown_key(self, capsys, tmp_path):
        code = main(["fuzz", "--replay", "deadbeefdeadbeef",
                     "--results-dir", str(tmp_path)])
        assert code == 2
        assert "no fuzz reproducer" in capsys.readouterr().out


class TestResultsCommands:
    def test_results_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["results"])

    def test_empty_store_lists_nothing(self, capsys, tmp_path):
        assert main(["results", "list", "--results-dir",
                     str(tmp_path)]) == 0
        assert "no matching" in capsys.readouterr().out

    def test_lists_scenario_artifacts_with_metadata(self, capsys,
                                                    tmp_path):
        assert main(["scenario", "run", "colocated_hammer_mcf",
                     "--requests", "60",
                     "--results-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["results", "list", "--results-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "colocated_hammer_mcf" in out
        assert "scenario" in out
        # Every row carries a timestamp and a git SHA column.
        rows = [line for line in out.splitlines()[1:] if line.strip()]
        assert rows
        for row in rows:
            assert "T" in row and "Z" in row  # ISO-8601 UTC timestamp

    def test_kind_filter(self, capsys, tmp_path):
        assert main(["scenario", "run", "colocated_hammer_mcf",
                     "--requests", "60",
                     "--results-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["results", "list", "--results-dir", str(tmp_path),
                     "--kind", "scenario-baseline"]) == 0
        out = capsys.readouterr().out
        assert "@baseline" in out
        assert main(["results", "list", "--results-dir", str(tmp_path),
                     "--kind", "fuzz-repro"]) == 0
        assert "no matching" in capsys.readouterr().out


class TestJsonOutput:
    def test_queue_status_json(self, capsys, tmp_path):
        import json

        from repro.distrib.queue import FileWorkQueue

        queue = FileWorkQueue(tmp_path / "queue")
        queue.submit({"kind": "test-task", "n": 1})
        queue.claim("w1")
        assert main(["queue", "status", "--queue-dir",
                     str(tmp_path / "queue"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_tasks"] == 1
        assert doc["claimed"] == 1
        assert doc["open_tasks"] == 1
        assert doc["leases"][0]["owner"] == "w1"

    def test_results_gc_json(self, capsys, tmp_path):
        import json

        from repro.results.store import store_for

        store = store_for(tmp_path)
        store.put({"kind": "t", "n": 1}, {"x": 1}, name="a", kind="t")
        store.unalias("a")
        assert main(["results", "gc", "--results-dir", str(tmp_path),
                     "--dry-run", "--blob-grace", "0", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["dry_run"] is True
        assert len(doc["unreferenced_blobs"]) == 1
        assert doc["reclaimable_bytes"] > 0


class TestServeParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.max_inflight == 8
        assert args.max_waiters == 64
        assert args.queue_watermark == 256
        assert args.journal_watermark == 64
        assert args.drain_timeout is None
        assert args.fault is None

    def test_request_defaults(self):
        args = build_parser().parse_args(["request", "benign_add_copy"])
        assert args.name == "benign_add_copy"
        assert args.requests == 400
        assert args.deadline == 120.0
        assert args.host is None

    def test_serve_unknown_fault_is_an_error(self, capsys, tmp_path):
        assert main(["serve", "--results-dir", str(tmp_path),
                     "--fault", "bogus"]) == 2
        assert "unknown fault" in capsys.readouterr().out

    def test_request_host_without_port_is_an_error(self, capsys):
        assert main(["request", "benign_add_copy",
                     "--host", "127.0.0.1"]) == 2
        assert "--port" in capsys.readouterr().out

    def test_request_without_daemon_reports_unavailable(self, capsys,
                                                        tmp_path):
        assert main(["request", "benign_add_copy",
                     "--results-dir", str(tmp_path)]) == 2
        assert "repro serve" in capsys.readouterr().out
