"""Batch engine tier pinned bit-identical against the fast-engine oracle.

Extends the PR 2–3 reference-vs-fast equivalence matrix one tier up:
:func:`repro.sim.batch.simulate_batch` must return exactly the
:class:`SimResult` the fast engine produces for every lane — whether the
lane was the recorded leader, a vectorized replay, a scalar replay, or
a divergence fallback.  Also pins the NumPy MT19937 transplant PARA's
vector replay depends on, the ``run_many`` batch routing's blob
identity, and the graceful degradation when NumPy is missing.
"""

import dataclasses
import json
import random

import pytest

np = pytest.importorskip("numpy")

from repro.experiments.common import SweepRunner
from repro.sim import simulate_workload
from repro.sim.batch import (
    BatchStats,
    _Recorder,
    batch_available,
    simulate_batch,
)
from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.system import SystemSimulator
from repro.trackers.batch_kernels import (
    numpy_rng_from,
    replay_lane_python,
    replay_lane_vector,
)
from repro.workloads.compiled import compiled_rate_mode_traces

from test_engine_equivalence import DEFENSES, _defense_id, _fuzzed_specs

REQUESTS = 150
SMALL = SystemConfig(n_cores=2, banks_per_channel=8)


def result_blob(result) -> bytes:
    """Canonical serialized form — what the result store would persist."""
    return json.dumps(result.to_json(), sort_keys=True).encode()


def assert_batch_matches_fast(points, system, n_requests, seed,
                              stats=None):
    """One batched run vs one fast-engine run per point, bit-identical."""
    batched = simulate_batch(
        points, system=system, n_requests_per_core=n_requests, seed=seed,
        stats=stats,
    )
    for point, result in zip(points, batched):
        workload, defense, tmro_ns = (
            point.sweep_point() if hasattr(point, "sweep_point") else point
        )
        oracle = simulate_workload(
            workload, defense, system=system,
            n_requests_per_core=n_requests, tmro_ns=tmro_ns, seed=seed,
        )
        assert result_blob(result) == result_blob(oracle), (
            f"batch diverged from fast engine on {point!r}"
        )


class TestBatchVsFastMatrix:
    """The full workload × defense equivalence matrix, batched at once."""

    @pytest.mark.parametrize("workload", ["mcf", "copy", "add_copy"])
    def test_workload_defense_matrix(self, workload):
        stats = BatchStats()
        points = [(workload, defense, None) for defense in DEFENSES]
        assert_batch_matches_fast(points, SMALL, REQUESTS, 7, stats=stats)
        # The matrix must actually exercise the replay path, not just
        # degenerate to per-lane fast runs.
        assert stats.replayed > 0
        assert stats.leaders >= 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeds(self, seed):
        points = [
            ("mcf", None, None),
            ("mcf", DefenseConfig(tracker="graphene", scheme="impress-p"),
             None),
            ("mcf", DefenseConfig(tracker="mint", scheme="impress-p",
                                  trh=1600, rfmth=20), None),
        ]
        assert_batch_matches_fast(points, SMALL, REQUESTS, seed)

    def test_multi_channel_topology(self):
        system = SystemConfig(n_cores=2, channels=2, banks_per_channel=8)
        points = [
            ("add", None, None),
            ("add", DefenseConfig(tracker="graphene", scheme="impress-p"),
             None),
            ("add", DefenseConfig(tracker="prac", scheme="no-rp", trh=150),
             None),
            ("add", DefenseConfig(tracker="mithril", scheme="no-rp",
                                  rfmth=20), None),
            ("add", DefenseConfig(tracker="mint", scheme="no-rp",
                                  rfmth=20), None),
        ]
        stats = BatchStats()
        assert_batch_matches_fast(points, system, REQUESTS, 2, stats=stats)
        assert stats.replayed > 0

    def test_tmro_groups_split_from_default(self):
        # A tMRO override changes the timing signature, so these lanes
        # must not share a leader with the default-timing lanes.
        points = [
            ("copy", None, None),
            ("copy", None, 66.0),
            ("copy", DefenseConfig(tracker="graphene", scheme="no-rp"),
             66.0),
        ]
        stats = BatchStats()
        assert_batch_matches_fast(points, SMALL, REQUESTS, 4, stats=stats)
        assert stats.groups == 1          # the two tmro=66 lanes
        assert stats.singletons == 1      # the default-timing lane

    def test_duplicate_points_deduplicated(self):
        points = [("mcf", None, None)] * 3 + [
            ("mcf", DefenseConfig(tracker="graphene", scheme="no-rp"), None)
        ] * 2
        stats = BatchStats()
        results = simulate_batch(
            points, system=SMALL, n_requests_per_core=60, seed=0,
            stats=stats,
        )
        assert stats.points == 5
        assert stats.leaders == 1 and stats.replayed == 1
        assert result_blob(results[0]) == result_blob(results[1])
        assert result_blob(results[3]) == result_blob(results[4])

    def test_results_are_independent_copies(self):
        points = [
            ("mcf", None, None),
            ("mcf", DefenseConfig(tracker="graphene", scheme="no-rp"), None),
        ]
        leader, follower = simulate_batch(
            points, system=SMALL, n_requests_per_core=60, seed=0
        )
        follower.counts.reads += 1
        follower.core_cycles[0] += 1
        assert leader.counts.reads != follower.counts.reads
        assert leader.core_cycles[0] != follower.core_cycles[0]


class TestFuzzedScenariosBatched:
    """The 8 pinned fuzzer scenarios from PR 6, each batched with a
    no-defense sibling lane on its own topology."""

    @pytest.mark.parametrize("index", range(8))
    def test_fuzzed_scenario(self, index):
        spec = _fuzzed_specs()[index]
        workload, _defense, tmro_ns = spec.sweep_point()
        points = [spec, (workload, None, tmro_ns)]
        assert_batch_matches_fast(points, spec.system, REQUESTS, 0)


class TestRunManyRouting:
    """``run_many`` batch routing is invisible: same blobs, same cache."""

    GRID = [
        ("mcf", None, None),
        ("mcf", DefenseConfig(tracker="graphene", scheme="impress-p"), None),
        ("mcf", DefenseConfig(tracker="para", scheme="no-rp", trh=200.0),
         None),
        ("add", None, None),
        ("add", DefenseConfig(tracker="mint", scheme="no-rp", rfmth=20),
         None),
        ("copy", None, 96.0),
        ("mcf", None, None),                      # duplicate
    ]

    def test_blob_identity_vs_serial(self):
        batched = SweepRunner(system=SMALL, n_requests=60, seed=3)
        serial = SweepRunner(system=SMALL, n_requests=60, seed=3,
                             use_batch=False)
        assert batched.use_batch and batch_available()
        blobs_batched = [
            result_blob(r) for r in batched.run_many(self.GRID)
        ]
        blobs_serial = [
            result_blob(r) for r in serial.run_many(self.GRID)
        ]
        assert blobs_batched == blobs_serial
        # Identical cache accounting: the duplicate is computed once.
        assert batched.cache_stats() == serial.cache_stats()

    def test_single_point_stays_unbatched(self):
        runner = SweepRunner(system=SMALL, n_requests=60)
        [result] = runner.run_many([("mcf", None, None)])
        assert result_blob(result) == result_blob(
            simulate_workload("mcf", system=SMALL, n_requests_per_core=60)
        )


def _recorded_timeline(workload="mcf", defense=None, n_requests=150,
                       system=SMALL, seed=7):
    """A leader run with recording shims, for replay-internal tests."""
    compiled = compiled_rate_mode_traces(
        workload, system.n_cores, n_requests, seed, system.mapper()
    )
    simulator = SystemSimulator(system, defense=defense, compiled=compiled)
    recorder = _Recorder(simulator)
    result = simulator.run()
    assert not recorder.fired
    return recorder, result, system


class TestReplayInternals:
    def test_para_numpy_rng_transplant(self):
        rng = random.Random(123)
        expected = [rng.random() for _ in range(64)]
        rng = random.Random(123)
        transplanted = numpy_rng_from(rng)
        assert list(transplanted.random_sample(64)) == expected

    def test_vector_agrees_with_python_replay(self):
        recorder, _result, system = _recorded_timeline()
        timeline = recorder.timeline(
            system.banks_per_channel, system.timings
        )
        for defense in DEFENSES:
            if defense is None or defense.uses_rfm:
                continue  # RFM lanes live in a separate timing group
            verdict, rfm = replay_lane_vector(defense, timeline)
            valid, py_rfm = replay_lane_python(
                defense, system.timings, system.banks_per_channel,
                system.channels, recorder.logs,
            )
            if verdict == "valid":
                assert valid and rfm == py_rfm == 0, _defense_id(defense)

    def test_rfm_counts_match_python_replay(self):
        defense = DefenseConfig(tracker="mint", scheme="no-rp", rfmth=20)
        recorder, _result, system = _recorded_timeline(defense=defense)
        timeline = recorder.timeline(
            system.banks_per_channel, system.timings
        )
        for follower in (
            defense,
            DefenseConfig(tracker="mithril", scheme="no-rp", rfmth=20),
        ):
            verdict, rfm = replay_lane_vector(follower, timeline)
            valid, py_rfm = replay_lane_python(
                follower, system.timings, system.banks_per_channel,
                system.channels, recorder.logs,
            )
            assert verdict == "valid" and valid
            assert rfm == py_rfm, _defense_id(follower)

    def test_leader_recording_does_not_change_result(self):
        _recorder, recorded, system = _recorded_timeline()
        plain = simulate_workload(
            "mcf", system=system, n_requests_per_core=150, seed=7
        )
        assert result_blob(recorded) == result_blob(plain)


class TestEngineSelection:
    def test_engine_values_agree(self):
        kwargs = dict(system=SMALL, n_requests_per_core=60, seed=0)
        defense = DefenseConfig(tracker="graphene", scheme="impress-p")
        fast = simulate_workload("mcf", defense, engine="fast", **kwargs)
        reference = simulate_workload(
            "mcf", defense, engine="reference", **kwargs
        )
        batch = simulate_workload("mcf", defense, engine="batch", **kwargs)
        assert result_blob(fast) == result_blob(reference)
        assert result_blob(fast) == result_blob(batch)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_workload("mcf", engine="warp", system=SMALL,
                              n_requests_per_core=20)


class TestNumpyFallback:
    """Without NumPy the tier reports unavailable and callers degrade."""

    def test_unavailable_paths(self, monkeypatch):
        import repro.trackers.batch_kernels as bk

        monkeypatch.setattr(bk, "np", None)
        assert not batch_available()
        with pytest.raises(ImportError, match="pip install numpy"):
            simulate_batch([("mcf", None, None)], system=SMALL,
                           n_requests_per_core=20)
        with pytest.raises(ImportError, match="pip install numpy"):
            simulate_workload("mcf", engine="batch", system=SMALL,
                              n_requests_per_core=20)
        # run_many silently falls back to per-point fast runs.
        runner = SweepRunner(system=SMALL, n_requests=20)
        results = runner.run_many(
            [("mcf", None, None),
             ("mcf", DefenseConfig(tracker="graphene", scheme="no-rp"),
              None)]
        )
        assert len(results) == 2


class TestStatsAccounting:
    def test_partition_adds_up(self):
        stats = BatchStats()
        points = [("mcf", defense, None) for defense in DEFENSES]
        results = simulate_batch(
            points, system=SMALL, n_requests_per_core=60, seed=0,
            stats=stats,
        )
        assert len(results) == len(points)
        assert stats.points == len(points)
        unique = len({(w, d, t) for w, d, t in points})
        assert (
            stats.leaders + stats.replayed + stats.fallbacks
            + stats.singletons == unique
        )
        assert stats.vector_replays >= stats.replayed
