"""Tests for the experiment registry and the parallel orchestrator."""

import json
from pathlib import Path

import pytest

from repro.experiments import registry, runner
from repro.experiments.orchestrator import (
    Orchestrator,
    OrchestratorError,
    _execute,
    experiment_recipe,
    jsonify,
)
from repro.experiments.registry import PAPER_TAG, Experiment, RunContext
from repro.results import store_for

EXPERIMENT_DIR = Path(registry.__file__).parent
#: Modules that host experiments (everything except the plumbing).
PLUMBING = {"__init__", "common", "registry", "orchestrator", "runner"}


def experiment_module_stems():
    return sorted(
        path.stem
        for path in EXPERIMENT_DIR.glob("*.py")
        if path.stem not in PLUMBING
    )


class TestRegistry:
    def test_every_experiment_module_registers(self):
        registered_modules = {
            exp.module.rsplit(".", 1)[-1] for exp in registry.all_experiments()
        }
        for stem in experiment_module_stems():
            assert stem in registered_modules, (
                f"{stem}.py defines no registered experiment"
            )

    def test_names_unique_and_stable(self):
        names = registry.names()
        assert len(names) == len(set(names))
        assert {"fig3", "fig13", "table1", "storage", "energy",
                "ablation"} <= set(names)

    def test_select_by_name_and_tag(self):
        assert [e.name for e in registry.select(only=["fig13", "table2"])] == [
            "fig13", "table2"
        ]
        analytic = registry.select(only=["analytic"])
        assert analytic and all("analytic" in e.tags for e in analytic)

    def test_select_unknown_raises(self):
        with pytest.raises(KeyError, match="fig99"):
            registry.select(only=["fig99"])

    def test_run_all_derives_from_registry(self):
        paper_names = [
            e.name for e in registry.select(tags=(PAPER_TAG,))
        ]
        results = runner.run_all(quick=True, n_requests=40)
        assert list(results) == paper_names
        assert "ablation" not in results

    def test_runner_main_module_order_matches_run_all(self):
        paper = registry.select(tags=(PAPER_TAG,))
        modules = registry.modules(paper)
        module_names = [m.__name__ for m in modules]
        # Derived from the same registry slice: same modules, same order,
        # no duplicates — the drift the old hand-written lists allowed.
        assert module_names == list(dict.fromkeys(e.module for e in paper))

    def test_costliest_first_is_a_permutation(self):
        scheduled = sorted(
            registry.all_experiments(), key=lambda e: e.cost, reverse=True
        )
        assert {e.name for e in scheduled} == set(registry.names())
        costs = [e.cost for e in scheduled]
        assert costs == sorted(costs, reverse=True)


class TestJsonify:
    def test_float_and_inf_keys_become_strings(self):
        data = {36.0: {"a": 1.0}, float("inf"): (1, 2)}
        assert jsonify(data) == {"36.0": {"a": 1.0}, "inf": [1, 2]}

    def test_non_finite_values_become_strings(self):
        assert jsonify({"x": float("nan")}) == {"x": "nan"}

    def test_round_trips_through_json(self):
        data = jsonify({4000.0: [(0, 0.2)], "inf": float("inf")})
        assert json.loads(json.dumps(data)) == data


class TestCache:
    def make(self, tmp_path, **kwargs):
        defaults = dict(results_dir=tmp_path, jobs=1, n_requests=40)
        defaults.update(kwargs)
        return Orchestrator(**defaults)

    def cache_blob(self, tmp_path, name="table1"):
        """The store blob backing one experiment's cache entry."""
        store = store_for(tmp_path)
        entry = store.latest(name)
        assert entry is not None, f"{name} has no store entry"
        return store.blob_path(entry["key"])

    def test_miss_then_hit(self, tmp_path):
        first = self.make(tmp_path).run(only=["table1"])
        assert [o.cached for o in first.outcomes] == [False]
        second = self.make(tmp_path).run(only=["table1"])
        assert [o.cached for o in second.outcomes] == [True]
        assert second.outcomes[0].result == first.outcomes[0].result

    def test_force_bypasses_cache(self, tmp_path):
        self.make(tmp_path).run(only=["table1"])
        forced = self.make(tmp_path, force=True).run(only=["table1"])
        assert [o.cached for o in forced.outcomes] == [False]

    def test_different_options_different_key(self, tmp_path):
        self.make(tmp_path, n_requests=40).run(only=["table1"])
        other = self.make(tmp_path, n_requests=41).run(only=["table1"])
        assert [o.cached for o in other.outcomes] == [False]
        store = store_for(tmp_path)
        keys = {
            e["key"]
            for e in store.entries(name="table1", kind="experiment")
        }
        assert len(keys) == 2
        for key in keys:  # both coexist: no overwrite across options
            assert store.get(key) is not None

    def test_cache_missing_config_hash_is_a_miss(self, tmp_path):
        self.make(tmp_path).run(only=["table1"])
        blob_path = self.cache_blob(tmp_path)
        blob = json.loads(blob_path.read_text())
        del blob["payload"]["config_hash"]
        blob_path.write_text(json.dumps(blob))
        again = self.make(tmp_path).run(only=["table1"])
        assert [o.cached for o in again.outcomes] == [False]

    def test_corrupt_cache_is_a_miss(self, tmp_path):
        orchestrator = self.make(tmp_path)
        orchestrator.run(only=["table1"])
        self.cache_blob(tmp_path).write_text("{ not json")
        again = self.make(tmp_path).run(only=["table1"])
        assert [o.cached for o in again.outcomes] == [False]

    def test_cache_recipe_is_explicit_not_repr(self, tmp_path):
        self.make(tmp_path).run(only=["table1"])
        blob = json.loads(self.cache_blob(tmp_path).read_text())
        assert blob["recipe"] == experiment_recipe(
            "table1", {"quick": True, "n_requests": 40, "seed": 0}
        )

    def test_artifacts_written(self, tmp_path):
        self.make(tmp_path).run(only=["table1", "fig18"])
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "fig18.json").exists()
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert set(summary["experiments"]) == {"table1", "fig18"}
        report = (tmp_path / "REPORT.md").read_text()
        assert "Paper vs measured" in report

    def test_progress_streams(self, tmp_path):
        messages = []
        self.make(tmp_path, progress=messages.append).run(only=["table1"])
        assert "[start] table1" in messages
        assert any(m.startswith("[done]  table1") for m in messages)
        messages.clear()
        self.make(tmp_path, progress=messages.append).run(only=["table1"])
        assert messages == ["[cache] table1"]


class TestParallelEquivalence:
    #: One real simulation sweep plus analytic experiments, small sizes.
    SUBSET = ["fig3", "fig12", "fig18", "table3"]

    @pytest.mark.slow
    def test_parallel_matches_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = Orchestrator(
            results_dir=serial_dir, jobs=1, n_requests=60
        ).run(only=self.SUBSET)
        parallel = Orchestrator(
            results_dir=parallel_dir, jobs=2, n_requests=60
        ).run(only=self.SUBSET)
        assert [o.cached for o in parallel.outcomes] == [False] * 4
        for name in self.SUBSET:
            a = json.loads((serial_dir / f"{name}.json").read_text())
            b = json.loads((parallel_dir / f"{name}.json").read_text())
            assert a["result"] == b["result"], name
            assert a["summary"] == b["summary"], name
        assert serial.by_name["fig3"].summary == (
            parallel.by_name["fig3"].summary
        )


class TestFailureHandling:
    def test_execute_reports_unknown_experiment(self):
        raw = _execute(("no-such-experiment", {"quick": True,
                                               "n_requests": 40,
                                               "seed": 0}))
        assert "error" in raw

    def test_failing_experiment_raises_with_traceback(self, tmp_path,
                                                      monkeypatch):
        def boom(ctx):
            raise RuntimeError("intentional test failure")

        monkeypatch.setitem(
            registry._REGISTRY,
            "boom",
            Experiment(
                name="boom", fn=boom, title="boom", paper_ref="-",
                tags=("test",), cost=0.0, module=__name__,
            ),
        )
        orchestrator = Orchestrator(results_dir=tmp_path, jobs=1)
        with pytest.raises(OrchestratorError, match="intentional"):
            orchestrator.run(only=["boom"])

    def test_successes_are_cached_despite_failure(self, tmp_path,
                                                  monkeypatch):
        def boom(ctx):
            raise RuntimeError("intentional test failure")

        monkeypatch.setitem(
            registry._REGISTRY,
            "boom",
            Experiment(
                name="boom", fn=boom, title="boom", paper_ref="-",
                tags=("test",), cost=1000.0, module=__name__,
            ),
        )
        orchestrator = Orchestrator(results_dir=tmp_path, jobs=1,
                                    n_requests=40)
        with pytest.raises(OrchestratorError):
            orchestrator.run(only=["boom", "table1"])
        # table1 completed before boom's failure surfaced; its result
        # must be cached so a retry only recomputes the failure.
        assert store_for(tmp_path).latest("table1") is not None
        retry = Orchestrator(results_dir=tmp_path, jobs=1,
                             n_requests=40).run(only=["table1"])
        assert [o.cached for o in retry.outcomes] == [True]

    def test_empty_selection_raises(self, tmp_path):
        with pytest.raises(ValueError):
            Orchestrator(results_dir=tmp_path).run(only=[])


class TestRunContext:
    def test_shares_sweep_runner(self):
        ctx = RunContext(quick=True, n_requests=40)
        assert ctx.sweep_runner() is ctx.sweep_runner()
        assert ctx.sweep_runner().n_requests == 40

    def test_pickles_without_runner(self):
        import pickle

        ctx = RunContext(quick=False, n_requests=77, seed=3)
        ctx.sweep_runner()
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.options() == ctx.options()
        assert clone._runner is None
