"""Unit tests for the lease-based filesystem work queue.

No simulation here: recipes are throwaway dicts, time is passed
explicitly through ``now=`` so every lease/backoff decision is
deterministic.  The protocol claims under test: atomic single-winner
claims, exponential-backoff retries, poison quarantine, expired- and
corrupt-lease reclaim, straggler speculation, and done-record dedup.
"""

import json
import time

import pytest

from repro.distrib.queue import (
    FileWorkQueue,
    _atomic_write_json,
    _read_json,
    worker_identity,
)
from repro.results.store import content_key


def make_queue(tmp_path, **kwargs):
    defaults = dict(
        lease_s=5.0, max_attempts=3, backoff_base_s=1.0,
        backoff_max_s=60.0, corrupt_grace_s=2.0,
    )
    defaults.update(kwargs)
    return FileWorkQueue(tmp_path / "queue", **defaults)


def recipe(n):
    return {"kind": "test-task", "n": n}


class TestSubmit:
    def test_task_id_is_content_key(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        assert task.task_id == content_key(recipe(1))
        assert queue.task(task.task_id).recipe == recipe(1)

    def test_idempotent_while_pending(self, tmp_path):
        queue = make_queue(tmp_path)
        first = queue.submit(recipe(1))
        second = queue.submit(recipe(1))
        assert first.task_id == second.task_id
        status = queue.status()
        assert status.pending == 1
        assert status.total_tasks == 1

    def test_resubmit_after_done_does_not_requeue(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        claimed = queue.claim("w1")
        queue.complete(task.task_id, "w1", task.task_id)
        queue.submit(recipe(1))
        status = queue.status()
        assert status.pending == 0
        assert status.done == 1
        assert claimed.task_id == task.task_id

    def test_resubmit_while_claimed_does_not_duplicate(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit(recipe(1))
        queue.claim("w1")
        queue.submit(recipe(1))
        status = queue.status()
        assert status.pending == 0
        assert status.claimed == 1


class TestClaim:
    def test_claim_carries_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        now = 1000.0
        claimed = queue.claim("w1", now=now)
        assert claimed.task_id == task.task_id
        assert claimed.owner == "w1"
        assert claimed.attempts == 1
        assert claimed.deadline == pytest.approx(now + queue.lease_s)

    def test_exactly_one_winner(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit(recipe(1))
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert first is not None
        assert second is None

    def test_want_filter_skips_foreign_tasks(self, tmp_path):
        queue = make_queue(tmp_path)
        mine = queue.submit(recipe(1))
        queue.submit(recipe(2))
        claimed = queue.claim("w1", want={mine.task_id})
        assert claimed.task_id == mine.task_id
        assert queue.claim("w1", want={mine.task_id}) is None
        # The foreign task is still there for everyone else.
        assert queue.claim("w2") is not None

    def test_backoff_defers_retry(self, tmp_path):
        queue = make_queue(tmp_path, backoff_base_s=10.0)
        task = queue.submit(recipe(1))
        now = 1000.0
        queue.claim("w1", now=now)
        assert queue.fail(task.task_id, "w1", "boom", now=now) == "pending"
        assert queue.claim("w2", now=now + 1.0) is None
        retry = queue.claim("w2", now=now + 11.0)
        assert retry is not None
        assert retry.attempts == 2

    def test_stale_pending_marker_for_done_task_is_retired(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1")
        queue.complete(task.task_id, "w1", task.task_id)
        # A speculated copy could leave a pending marker behind a
        # finished task; claiming must retire it, never re-run.
        _atomic_write_json(
            queue._path("pending", task.task_id),
            {"attempts": 0, "not_before": 0.0},
        )
        assert queue.claim("w2") is None
        assert not queue._path("pending", task.task_id).is_file()

    def test_missing_body_poisons_instead_of_looping(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue._path("tasks", task.task_id).unlink()
        assert queue.claim("w1") is None
        record = queue.poison_record(task.task_id)
        assert record is not None
        assert "body" in record["error"]


class TestHeartbeat:
    def test_heartbeat_extends_deadline(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        assert queue.heartbeat(task.task_id, "w1", now=1004.0)
        lease = _read_json(queue._path("claimed", task.task_id))
        assert lease["deadline"] == pytest.approx(1004.0 + queue.lease_s)
        assert lease["heartbeats"] == 1

    def test_heartbeat_from_wrong_owner_fails(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1")
        assert not queue.heartbeat(task.task_id, "w2")

    def test_heartbeat_after_reclaim_reports_lost(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        queue.reclaim_expired(now=1000.0 + queue.lease_s + 1.0)
        assert not queue.heartbeat(task.task_id, "w1", now=1010.0)


class TestTerminal:
    def test_complete_dedups_second_finisher(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1")
        assert queue.complete(task.task_id, "w1", "deadbeefdeadbeef")
        assert not queue.complete(task.task_id, "w2", "deadbeefdeadbeef")
        record = queue.done_record(task.task_id)
        assert record["result_key"] == "deadbeefdeadbeef"
        assert record["owner"] == "w1"
        assert queue.status().claimed == 0

    def test_fail_until_poison(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=2, backoff_base_s=0.0)
        task = queue.submit(recipe(1))
        now = 1000.0
        queue.claim("w1", now=now)
        assert queue.fail(task.task_id, "w1", "first\nboom", now=now) == \
            "pending"
        queue.claim("w1", now=now + 1.0)
        assert queue.fail(task.task_id, "w1", "second\nboom", now=now + 2.0) \
            == "poison"
        record = queue.poison_record(task.task_id)
        assert record["attempts"] == 2
        assert "boom" in record["error"]
        assert queue.claim("w1", now=now + 3.0) is None

    def test_fail_leaves_pending_with_retry_state_only(self, tmp_path):
        # The rename back to pending is the single visible transition:
        # the pending file must be born holding the retry state, never
        # the old lease (which a concurrent claimant would read as a
        # task with zero backoff).
        queue = make_queue(tmp_path, backoff_base_s=10.0)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        queue.fail(task.task_id, "w1", "boom", now=1000.0)
        state = _read_json(queue._path("pending", task.task_id))
        assert state["attempts"] == 1
        assert state["not_before"] == pytest.approx(1010.0)
        assert "owner" not in state
        assert "deadline" not in state

    def test_fail_after_losing_claim(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        queue.reclaim_expired(now=1000.0 + queue.lease_s + 1.0)
        assert queue.fail(task.task_id, "w1", "late", now=1010.0) == "lost"


class TestReclaim:
    def test_expired_lease_returns_to_pending(self, tmp_path):
        queue = make_queue(tmp_path, backoff_base_s=0.0)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        expired_at = 1000.0 + queue.lease_s + 0.1
        assert queue.reclaim_expired(now=expired_at) == [task.task_id]
        retry = queue.claim("w2", now=expired_at + 0.1)
        assert retry is not None
        assert retry.attempts == 2

    def test_live_lease_is_left_alone(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        assert queue.reclaim_expired(now=1001.0) == []

    def test_corrupt_claim_reclaimed_after_grace(self, tmp_path):
        import os

        queue = make_queue(tmp_path, corrupt_grace_s=2.0)
        task = queue.submit(recipe(1))
        queue.claim("w1")
        path = queue._path("claimed", task.task_id)
        path.write_text("{torn")
        # Inside the grace window a torn file might be a mid-rewrite
        # claim; after it, it is debris.
        assert queue.reclaim_expired(now=time.time()) == []
        stamp = time.time() - 10.0
        os.utime(path, (stamp, stamp))
        assert queue.reclaim_expired(now=time.time()) == [task.task_id]
        assert queue.claim("w2", now=time.time() + 60.0) is not None

    def test_mid_claim_handshake_not_instantly_reclaimed(self, tmp_path):
        import os

        queue = make_queue(tmp_path, corrupt_grace_s=2.0)
        task = queue.submit(recipe(1))
        # Freeze a claim mid-handshake: the pending file has been
        # renamed into claimed/ but the winner has not yet written its
        # lease, so the claim file holds pending-state JSON (readable,
        # but no owner/deadline).
        os.rename(
            queue._path("pending", task.task_id),
            queue._path("claimed", task.task_id),
        )
        # Inside the grace window the handshake may still be in
        # flight — reclaiming now would steal the claim from its
        # winner the instant it was made.
        assert queue.reclaim_expired(now=time.time()) == []
        assert queue._path("claimed", task.task_id).is_file()
        # Past the grace the claimant is dead mid-handshake; the task
        # is recovered, with the interrupted attempt counted.
        path = queue._path("claimed", task.task_id)
        stamp = time.time() - 10.0
        os.utime(path, (stamp, stamp))
        assert queue.reclaim_expired(now=time.time()) == [task.task_id]
        retry = queue.claim("w2", now=time.time() + 60.0)
        assert retry is not None
        assert retry.attempts == 2

    def test_claim_for_done_task_is_released_not_requeued(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        # done lands (a speculated copy finished) but the claim file
        # lingers; reclaim must release it, not re-pend the task.
        _atomic_write_json(
            queue._path("done", task.task_id),
            {"task_id": task.task_id, "result_key": task.task_id},
        )
        assert queue.reclaim_expired(now=1000.0 + queue.lease_s + 1) == []
        assert queue.status().pending == 0
        assert queue.status().claimed == 0

    def test_reclaim_at_attempt_limit_poisons(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=1)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        queue.reclaim_expired(now=1000.0 + queue.lease_s + 1.0)
        record = queue.poison_record(task.task_id)
        assert record is not None
        assert "lease expired" in record["error"]


class TestSpeculate:
    def test_speculation_preserves_attempts(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        first = queue.claim("w1", now=1000.0)
        assert queue.speculate(task.task_id, now=1001.0)
        # Immediately claimable, and NOT counted as a failure: the
        # speculative copy claims at the same attempt number.
        second = queue.claim("w2", now=1001.0)
        assert second is not None
        assert second.attempts == first.attempts

    def test_speculation_refuses_done_or_unclaimed(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        assert not queue.speculate(task.task_id)  # still pending
        queue.claim("w1")
        queue.complete(task.task_id, "w1", task.task_id)
        assert not queue.speculate(task.task_id)  # already done


class TestIntrospection:
    def test_status_census(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=1, backoff_base_s=0.0)
        for n in range(1, 5):
            queue.submit(recipe(n))
        # Claims come out in sorted-id order, not submission order, so
        # drive the census by what each claim actually returned.
        done_task = queue.claim("w1", now=1000.0)
        queue.complete(done_task.task_id, "w1", done_task.task_id)
        poisoned = queue.claim("w1", now=1000.0)
        queue.fail(poisoned.task_id, "w1", "boom", now=1000.0)
        claimed = queue.claim("w1", now=1000.0)
        status = queue.status()
        assert status.total_tasks == 4
        assert status.done == 1
        assert status.poisoned == 1
        assert status.claimed == 1
        assert status.pending == 1
        assert status.open_tasks == 2
        assert status.leases[0]["task_id"] == claimed.task_id
        text = "\n".join(status.summary_lines())
        assert "4 task(s)" in text
        assert "poisoned" in text

    def test_drain_cancels_open_work_only(self, tmp_path):
        queue = make_queue(tmp_path)
        done_task = queue.submit(recipe(1))
        queue.submit(recipe(2))
        queue.submit(recipe(3))
        queue.claim("w1")
        queue.complete(done_task.task_id, "w1", done_task.task_id)
        queue.claim("w1")
        removed = queue.drain()
        assert removed["pending"] + removed["claimed"] == 2
        status = queue.status()
        assert status.pending == 0
        assert status.claimed == 0
        assert status.done == 1
        assert status.total_tasks == 3  # bodies kept for inspection

    def test_worker_identity_names_this_process(self):
        import os

        ident = worker_identity()
        assert ident.endswith(f":{os.getpid()}")

    def test_state_files_are_valid_json(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1")
        for state in ("tasks", "claimed"):
            text = queue._path(state, task.task_id).read_text()
            assert isinstance(json.loads(text), dict)


class TestRelease:
    def test_release_returns_claim_without_attempt_penalty(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        first = queue.claim("w1", now=1000.0)
        assert first.attempts == 1
        assert queue.release(task.task_id, "w1", now=1001.0)
        status = queue.status()
        assert status.pending == 1
        assert status.claimed == 0
        # Immediately claimable (no backoff), at the same attempt
        # number the released worker held — the attempt is uncounted.
        second = queue.claim("w2", now=1001.0)
        assert second is not None
        assert second.attempts == first.attempts

    def test_release_records_who_handed_it_back(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1", now=1000.0)
        queue.release(task.task_id, "w1", now=1001.0)
        pending = _read_json(queue._path("pending", task.task_id))
        assert pending["released_by"] == "w1"
        assert pending["attempts"] == 0
        assert pending["not_before"] == 1001.0

    def test_release_refuses_foreign_or_missing_claims(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        assert not queue.release(task.task_id, "w1")   # still pending
        queue.claim("w1")
        assert not queue.release(task.task_id, "w2")   # not the owner
        assert queue.status().claimed == 1             # untouched
        assert queue.release(task.task_id, "w1")

    def test_release_does_not_resurrect_done_tasks(self, tmp_path):
        queue = make_queue(tmp_path)
        task = queue.submit(recipe(1))
        queue.claim("w1")
        queue.complete(task.task_id, "w1", task.task_id)
        assert not queue.release(task.task_id, "w1")
        assert queue.status().done == 1


class TestStatusJson:
    def test_to_json_mirrors_the_census(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=1, backoff_base_s=0.0)
        for n in range(1, 4):
            queue.submit(recipe(n))
        done_task = queue.claim("w1", now=1000.0)
        queue.complete(done_task.task_id, "w1", done_task.task_id)
        poisoned = queue.claim("w1", now=1000.0)
        queue.fail(poisoned.task_id, "w1", "boom", now=1000.0)
        claimed = queue.claim("w1", now=1000.0)
        doc = queue.status().to_json()
        assert doc["total_tasks"] == 3
        assert doc["done"] == 1
        assert doc["poisoned"] == 1
        assert doc["claimed"] == 1
        assert doc["pending"] == 0
        assert doc["open_tasks"] == 1
        assert doc["leases"][0]["task_id"] == claimed.task_id
        assert doc["poison"][0]["error"] == "boom"
        json.dumps(doc)   # round-trippable, no exotic types
