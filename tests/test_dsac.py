"""Tests reproducing the Section VII critique of DSAC."""

import pytest
from hypothesis import given, strategies as st

from repro.trackers.dsac import (
    DsacLikeTracker,
    dsac_weight,
    impress_weight,
    underestimation_factor,
)


class TestWeights:
    def test_paper_example_weight_8_at_256_trc(self):
        # Section VII problem 1: at tON = 256 tRC DSAC weighs ~8.
        assert dsac_weight(256.0) == pytest.approx(8.0)

    def test_required_weight_122_at_256_trc(self):
        # ...whereas the characterization demands ~0.48 * 256 = 122.
        assert impress_weight(256.0) == pytest.approx(122, rel=0.02)

    def test_underestimation_about_15x(self):
        assert underestimation_factor(256.0) == pytest.approx(15.0, rel=0.05)

    def test_minimal_access_weighs_one(self):
        assert dsac_weight(1.0) == pytest.approx(1.0)

    def test_rejects_sub_trc(self):
        with pytest.raises(ValueError):
            dsac_weight(0.5)
        with pytest.raises(ValueError):
            impress_weight(0.5)

    @given(st.floats(min_value=8.0, max_value=2000.0))
    def test_dsac_always_underestimates_long_opens(self, ton_trc):
        # Logarithmic vs linear: DSAC overestimates very short opens
        # but beyond a handful of tRC the gap only widens against it.
        assert dsac_weight(ton_trc) < impress_weight(ton_trc)

    @given(st.floats(min_value=8.0, max_value=1000.0))
    def test_underestimation_grows_with_ton(self, ton_trc):
        assert underestimation_factor(2 * ton_trc) > underestimation_factor(
            ton_trc
        )


class TestDsacLikeTracker:
    def test_installation_ignores_row_press(self):
        # Problem 2: the installing access always counts as 1, however
        # long the row was open.
        tracker = DsacLikeTracker(entries=4, mitigation_threshold=100)
        tracker.record(7, weight=256.0)
        assert tracker.count_for(7) == 1.0

    def test_integer_weights_truncate(self):
        # Problem 3: integer counters, like ImPress-N's precision loss.
        tracker = DsacLikeTracker(entries=4, mitigation_threshold=100)
        tracker.record(7, weight=1.0)     # install at 1
        tracker.record(7, weight=1.9)     # log weight 1.81 -> int 1
        assert tracker.count_for(7) == 2.0

    def test_mitigates_at_threshold(self):
        tracker = DsacLikeTracker(entries=4, mitigation_threshold=3)
        tracker.record(7)
        tracker.record(7)
        assert tracker.record(7) == [7]
        assert tracker.mitigations == 1

    def test_eviction_when_full(self):
        tracker = DsacLikeTracker(entries=2, mitigation_threshold=100)
        tracker.record(1)
        tracker.record(2)
        tracker.record(2)
        tracker.record(3)
        assert 3 in tracker._table
        assert len(tracker._table) == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DsacLikeTracker(entries=0, mitigation_threshold=5)
        with pytest.raises(ValueError):
            DsacLikeTracker(entries=4, mitigation_threshold=0)

    def test_row_press_evades_dsac_but_not_impress(self):
        # End-to-end: a long-open-row pattern accumulates DSAC count far
        # slower than its true damage, so mitigation lags by the
        # underestimation factor.
        threshold = 100.0
        tracker = DsacLikeTracker(entries=4, mitigation_threshold=threshold)
        ton_trc = 256.0
        rounds = 0
        while not tracker.record(7, weight=ton_trc) and rounds < 1000:
            rounds += 1
        true_damage = rounds * impress_weight(ton_trc)
        # The attacker lands >10x the threshold in damage before DSAC
        # reacts — the Section VII security failure.
        assert true_damage > 10 * threshold
