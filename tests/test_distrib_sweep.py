"""Integration tests for distributed sweep execution (in-process).

Everything here runs in one process — workers are exercised through
:func:`run_worker` / :func:`execute_claimed_task` directly, and the
coordinator's degraded serial mode stands in for a fleet.  The
process-killing faults live in ``test_distrib_chaos.py`` (they would
take pytest down with them); this file owns the deterministic claims:

* serial, degraded, and worker-executed runs produce *byte-identical*
  result blobs (the exactly-once/dedup foundation);
* a reclaimed task resumes from its checkpoint and simulates fewer
  cycles than a from-scratch run, with an identical result;
* poisoned tasks surface as :class:`DistributedSweepError` carrying
  the worker traceback;
* a completed task's checkpoint blob becomes garbage ``gc`` collects
  while the result stays fetchable.
"""

import time

import pytest

from repro.distrib.coordinator import (
    DistributedSweepError,
    run_distributed_sweep,
    run_serial_sweep,
    shard_points,
)
from repro.distrib.queue import FileWorkQueue
from repro.distrib.worker import (
    build_simulator,
    checkpoint_alias,
    checkpoint_recipe,
    execute_claimed_task,
    result_alias,
    run_worker,
    sweep_task_recipe,
    CHECKPOINT_KIND,
    _encode_snapshot,
)
from repro.results.store import content_key, store_for
from repro.scenarios.spec import ScenarioSpec
from repro.sim.config import SystemConfig


def small_specs():
    """Two cheap single-core sweep points (a few ms each)."""
    system = SystemConfig(n_cores=1, banks_per_channel=8)
    return [
        ScenarioSpec.benign("add_copy", system=system),
        ScenarioSpec.benign("copy", system=system),
    ]


def small_recipes(n_requests=400, seed=0):
    return shard_points(small_specs(), n_requests, seed)


def checkpointable_recipe(n_requests=5000, seed=0):
    """One task long enough (~170k cycles) for several checkpoints."""
    system = SystemConfig(n_cores=1, banks_per_channel=8)
    spec = ScenarioSpec.benign("mcf", system=system)
    return sweep_task_recipe(spec.recipe(), n_requests, seed)


def blob_bytes(store, key):
    return store.blob_path(key).read_bytes()


class TestShardPoints:
    def test_one_task_per_point(self):
        recipes = small_recipes()
        assert len(recipes) == 2
        assert all(r["kind"] == "sweep-task" for r in recipes)
        assert all(r["n_requests"] == 400 for r in recipes)

    def test_accepts_explicit_recipe_dicts(self):
        spec = small_specs()[0]
        from_spec = shard_points([spec], 400, 0)
        from_dict = shard_points([spec.recipe()], 400, 0)
        assert from_spec == from_dict


class TestSerialAndDegraded:
    def test_degraded_sweep_matches_serial_byte_for_byte(self, tmp_path):
        recipes = small_recipes()
        serial_store = store_for(tmp_path / "serial")
        serial = run_serial_sweep(recipes, serial_store)
        assert serial.mode == "serial"
        assert serial.task_ids == [content_key(r) for r in recipes]
        assert serial.result_keys == serial.task_ids

        queue = FileWorkQueue(tmp_path / "dist" / "queue")
        dist_store = store_for(tmp_path / "dist")
        # serial_grace_s=0 with no workers: degrade immediately.
        outcome = run_distributed_sweep(
            recipes, queue, dist_store, poll_s=0.0, serial_grace_s=0.0,
        )
        assert outcome.degraded
        assert outcome.mode == "degraded serial"
        assert outcome.result_keys == serial.result_keys
        for key in serial.result_keys:
            assert blob_bytes(serial_store, key) == \
                blob_bytes(dist_store, key)
        for a, b in zip(serial.results, outcome.results):
            assert a.to_json() == b.to_json()

    def test_degraded_sweep_retries_transient_failure(
        self, tmp_path, monkeypatch
    ):
        # The mixed case: one task succeeds, another fails its first
        # attempt.  The coordinator's own completion used to flip the
        # worker-liveness signal, so the degraded drain never ran again
        # and the retrying task waited forever for a worker that did
        # not exist.  Degraded mode must stay sticky: keep draining
        # through the backoff until the retry succeeds.
        import repro.distrib.coordinator as coordinator_mod

        recipes = small_recipes()
        flaky_id = content_key(recipes[1])
        real_execute = coordinator_mod.execute_claimed_task
        injected = []

        def flaky_execute(queue, store, claimed, **kwargs):
            if claimed.task_id == flaky_id and not injected:
                injected.append(claimed.task_id)
                raise RuntimeError("transient chaos")
            return real_execute(queue, store, claimed, **kwargs)

        monkeypatch.setattr(
            coordinator_mod, "execute_claimed_task", flaky_execute
        )
        queue = FileWorkQueue(tmp_path / "queue", backoff_base_s=0.05)
        store = store_for(tmp_path)
        outcome = run_distributed_sweep(
            recipes, queue, store, poll_s=0.01, serial_grace_s=0.0,
            timeout_s=30.0,
        )
        assert injected  # the failure actually fired
        assert outcome.degraded
        assert len(outcome.results) == len(recipes)
        serial = run_serial_sweep(recipes, store_for(tmp_path / "serial"))
        assert outcome.result_keys == serial.result_keys
        for key in serial.result_keys:
            assert blob_bytes(store_for(tmp_path / "serial"), key) == \
                blob_bytes(store, key)

    def test_resubmitted_sweep_reuses_done_tasks(self, tmp_path):
        recipes = small_recipes()
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        first = run_distributed_sweep(
            recipes, queue, store, poll_s=0.0, serial_grace_s=0.0,
        )
        # A coordinator crash-and-restart resubmits the same recipes
        # and must find every task already done — nothing re-runs, so
        # this completes without ever degrading.
        again = run_distributed_sweep(
            recipes, queue, store, poll_s=0.0, serial_grace_s=60.0,
            timeout_s=10.0,
        )
        assert not again.degraded
        assert again.result_keys == first.result_keys

    def test_sweep_result_is_aliased_in_store(self, tmp_path):
        recipes = small_recipes()
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        outcome = run_distributed_sweep(
            recipes, queue, store, poll_s=0.0, serial_grace_s=0.0,
        )
        for task_id in outcome.task_ids:
            entry = store.latest(result_alias(task_id))
            assert entry is not None
            assert entry["key"] == task_id


class TestWorkerLoop:
    def test_worker_drains_queue(self, tmp_path):
        recipes = small_recipes()
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        for recipe in recipes:
            queue.submit(recipe)
        summary = run_worker(
            queue, store, owner="w1", idle_exit_s=0.2, poll_s=0.01,
        )
        assert summary.executed == 2
        assert summary.failed == 0
        status = queue.status()
        assert status.done == 2
        assert status.open_tasks == 0

    def test_second_worker_exits_with_nothing_to_do(self, tmp_path):
        recipes = small_recipes()
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        for recipe in recipes:
            queue.submit(recipe)
        run_worker(queue, store, owner="w1", idle_exit_s=0.2, poll_s=0.01)
        summary = run_worker(
            queue, store, owner="w2", idle_exit_s=5.0, poll_s=0.01,
        )
        assert summary.executed == 0

    def test_worker_blob_matches_serial(self, tmp_path):
        recipes = small_recipes()
        serial_store = store_for(tmp_path / "serial")
        serial = run_serial_sweep(recipes, serial_store)
        queue = FileWorkQueue(tmp_path / "dist" / "queue")
        dist_store = store_for(tmp_path / "dist")
        for recipe in recipes:
            queue.submit(recipe)
        run_worker(
            queue, dist_store, owner="w1", idle_exit_s=0.2, poll_s=0.01,
        )
        for key in serial.result_keys:
            assert blob_bytes(serial_store, key) == \
                blob_bytes(dist_store, key)


class TestCheckpointResume:
    def test_reclaimed_task_resumes_and_matches_serial(self, tmp_path):
        recipe = checkpointable_recipe()
        task_id = content_key(recipe)
        stride = 50_000

        serial_store = store_for(tmp_path / "serial")
        serial = run_serial_sweep([recipe], serial_store)
        total_cycles = serial.results[0].elapsed_cycles
        assert total_cycles > 2 * stride  # several strides of work

        queue = FileWorkQueue(
            tmp_path / "queue", lease_s=5.0, backoff_base_s=0.0,
        )
        store = store_for(tmp_path)
        queue.submit(recipe)

        # Worker A claims, simulates one stride, checkpoints, and dies
        # (silently: no fail, no complete — exactly what SIGKILL leaves).
        claimed_a = queue.claim("worker-a")
        sim = build_simulator(claimed_a.task.recipe)
        assert not sim.run_until(stride)  # stopped mid-run, not finished
        snap = sim.snapshot()
        store.put(
            checkpoint_recipe(task_id),
            {
                "task_id": task_id,
                "cycle": sim.now,
                "engine": snap.engine,
                "snapshot_b64": _encode_snapshot(snap),
            },
            name=checkpoint_alias(task_id),
            kind=CHECKPOINT_KIND,
            overwrite=True,
        )
        checkpoint_cycle = sim.now
        # run_until stops on the last event at or before the target.
        assert 0 < checkpoint_cycle <= stride

        # The lease expires; the reclaimer returns the task to pending.
        later = time.time() + queue.lease_s + 1.0
        assert queue.reclaim_expired(now=later) == [task_id]

        # Worker B claims and must resume from the checkpoint: the
        # acceptance criterion is fewer cycles simulated after resume
        # than a from-scratch run, with a byte-identical result.
        claimed_b = queue.claim("worker-b", now=later)
        assert claimed_b is not None
        assert claimed_b.attempts == 2
        execution = execute_claimed_task(
            queue, store, claimed_b, checkpoint_stride=stride,
        )
        assert execution.resumed_from_cycle == checkpoint_cycle
        cycles_after_resume = total_cycles - execution.resumed_from_cycle
        assert cycles_after_resume < total_cycles
        assert execution.elapsed_cycles == total_cycles
        assert blob_bytes(store, task_id) == \
            blob_bytes(serial_store, task_id)
        assert queue.done_record(task_id)["result_key"] == task_id

    def test_corrupt_checkpoint_falls_back_to_scratch(self, tmp_path):
        recipe = checkpointable_recipe()
        task_id = content_key(recipe)
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        store.put(
            checkpoint_recipe(task_id),
            {"task_id": task_id, "cycle": 12345,
             "snapshot_b64": "not!valid!base64!pickle"},
            name=checkpoint_alias(task_id),
            kind=CHECKPOINT_KIND,
            overwrite=True,
        )
        queue.submit(recipe)
        claimed = queue.claim("w1")
        execution = execute_claimed_task(
            queue, store, claimed, checkpoint_stride=50_000,
        )
        assert execution.resumed_from_cycle is None  # scratch, not crash
        assert queue.done_record(task_id) is not None

    def test_completed_task_checkpoint_becomes_garbage(self, tmp_path):
        recipe = checkpointable_recipe()
        task_id = content_key(recipe)
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        queue.submit(recipe)
        claimed = queue.claim("w1")
        execution = execute_claimed_task(
            queue, store, claimed, checkpoint_stride=50_000,
        )
        assert execution.checkpoints_written >= 1
        # The checkpoint alias is retired on completion...
        assert store.latest(checkpoint_alias(task_id)) is None
        checkpoint_key = content_key(checkpoint_recipe(task_id))
        assert store.blob_path(checkpoint_key).is_file()
        # ...so gc reports it as reclaimable, removes it, and keeps the
        # still-aliased result blob fetchable.  (blob_grace_s=0: the
        # checkpoint blob is seconds old, and the grace that protects
        # in-flight writers would otherwise spare it.)
        dry = store.gc(dry_run=True, blob_grace_s=0.0)
        assert checkpoint_key in [key for key, _ in dry.unreferenced_blobs]
        assert dry.reclaimable_bytes > 0
        assert store.blob_path(checkpoint_key).is_file()
        real = store.gc(blob_grace_s=0.0)
        assert checkpoint_key in [key for key, _ in real.unreferenced_blobs]
        assert not store.blob_path(checkpoint_key).is_file()
        assert store.get(task_id) is not None


class TestFailurePaths:
    def test_poisoned_task_raises_with_traceback(self, tmp_path):
        broken = checkpointable_recipe()
        broken["scenario"] = dict(broken["scenario"])
        broken["scenario"]["cores"] = "no_such_workload"
        queue = FileWorkQueue(
            tmp_path / "queue", max_attempts=1, backoff_base_s=0.0,
        )
        store = store_for(tmp_path)
        with pytest.raises(DistributedSweepError) as excinfo:
            run_distributed_sweep(
                [broken], queue, store, poll_s=0.0, serial_grace_s=0.0,
            )
        message = str(excinfo.value)
        assert "poisoned" in message
        assert "no_such_workload" in message
        assert excinfo.value.poison[0]["attempts"] == 1

    def test_timeout_raises_with_queue_census(self, tmp_path):
        recipes = small_recipes()
        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        with pytest.raises(DistributedSweepError) as excinfo:
            run_distributed_sweep(
                recipes, queue, store, poll_s=0.01,
                serial_grace_s=60.0,   # never degrade...
                timeout_s=0.1,         # ...and give up fast
            )
        assert "timed out" in str(excinfo.value)
        assert "pending" in str(excinfo.value)


class TestGracefulStop:
    def test_stop_event_releases_at_stride_boundary(self, tmp_path):
        """A pre-set stop event releases after the first checkpoint."""
        import threading

        recipe = checkpointable_recipe()
        task_id = content_key(recipe)
        queue = FileWorkQueue(tmp_path / "queue", lease_s=30.0)
        store = store_for(tmp_path)
        queue.submit(recipe)
        stop = threading.Event()
        stop.set()
        claimed = queue.claim("w1")
        execution = execute_claimed_task(
            queue, store, claimed, checkpoint_stride=20_000,
            stop_event=stop,
        )
        assert execution is None
        # Claim handed back penalty-free, checkpoint durable.
        status = queue.status()
        assert status.pending == 1
        assert status.claimed == 0
        from repro.distrib.queue import _read_json

        pending = _read_json(queue._path("pending", task_id))
        assert pending["attempts"] == 0
        assert pending["released_by"] == "w1"
        checkpoint = store.fetch(checkpoint_recipe(task_id))
        assert checkpoint is not None
        assert checkpoint["cycle"] > 0

    def test_released_task_resumes_and_matches_serial(self, tmp_path):
        """stop → release → resume produces the serial bytes."""
        import threading

        recipe = checkpointable_recipe()
        task_id = content_key(recipe)
        serial_store = store_for(tmp_path / "serial")
        run_serial_sweep([recipe], serial_store)
        queue = FileWorkQueue(tmp_path / "queue", lease_s=30.0)
        store = store_for(tmp_path / "dist")
        queue.submit(recipe)
        stop = threading.Event()
        stop.set()
        first = queue.claim("w1")
        assert execute_claimed_task(
            queue, store, first, checkpoint_stride=20_000,
            stop_event=stop,
        ) is None
        second = queue.claim("w2")
        execution = execute_claimed_task(
            queue, store, second, checkpoint_stride=20_000,
        )
        assert execution is not None
        assert execution.resumed_from_cycle is not None
        assert execution.resumed_from_cycle > 0
        assert (
            store.blob_path(task_id).read_bytes()
            == serial_store.blob_path(task_id).read_bytes()
        )

    def test_run_worker_reports_graceful_stop(self, tmp_path):
        """run_worker with a pre-set stop event exits without claiming."""
        import threading

        queue = FileWorkQueue(tmp_path / "queue")
        store = store_for(tmp_path)
        queue.submit(checkpointable_recipe())
        stop = threading.Event()
        stop.set()
        summary = run_worker(
            queue, store, owner="w1", stop_event=stop, idle_exit_s=0.1,
        )
        assert summary.stopped
        assert summary.executed == 0
        assert summary.failed == 0
        assert queue.status().pending == 1   # untouched
