"""Checkpointing: resume-from-snapshot must equal the straight run.

The contract (``repro.sim.snapshot``): pause either engine mid-run with
``run_until``, ``snapshot()`` it, ``restore()`` into a *freshly built*
identical simulator, run that to completion — and every SimResult field
is bit-identical to the uninterrupted run.  Also pinned: snapshotting is
non-destructive (the paused run can itself continue), restores can
rewind a finished run back to the checkpoint, and every tracker's
snapshot/restore round-trips its kernel state including RNG streams.
"""

import random

import pytest

from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.reference import ReferenceSimulator
from repro.sim.snapshot import capture, state_fingerprint
from repro.sim.system import SystemSimulator
from repro.workloads.synthetic import rate_mode_traces

from test_engine_equivalence import result_fields

REQUESTS = 120

#: One defense per tracker kind, so checkpointing covers every tracker's
#: snapshot/restore implementation plus the undefended path.
DEFENSES = [
    None,
    DefenseConfig(tracker="graphene", scheme="impress-p"),
    DefenseConfig(tracker="graphene", scheme="express", alpha=1.0),
    DefenseConfig(tracker="para", scheme="impress-p", trh=100),
    DefenseConfig(tracker="mithril", scheme="impress-p", rfmth=20),
    DefenseConfig(tracker="mint", scheme="impress-n", trh=1600, rfmth=20),
    DefenseConfig(tracker="prac", scheme="no-rp", trh=150),
    DefenseConfig(tracker="dsac", scheme="impress-p", trh=300),
]

ENGINES = {
    "fast": SystemSimulator,
    "reference": ReferenceSimulator,
}


def _defense_id(defense):
    if defense is None:
        return "none"
    return f"{defense.tracker}-{defense.scheme}"


def _build(engine, workload="mcf", defense=None, seed=7):
    system = SystemConfig(n_cores=2, banks_per_channel=8)
    traces = rate_mode_traces(workload, 2, REQUESTS, seed=seed)
    return ENGINES[engine](system, traces, defense)


class TestResumeEqualsStraightRun:
    @pytest.mark.parametrize("defense", DEFENSES, ids=_defense_id)
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_matrix(self, engine, defense):
        straight = _build(engine, defense=defense).run()

        paused = _build(engine, defense=defense)
        done = paused.run_until(stop_cycle=straight.elapsed_cycles // 2)
        assert not done
        snap = paused.snapshot()

        resumed = _build(engine, defense=defense)
        resumed.restore(snap)
        result = resumed.run()
        assert result_fields(result) == result_fields(straight)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_checkpoint_position_does_not_matter(self, engine, fraction):
        defense = DefenseConfig(tracker="graphene", scheme="impress-p")
        straight = _build(engine, "add_copy", defense).run()
        stop = int(straight.elapsed_cycles * fraction)

        paused = _build(engine, "add_copy", defense)
        paused.run_until(stop_cycle=stop)
        resumed = _build(engine, "add_copy", defense)
        resumed.restore(paused.snapshot())
        assert result_fields(resumed.run()) == result_fields(straight)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_snapshot_is_non_destructive(self, engine):
        defense = DefenseConfig(tracker="mint", scheme="impress-p",
                                trh=1600, rfmth=20)
        straight = _build(engine, defense=defense).run()

        paused = _build(engine, defense=defense)
        paused.run_until(stop_cycle=straight.elapsed_cycles // 3)
        paused.snapshot()
        assert result_fields(paused.run()) == result_fields(straight)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_rewind_a_finished_run(self, engine):
        defense = DefenseConfig(tracker="para", scheme="impress-p", trh=100)
        sim = _build(engine, defense=defense)
        straight = sim.run()

        rewound = _build(engine, defense=defense)
        rewound.run_until(stop_cycle=straight.elapsed_cycles // 2)
        snap = rewound.snapshot()
        first = rewound.run()
        rewound.restore(snap)
        second = rewound.run()
        assert result_fields(first) == result_fields(straight)
        assert result_fields(second) == result_fields(straight)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_repeated_checkpoints(self, engine):
        """Stop-and-go in many small steps equals one straight run."""
        defense = DefenseConfig(tracker="graphene", scheme="impress-n")
        straight = _build(engine, defense=defense).run()

        stepped = _build(engine, defense=defense)
        stop, step = 0, max(1, straight.elapsed_cycles // 13)
        while not stepped.run_until(stop_cycle=stop):
            stepped.snapshot()
            stop += step
        assert result_fields(stepped.finish()) == result_fields(straight)


class TestRunUntilSemantics:
    def test_run_until_none_completes(self):
        sim = _build("fast")
        assert sim.run_until() is True
        assert sim.done

    def test_done_and_now_progress(self):
        sim = _build("fast")
        assert not sim.done
        done = sim.run_until(stop_cycle=2000)
        assert not done and not sim.done
        assert sim.now <= 2000
        assert sim.run_until() is True
        assert sim.done

    def test_cross_engine_restore_rejected(self):
        snap = capture(_build("fast"))
        with pytest.raises(ValueError, match="cannot restore"):
            _build("reference").restore(snap)

    def test_topology_mismatch_rejected(self):
        snap = capture(_build("fast"))
        other = SystemSimulator(
            SystemConfig(n_cores=1, banks_per_channel=8),
            rate_mode_traces("mcf", 1, 50, seed=7),
        )
        with pytest.raises(ValueError, match="topology"):
            other.restore(snap)

    def test_fingerprints_match_across_engines_at_stop(self):
        """Both engines, stepped to the same stop cycle, agree on all
        observable state — the property divergence bisection relies on."""
        defense = DefenseConfig(tracker="graphene", scheme="impress-p")
        fast = _build("fast", defense=defense)
        reference = _build("reference", defense=defense)
        for stop in (1000, 5000, 20000, None):
            fast_done = fast.run_until(stop_cycle=stop)
            ref_done = reference.run_until(stop_cycle=stop)
            assert fast_done == ref_done
            assert state_fingerprint(fast) == state_fingerprint(reference)


class TestTrackerRoundTrips:
    """snapshot -> perturb -> restore -> replay must be bit-faithful."""

    def _roundtrip(self, tracker, feed):
        feed(tracker, range(0, 40))
        snap = tracker.snapshot()
        baseline = tracker.snapshot()
        feed(tracker, range(40, 80))
        after_once = tracker.snapshot()
        tracker.restore(snap)
        assert tracker.snapshot() == baseline
        feed(tracker, range(40, 80))
        assert tracker.snapshot() == after_once

    def _feed_record(self, tracker, rows):
        for row in rows:
            tracker.record(row % 8)

    def test_graphene(self):
        from repro.trackers.graphene import GrapheneTracker

        self._roundtrip(GrapheneTracker(entries=4, internal_threshold=10),
                        self._feed_record)

    def test_mithril(self):
        from repro.trackers.mithril import MithrilTracker

        def feed(tracker, rows):
            self._feed_record(tracker, rows)
            tracker.on_rfm()

        self._roundtrip(MithrilTracker(entries=4), feed)

    def test_mint_rng_stream(self):
        from repro.trackers.mint import MintTracker

        def feed(tracker, rows):
            self._feed_record(tracker, rows)
            tracker.on_rfm()

        self._roundtrip(MintTracker(rfmth=8, rng=random.Random(3)), feed)

    def test_para_rng_stream(self):
        from repro.trackers.para import ParaTracker

        self._roundtrip(ParaTracker(p=0.25, rng=random.Random(5)),
                        self._feed_record)

    def test_prac(self):
        from repro.trackers.prac import PracTracker

        self._roundtrip(PracTracker(alert_threshold=7), self._feed_record)

    def test_dsac_eviction_order(self):
        from repro.trackers.dsac import DsacLikeTracker

        def feed(tracker, rows):
            for row in rows:
                # Distinct rows so the 4-entry table keeps evicting; the
                # tie-break is insertion order, which the dict snapshot
                # must preserve.
                tracker.record(row, weight=1.0 + (row % 3))

        self._roundtrip(DsacLikeTracker(entries=4, mitigation_threshold=9),
                        feed)

    def test_accounting(self):
        from repro.trackers.base import AccountingTracker

        def feed(tracker, rows):
            for row in rows:
                tracker.record(row % 8, weight=1.5)

        self._roundtrip(AccountingTracker(), feed)

    def test_base_tracker_rejects(self):
        from repro.trackers.base import Tracker

        class Bare(Tracker):
            def record(self, row, weight=1.0, cycle=0):
                return []

            def reset(self):
                pass

        with pytest.raises(NotImplementedError):
            Bare().snapshot()
        with pytest.raises(NotImplementedError):
            Bare().restore(None)
