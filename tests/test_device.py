"""Unit tests for the DRAM device (RFM bookkeeping, victim rows)."""

import pytest

from repro.dram.commands import Command, CommandCounts, CommandKind
from repro.dram.device import BLAST_RADIUS, DramDevice, victim_rows


class TestVictimRows:
    def test_blast_radius_two_gives_four_victims(self):
        assert victim_rows(100) == [99, 101, 98, 102]

    def test_edge_of_array_clips_low_side(self):
        assert victim_rows(0) == [1, 2]

    def test_blast_radius_one(self):
        assert victim_rows(100, blast_radius=1) == [99, 101]

    def test_default_blast_radius(self):
        assert BLAST_RADIUS == 2


class TestDramDevice:
    @pytest.fixture
    def device(self, timings):
        return DramDevice(timings=timings, num_banks=4, rfm_threshold=3)

    def test_rfm_due_after_threshold_acts(self, device, timings):
        bank = device.banks[0]
        cycle = 0
        for i in range(3):
            bank.activate(i, cycle)
            bank.precharge(cycle + timings.tRAS)
            cycle += timings.tRC
        assert device.rfm_due(0)
        assert not device.rfm_due(1)

    def test_issue_rfm_resets_counter(self, device, timings):
        bank = device.banks[0]
        bank.activate(1, 0)
        bank.precharge(timings.tRAS)
        assert device.acts_since_rfm(0) == 1
        device.issue_rfm(0, timings.tRC)
        assert device.acts_since_rfm(0) == 0

    def test_rejects_bad_banks(self, timings):
        with pytest.raises(ValueError):
            DramDevice(timings=timings, num_banks=0)


class TestCommandCounts:
    def test_demand_vs_mitigative_split(self):
        counts = CommandCounts()
        counts.record(Command(CommandKind.ACT, bank=0, cycle=0, row=1))
        counts.record(
            Command(CommandKind.ACT, bank=0, cycle=1, row=2, mitigative=True)
        )
        assert counts.demand_acts == 1
        assert counts.mitigative_acts == 1
        assert counts.total_acts == 2

    def test_act_requires_row(self):
        with pytest.raises(ValueError):
            Command(CommandKind.ACT, bank=0, cycle=0)

    def test_merged_with(self):
        a = CommandCounts(demand_acts=1, reads=2)
        b = CommandCounts(demand_acts=3, writes=4)
        merged = a.merged_with(b)
        assert merged.demand_acts == 4
        assert merged.reads == 2
        assert merged.writes == 4

    def test_record_each_kind(self):
        counts = CommandCounts()
        for kind in (CommandKind.PRE, CommandKind.RD, CommandKind.WR,
                     CommandKind.REF, CommandKind.RFM):
            counts.record(Command(kind, bank=0, cycle=0))
        assert counts.precharges == 1
        assert counts.reads == 1
        assert counts.writes == 1
        assert counts.refreshes == 1
        assert counts.rfms == 1
