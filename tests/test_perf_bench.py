"""Tests for the perf-benchmark harness and the comparison gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    ARTIFACT_SCHEMA,
    BenchReport,
    BenchResult,
    BenchSpec,
    artifact_index,
    compare_to_previous,
    latest_artifact,
    machine_metadata,
    next_artifact_path,
    run_benchmarks,
    run_one,
    write_artifact,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_COMPARE = REPO_ROOT / "tools" / "bench_compare.py"

#: A tiny spec set so harness tests stay fast.
TINY_SPECS = (
    BenchSpec("tiny_fast", "mcf", n_cores=1),
    BenchSpec("tiny_reference", "mcf", n_cores=1, engine="reference"),
)


def tiny_report(**overrides):
    report = run_benchmarks(
        quick=True, repeats=1, n_requests=30, specs=TINY_SPECS
    )
    for key, value in overrides.items():
        setattr(report, key, value)
    return report


class TestHarness:
    def test_run_one_measures_cycles(self):
        result = run_one(BenchSpec("t", "mcf", n_cores=1), 30, repeats=1)
        assert result.cycles > 0
        assert result.seconds > 0
        assert result.cycles_per_sec == result.cycles / result.seconds

    def test_reference_and_fast_simulate_identically(self):
        fast = run_one(TINY_SPECS[0], 30, repeats=1)
        reference = run_one(TINY_SPECS[1], 30, repeats=1)
        assert fast.cycles == reference.cycles

    def test_fixed_requests_pins_run_shape(self):
        spec = BenchSpec("pinned", "mcf", n_cores=1, fixed_requests=40)
        result = run_one(spec, 30, repeats=1)
        assert result.n_requests == 40

    def test_report_structure(self):
        report = tiny_report()
        payload = report.to_json()
        assert payload["schema"] == ARTIFACT_SCHEMA
        assert payload["calibration_ops_per_sec"] > 0
        assert len(payload["benchmarks"]) == len(TINY_SPECS)
        assert {"hits", "misses", "hit_rate"} <= set(payload["sweep_cache"])
        assert {"hits", "misses", "hit_rate"} <= set(payload["trace_cache"])
        for row in payload["benchmarks"]:
            assert row["cycles_per_sec"] > 0

    def test_speedup_vs_reference_uses_canonical_pair(self):
        report = tiny_report()
        # The tiny specs are not the canonical names, so no speedup.
        assert report.speedup_vs_reference() is None
        renamed = [
            BenchResult(
                spec=BenchSpec("single_core", "mcf", n_cores=1),
                n_requests=30, cycles=1000, seconds=0.5, repeats=1,
            ),
            BenchResult(
                spec=BenchSpec("single_core_reference", "mcf", n_cores=1,
                               engine="reference"),
                n_requests=30, cycles=1000, seconds=1.0, repeats=1,
            ),
        ]
        report.results = renamed
        assert report.speedup_vs_reference() == pytest.approx(2.0)

    def test_machine_metadata_fields(self):
        meta = machine_metadata()
        assert meta["python"]
        assert meta["platform"]


class TestMicrobenchEngines:
    @pytest.mark.parametrize(
        "tracker", ["graphene", "para", "mithril", "mint", "prac", "dsac"]
    )
    def test_tracker_kernel_rows(self, tracker):
        from repro.bench import KERNEL_RECORDS_PER_REQUEST

        spec = BenchSpec(
            f"ukernel_{tracker}", "synthetic", tracker=tracker,
            scheme="kernel", n_cores=1, engine="tracker-kernel",
        )
        result = run_one(spec, 20, repeats=1)
        # cycles counts kernel record calls for this engine.
        assert result.cycles == 20 * KERNEL_RECORDS_PER_REQUEST
        assert result.cycles_per_sec > 0

    def test_sweep_row_sums_point_cycles(self):
        spec = BenchSpec(
            "sweep_tiny", "mcf+add", tracker="graphene",
            scheme="impress-p", n_cores=2, engine="sweep",
            fixed_requests=30,
        )
        result = run_one(spec, 999, repeats=1)
        assert result.n_requests == 30  # pinned shape
        assert result.cycles > 0

    def test_canonical_set_has_ukernel_and_sweep_rows(self):
        from repro.bench import CANONICAL_BENCHMARKS

        names = {spec.name for spec in CANONICAL_BENCHMARKS}
        assert {
            "ukernel_graphene", "ukernel_para", "ukernel_mithril",
            "ukernel_mint", "ukernel_prac", "ukernel_dsac",
            "sweep_run_many", "colocated_attack", "scenario_invariants",
        } <= names

    def test_scenario_engine_row_runs(self):
        from repro.bench import run_one, CANONICAL_BENCHMARKS

        spec = next(
            s for s in CANONICAL_BENCHMARKS if s.name == "colocated_attack"
        )
        assert spec.engine == "scenario"
        result = run_one(spec, 60, 1)
        assert result.cycles > 0
        assert result.cycles_per_sec > 0

    def test_scenario_invariants_row_matches_unmonitored(self):
        """The monitored row simulates the same run, just watched.

        The checkpointed+monitored pass must not perturb simulation
        semantics: its simulated cycle count equals the plain scenario
        row's, so any throughput gap between the two artifact rows is
        purely monitoring overhead.
        """
        from repro.bench import run_one, CANONICAL_BENCHMARKS

        monitored_spec = next(
            s for s in CANONICAL_BENCHMARKS
            if s.name == "scenario_invariants"
        )
        plain_spec = next(
            s for s in CANONICAL_BENCHMARKS if s.name == "colocated_attack"
        )
        assert monitored_spec.engine == "scenario-invariants"
        monitored = run_one(monitored_spec, 60, 1)
        plain = run_one(plain_spec, 60, 1)
        assert monitored.cycles == plain.cycles
        assert monitored.cycles_per_sec > 0


class TestProfileCommand:
    def test_profile_row_prints_table(self):
        from repro.bench import profile_row

        messages = []
        code = profile_row(
            "ukernel_para", quick=True, n_requests=10, top=5,
            progress=messages.append,
        )
        assert code == 0
        output = "\n".join(messages)
        assert "profile of ukernel_para" in output
        assert "cumulative" in output

    def test_profile_unknown_row_errors(self):
        from repro.bench import profile_row

        messages = []
        assert profile_row("nope", progress=messages.append) == 2
        assert "unknown benchmark" in messages[0]


class TestArtifacts:
    def test_indexing_and_next_path(self, tmp_path):
        assert artifact_index(Path("BENCH_0042.json")) == 42
        assert artifact_index(Path("other.json")) is None
        assert next_artifact_path(tmp_path).name == "BENCH_0001.json"
        (tmp_path / "BENCH_0001.json").write_text("{}")
        (tmp_path / "BENCH_0007.json").write_text("{}")
        assert next_artifact_path(tmp_path).name == "BENCH_0008.json"
        assert latest_artifact(tmp_path).name == "BENCH_0007.json"

    def test_write_and_compare_roundtrip(self, tmp_path):
        report = tiny_report()
        path = write_artifact(report, tmp_path)
        assert path.name == "BENCH_0001.json"
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == ARTIFACT_SCHEMA
        lines = compare_to_previous(report, path)
        assert any("1.00x" in line for line in lines)

    def test_compare_without_baseline(self):
        report = tiny_report()
        lines = compare_to_previous(report, None)
        assert "no previous baseline" in lines[0]


def _artifact(tmp_path, name, cycles_per_sec, calibration=1_000_000.0,
              n_requests=30):
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "quick": True,
        "calibration_ops_per_sec": calibration,
        "benchmarks": [
            {
                "name": "single_core",
                "n_requests": n_requests,
                "n_cores": 1,
                "cycles_per_sec": cycles_per_sec,
            }
        ],
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run_compare(*args):
    return subprocess.run(
        [sys.executable, str(BENCH_COMPARE), *map(str, args)],
        capture_output=True, text=True,
    )


class TestBenchCompareTool:
    def test_pass_within_threshold(self, tmp_path):
        base = _artifact(tmp_path, "BENCH_0001.json", 100_000.0)
        cur = _artifact(tmp_path, "BENCH_0002.json", 90_000.0)
        proc = run_compare(base, cur, "--max-regression", "0.30")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_fails_on_gross_regression(self, tmp_path):
        base = _artifact(tmp_path, "BENCH_0001.json", 100_000.0)
        cur = _artifact(tmp_path, "BENCH_0002.json", 50_000.0)
        proc = run_compare(base, cur, "--max-regression", "0.30")
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_calibration_normalizes_machine_speed(self, tmp_path):
        # Current machine is 2x slower (half the calibration score) and
        # the raw throughput halved with it: normalized ratio is 1.0.
        base = _artifact(tmp_path, "BENCH_0001.json", 100_000.0,
                         calibration=2_000_000.0)
        cur = _artifact(tmp_path, "BENCH_0002.json", 50_000.0,
                        calibration=1_000_000.0)
        proc = run_compare(base, cur)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        proc_raw = run_compare(base, cur, "--no-normalize")
        assert proc_raw.returncode == 1

    def test_errors_when_nothing_comparable(self, tmp_path):
        base = _artifact(tmp_path, "BENCH_0001.json", 100_000.0,
                         n_requests=30)
        cur = _artifact(tmp_path, "BENCH_0002.json", 100_000.0,
                        n_requests=400)
        proc = run_compare(base, cur)
        assert proc.returncode == 2
        assert "no comparable benchmarks" in proc.stdout

    def test_directory_resolution_picks_latest(self, tmp_path):
        _artifact(tmp_path, "BENCH_0001.json", 100_000.0)
        _artifact(tmp_path, "BENCH_0002.json", 95_000.0)
        proc = run_compare(tmp_path, tmp_path)
        assert proc.returncode == 0
        assert "BENCH_0002.json" in proc.stdout


class TestTrajectoryMode:
    def test_trajectory_table_over_sequence(self, tmp_path):
        _artifact(tmp_path, "BENCH_0001.json", 100_000.0)
        _artifact(tmp_path, "BENCH_0002.json", 150_000.0)
        _artifact(tmp_path, "BENCH_0003.json", 200_000.0)
        proc = run_compare("--trajectory", tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "trajectory over 3 artifacts" in proc.stdout
        line = next(
            ln for ln in proc.stdout.splitlines()
            if ln.strip().startswith("single_core")
        )
        # Baseline column is absolute, later columns ratios vs it.
        assert "100,000" in line
        assert "1.50x" in line
        assert "2.00x" in line

    def test_trajectory_marks_shape_changes(self, tmp_path):
        _artifact(tmp_path, "BENCH_0001.json", 100_000.0, n_requests=30)
        _artifact(tmp_path, "BENCH_0002.json", 100_000.0, n_requests=400)
        proc = run_compare("--trajectory", tmp_path)
        assert proc.returncode == 0
        assert "shape" in proc.stdout

    def test_trajectory_needs_two_artifacts(self, tmp_path):
        _artifact(tmp_path, "BENCH_0001.json", 100_000.0)
        proc = run_compare("--trajectory", tmp_path)
        assert proc.returncode == 2

    def test_pairwise_still_requires_current(self, tmp_path):
        _artifact(tmp_path, "BENCH_0001.json", 100_000.0)
        proc = run_compare(tmp_path)
        assert proc.returncode == 2


class TestCliIntegration:
    def test_repro_bench_no_write(self, tmp_path, capsys):
        from repro.bench import run_bench_command

        code = run_bench_command(
            quick=True, repeats=1, n_requests=30,
            out_dir=tmp_path, write=False,
        )
        assert code == 0
        assert not list(tmp_path.iterdir())

    def test_repro_bench_writes_artifact(self, tmp_path):
        from repro.bench import run_bench_command

        messages = []
        code = run_bench_command(
            quick=True, repeats=1, n_requests=30,
            out_dir=tmp_path, progress=messages.append,
        )
        assert code == 0
        artifact = tmp_path / "BENCH_0001.json"
        assert artifact.is_file()
        payload = json.loads(artifact.read_text())
        names = {row["name"] for row in payload["benchmarks"]}
        assert {"single_core", "single_core_reference",
                "tracker_graphene", "class_stream"} <= names
        assert any("speedup" in message for message in messages)
