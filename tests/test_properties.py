"""Cross-module property-based tests on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.charge import ConservativeLinearModel, TRAS_TRC
from repro.core.eact import quantize_eact
from repro.core.mitigation import ImpressNScheme, ImpressPScheme
from repro.dram.timing import default_cycle_timings
from repro.security.charge_account import access_tcl
from repro.trackers.base import AccountingTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.mithril import MithrilTracker
from repro.workloads.attacks import TimedAccess

TIMINGS = default_cycle_timings()


class TestMisraGriesInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                 max_size=400),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_graphene_counts_never_undercount(self, rows, entries):
        """A tracked row's counter is at least its true count minus the
        spillover — the Misra-Gries frequency guarantee, which is what
        makes Graphene's mitigation *secure* rather than best-effort."""
        tracker = GrapheneTracker(entries=entries, internal_threshold=10**9)
        true_counts = {}
        for row in rows:
            tracker.record(row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, true in true_counts.items():
            if row in tracker.tracked_rows():
                assert tracker.count_for(row) >= true - tracker.spillover
            else:
                # An untracked row's count never exceeded the spillover.
                assert true <= tracker.spillover

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                 max_size=300),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_mithril_table_never_overflows(self, rows, entries):
        tracker = MithrilTracker(entries=entries)
        for row in rows:
            tracker.record(row)
        assert len(tracker._table) <= entries

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=20,
                 max_size=300)
    )
    @settings(max_examples=40, deadline=None)
    def test_mithril_rfm_picks_a_maximum(self, rows):
        tracker = MithrilTracker(entries=4)
        for row in rows:
            tracker.record(row)
        snapshot = dict(tracker._table)
        winner = tracker.on_rfm()
        if winner is not None:
            assert snapshot[winner] == max(snapshot.values())


class TestSchemeConservativeness:
    @given(
        st.integers(min_value=0, max_value=10_000),   # act phase
        st.integers(min_value=0, max_value=40),       # extra open, tRC
        st.integers(min_value=0, max_value=127),      # sub-tRC remainder
    )
    @settings(max_examples=80, deadline=None)
    def test_impress_p_records_within_one_quantum(self, act, extra, rem):
        """ImPress-P's recorded EACT is never more than the true damage
        at alpha=1 and never more than one quantum below it."""
        tracker = AccountingTracker()
        scheme = ImpressPScheme([tracker], TIMINGS, fraction_bits=7)
        ton = TIMINGS.tRAS + extra * TIMINGS.tRC + rem
        close = act + ton
        scheme.on_activate(0, 3, act)
        scheme.on_row_closed(0, 3, act, close)
        access = TimedAccess(row=3, act_cycle=act, close_cycle=close)
        true = access_tcl(access, alpha=1.0, timings=TIMINGS)
        recorded = tracker.recorded_for(3)
        assert recorded <= true + 1e-9
        assert recorded >= true - 1 / 128 - 1e-9

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=127),
    )
    @settings(max_examples=80, deadline=None)
    def test_impress_n_undercount_bounded_by_invisible_window(
        self, act, extra, rem
    ):
        """Eq 5 as an invariant, at hardware precision.

        The ORA mechanism cannot see a row during its activation (tACT)
        and the attacker can close just before a boundary, so per
        recorded ACT the unmitigated open time is bounded by one tRC
        plus that slack: true damage (alpha = 1) never exceeds
        (1 + (tRC + tACT + tPRE)/tRC) = 2.5 per record.  The paper's
        idealized Eq 5 bound (2.0) corresponds to rounding the slack
        into the one-window statement; the canonical Fig-10 pattern
        achieves exactly 2.0 (see test_mitigation / test_security).
        """
        tracker = AccountingTracker()
        scheme = ImpressNScheme([tracker], TIMINGS)
        ton = TIMINGS.tRAS + extra * TIMINGS.tRC + rem
        close = act + ton
        scheme.on_activate(0, 3, act)
        scheme.on_row_closed(0, 3, act, close)
        access = TimedAccess(row=3, act_cycle=act, close_cycle=close)
        true = access_tcl(access, alpha=1.0, timings=TIMINGS)
        recorded = tracker.recorded_for(3)
        slack = (TIMINGS.tRC + TIMINGS.tACT + TIMINGS.tPRE) / TIMINGS.tRC
        assert true <= (1.0 + slack) * recorded + 1e-9


class TestModelQuantizationComposition:
    @given(
        st.floats(min_value=TRAS_TRC, max_value=200.0),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_quantized_eact_bounds_clm(self, ton_trc, bits, alpha):
        """Quantized EACT at alpha=1 dominates the CLM damage for any
        alpha <= 1 up to the quantization quantum."""
        model = ConservativeLinearModel(alpha=alpha)
        eact = 1.0 + (ton_trc - TRAS_TRC)
        recorded = quantize_eact(eact, bits)
        assert model.tcl_of_open_time(ton_trc) <= recorded + 2.0**-bits + 1e-9


class TestSimulatorDeterminism:
    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=4, deadline=None)
    def test_same_seed_same_result(self, seed):
        from repro.sim.config import SystemConfig
        from repro.sim.system import simulate_workload

        system = SystemConfig(n_cores=2, banks_per_channel=8)
        a = simulate_workload("gcc", system=system,
                              n_requests_per_core=100, seed=seed)
        b = simulate_workload("gcc", system=system,
                              n_requests_per_core=100, seed=seed)
        assert a.elapsed_cycles == b.elapsed_cycles
        assert a.counts.demand_acts == b.counts.demand_acts
        assert a.row_hits == b.row_hits
