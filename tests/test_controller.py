"""Unit tests for the channel memory controller."""

import pytest

from repro.core.mitigation import ImpressPScheme, NoRpScheme
from repro.dram.address import MappedAddress
from repro.memctrl.controller import (
    BANK_QUEUE_CAPACITY,
    VICTIMS_PER_MITIGATION,
    ChannelController,
)
from repro.memctrl.request import InFlightRequest
from repro.trackers.base import AccountingTracker
from repro.trackers.para import ParaTracker


def make_controller(timings, scheme_cls=NoRpScheme, num_banks=2, **kwargs):
    trackers = [AccountingTracker() for _ in range(num_banks)]
    scheme = scheme_cls(trackers, timings)
    return ChannelController(
        timings=timings, num_banks=num_banks, scheme=scheme, **kwargs
    )


def demand(core, bank, row, column=0, cycle=0, write=False):
    return InFlightRequest(
        core_id=core,
        mapped=MappedAddress(channel=0, bank=bank, row=row, column=column),
        is_write=write,
        enqueue_cycle=cycle,
    )


class TestDemandPath:
    def test_miss_then_hit(self, timings):
        controller = make_controller(timings)
        controller.enqueue(demand(0, 0, 5, 0))
        controller.enqueue(demand(0, 0, 5, 1))
        first = controller.service(0, 0)
        assert first.worked and len(first.completions) == 1
        second = controller.service(0, first.next_wake)
        assert second.worked
        assert controller.row_misses == 1
        assert controller.row_hits == 1
        assert controller.counts.demand_acts == 1

    def test_conflict_closes_and_reopens(self, timings):
        controller = make_controller(timings, idle_close_cycles=None,
                                     mop_burst_lines=None)
        controller.enqueue(demand(0, 0, 5))
        controller.service(0, 0)
        controller.enqueue(demand(0, 0, 9))
        # Step at busy_until: next_wake now reports the real next
        # deadline (refresh/tMRO/idle), not the bank-free cycle.
        cycle = max(controller.state[0].busy_until, timings.tRAS)
        controller.service(0, cycle)
        assert controller.row_conflicts == 1
        assert controller.counts.precharges >= 1

    def test_fr_fcfs_prefers_hit(self, timings):
        controller = make_controller(timings, idle_close_cycles=None,
                                     mop_burst_lines=None)
        controller.enqueue(demand(0, 0, 5))
        controller.service(0, 0)
        # Queue a conflicting row first, then a hit to the open row.
        controller.enqueue(demand(0, 0, 9, 2))
        controller.enqueue(demand(0, 0, 5, 1))
        controller.service(0, controller.state[0].busy_until)
        assert controller.row_hits == 1  # the younger hit won

    def test_write_completes_at_column_issue(self, timings):
        controller = make_controller(timings)
        controller.enqueue(demand(0, 0, 5, write=True))
        result = controller.service(0, 0)
        completion = result.completions[0]
        assert completion.is_write
        assert controller.counts.writes == 1

    def test_queue_capacity(self, timings):
        controller = make_controller(timings)
        for i in range(BANK_QUEUE_CAPACITY):
            controller.enqueue(demand(0, 0, i))
        assert not controller.can_accept(0)
        with pytest.raises(RuntimeError):
            controller.enqueue(demand(0, 0, 99))


class TestInFlightRequest:
    def test_requires_an_address(self):
        with pytest.raises(TypeError):
            InFlightRequest(core_id=0, is_write=True, enqueue_cycle=5)

    def test_rejects_mixed_address_forms(self):
        mapped = MappedAddress(channel=0, bank=1, row=2, column=0)
        with pytest.raises(TypeError):
            InFlightRequest(core_id=0, mapped=mapped, row=7)

    def test_flattened_coordinates_match_mapped(self):
        mapped = MappedAddress(channel=1, bank=3, row=7, column=2)
        via_mapped = InFlightRequest(core_id=0, mapped=mapped)
        via_ints = InFlightRequest(core_id=0, channel=1, bank=3, row=7,
                                   column=2)
        assert via_mapped.mapped == via_ints.mapped == mapped
        assert (via_ints.channel, via_ints.bank, via_ints.row) == (1, 3, 7)


class TestMopAndIdleClose:
    def test_mop_burst_closes_after_n_columns(self, timings):
        controller = make_controller(timings, mop_burst_lines=2,
                                     idle_close_cycles=None)
        controller.enqueue(demand(0, 0, 5, 0))
        controller.enqueue(demand(0, 0, 5, 1))
        wake = controller.service(0, 0).next_wake
        controller.service(0, wake)
        assert not controller.banks[0].is_open
        assert controller.counts.precharges == 1

    def test_idle_close_fires(self, timings):
        controller = make_controller(timings, mop_burst_lines=None,
                                     idle_close_cycles=100)
        controller.enqueue(demand(0, 0, 5))
        wake = controller.service(0, 0).next_wake
        # With nothing queued, the demand service reports the idle-close
        # deadline directly as its next wake.
        assert wake == controller.state[0].last_use + 100
        assert controller.banks[0].is_open
        late = controller.service(0, wake + 200)
        assert late.worked
        assert not controller.banks[0].is_open


class TestTmro:
    def test_tmro_closes_open_row(self, timings):
        tmro = timings.tRAS + timings.tRC
        controller = make_controller(
            timings, tmro_cycles=tmro, mop_burst_lines=None,
            idle_close_cycles=None,
        )
        controller.enqueue(demand(0, 0, 5))
        wake = controller.service(0, 0).next_wake
        result = controller.service(0, tmro + 10)
        assert result.worked
        assert controller.tmro_closures == 1
        assert not controller.banks[0].is_open

    def test_idle_wake_includes_tmro(self, timings):
        tmro = timings.tRAS + timings.tRC
        controller = make_controller(
            timings, tmro_cycles=tmro, mop_burst_lines=None,
            idle_close_cycles=None,
        )
        controller.enqueue(demand(0, 0, 5))
        wake = controller.service(0, 0).next_wake
        idle = controller.service(0, wake)
        assert idle.next_wake <= tmro + timings.tRC


class TestRefresh:
    def test_refresh_issues_when_due(self, timings):
        controller = make_controller(timings)
        due = controller.refresh[0].next_due
        result = controller.service(0, due)
        assert result.worked
        assert controller.counts.refreshes == 1

    def test_refresh_closes_open_row_first(self, timings):
        controller = make_controller(timings, mop_burst_lines=None,
                                     idle_close_cycles=None)
        due = controller.refresh[0].next_due
        controller.enqueue(demand(0, 0, 5))
        controller.service(0, due - timings.tRC)
        result = controller.service(0, due)
        assert result.worked
        assert controller.counts.refreshes == 1
        assert controller.counts.precharges == 1


class TestRfm:
    def test_rfm_after_threshold_acts(self, timings):
        controller = make_controller(
            timings, use_rfm=True, rfmth=2,
            mop_burst_lines=1, idle_close_cycles=None,
        )
        cycle = 0
        for row in (1, 2):
            controller.enqueue(demand(0, 0, row))
            controller.service(0, cycle)
            cycle = controller.state[0].busy_until + timings.tRC
        result = controller.service(0, cycle)
        assert controller.counts.rfms == 1


class TestMitigations:
    def test_para_mitigation_blocks_bank(self, timings):
        scheme = NoRpScheme([ParaTracker(p=1.0)], timings)
        controller = ChannelController(
            timings=timings, num_banks=1, scheme=scheme,
        )
        controller.enqueue(demand(0, 0, 5))
        first = controller.service(0, 0)
        result = controller.service(0, first.next_wake)
        assert result.worked  # the mitigation block
        assert controller.counts.mitigative_acts == VICTIMS_PER_MITIGATION

    def test_impress_p_records_eact_on_close(self, timings):
        tracker = AccountingTracker()
        scheme = ImpressPScheme([tracker], timings)
        controller = ChannelController(
            timings=timings, num_banks=1, scheme=scheme,
            mop_burst_lines=None, idle_close_cycles=None,
        )
        controller.enqueue(demand(0, 0, 5))
        controller.service(0, 0)
        controller.flush_open_rows(timings.tRAS + timings.tRC)
        assert tracker.recorded_for(5) > 1.0

    def test_hit_rate(self, timings):
        controller = make_controller(timings)
        assert controller.hit_rate() == 0.0
