"""Unit and property tests for the Unified Charge-Loss Model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.charge import (
    ALPHA_LONG,
    ALPHA_SAFE,
    ALPHA_SHORT,
    TPRE_TRC,
    TRAS_TRC,
    ConservativeLinearModel,
    fastest_attack_is_rowhammer,
    fit_clm,
    fit_power_law,
    rowhammer_tcl,
    unified_tcl,
)


class TestRowhammerModel:
    def test_eq1_linear(self):
        # Eq 1: K activations cause K units of charge loss.
        for k in (1, 10, 4000):
            assert rowhammer_tcl(k) == k

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            rowhammer_tcl(-1)


class TestConservativeLinearModel:
    def test_degenerates_to_rowhammer_at_tras(self):
        model = ConservativeLinearModel(alpha=ALPHA_SHORT)
        assert model.tcl_of_open_time(TRAS_TRC) == pytest.approx(1.0)

    def test_eq4_at_one_extra_trc(self):
        # Eq 4: tON = tRAS + tRC leaks 1 + 0.35 units.
        model = ConservativeLinearModel(alpha=0.35)
        assert model.tcl_of_open_time(TRAS_TRC + 1.0) == pytest.approx(1.35)

    def test_attack_time_includes_precharge(self):
        model = ConservativeLinearModel(alpha=0.35)
        # Total time of 1 tRC = tRAS open + tPRE: plain Rowhammer.
        assert model.tcl_of_attack_time(1.0) == pytest.approx(1.0)

    def test_rounds_to_flip_halves_threshold(self):
        model = ConservativeLinearModel(alpha=1.0)
        # A round leaking 2 units halves the observable threshold.
        ton = TRAS_TRC + 1.0
        assert model.rounds_to_flip(4000, ton) == pytest.approx(2000)

    def test_rejects_ton_below_tras(self):
        model = ConservativeLinearModel()
        with pytest.raises(ValueError):
            model.tcl_of_open_time(TRAS_TRC - 0.1)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            ConservativeLinearModel(alpha=-0.1)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=TRAS_TRC, max_value=1000.0),
    )
    def test_tcl_monotone_in_time_and_alpha(self, alpha, ton):
        model = ConservativeLinearModel(alpha=alpha)
        assert model.tcl_of_open_time(ton + 1.0) >= model.tcl_of_open_time(ton)
        stronger = ConservativeLinearModel(alpha=min(1.0, alpha + 0.1))
        assert stronger.tcl_of_open_time(ton) >= model.tcl_of_open_time(ton)


class TestUnifiedModel:
    def test_mixed_pattern_sums(self):
        # Two RH rounds plus one RP round of tRAS + 2 tRC at alpha 0.5.
        total = unified_tcl(
            [TRAS_TRC, TRAS_TRC, TRAS_TRC + 2.0], alpha=0.5
        )
        assert total == pytest.approx(1.0 + 1.0 + 2.0)

    def test_observation2_rowhammer_is_fastest(self):
        # Key observation 2: with alpha <= 1, pure RH maximizes damage.
        for alpha in (ALPHA_SHORT, ALPHA_LONG, ALPHA_SAFE):
            assert fastest_attack_is_rowhammer(alpha, duration_trc=100.0)

    def test_observation1_rp_slower_than_rh(self):
        # Even at alpha = 0.48, RP does under half RH's damage per time.
        model = ConservativeLinearModel(alpha=ALPHA_LONG)
        duration = 100.0
        rp = model.tcl_of_open_time(duration - TPRE_TRC)
        rh = duration  # one unit per tRC
        assert rp < rh / 2 + 1


class TestClmFit:
    def test_fit_covers_all_points(self):
        points = [(2.0, 1.2), (3.0, 1.5), (5.0, 1.8)]
        model = fit_clm(points)
        for total, tcl in points:
            assert model.tcl_of_attack_time(total) >= tcl - 1e-9

    def test_fit_is_tight(self):
        # The binding point determines alpha exactly.
        points = [(2.0, 1.35)]
        model = fit_clm(points)
        assert model.alpha == pytest.approx(0.35 / 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fit_clm([])

    def test_minimal_time_point_cannot_exceed_one(self):
        with pytest.raises(ValueError):
            fit_clm([(1.0, 1.5)])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.1, max_value=100.0),
                st.floats(min_value=1.0, max_value=50.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_fit_never_underestimates(self, points):
        model = fit_clm(points)
        for total, tcl in points:
            assert model.tcl_of_attack_time(total) >= tcl - 1e-6


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        truth_a, truth_b = 0.3, 0.8
        points = [
            (t, 1.0 + truth_a * (t - 1.0) ** truth_b)
            for t in (1.5, 2.0, 3.0, 5.0, 8.0)
        ]
        fit = fit_power_law(points)
        assert fit.a == pytest.approx(truth_a, rel=1e-6)
        assert fit.b == pytest.approx(truth_b, rel=1e-6)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([(2.0, 1.5)])

    def test_tcl_at_minimum_time_is_one(self):
        fit = fit_power_law([(2.0, 1.5), (4.0, 2.0)])
        assert fit.tcl_of_attack_time(1.0) == 1.0
