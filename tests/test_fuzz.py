"""Scenario fuzzer: deterministic discovery, shrinking, replayable repros.

The contracts pinned here:

* **Determinism** — one seed produces identical candidates, failure
  signatures, shrunk reproducers and store keys on every invocation.
* **No false positives** — a fixed-seed budget on the clean tree runs
  violation-free in both engines.
* **Planted fault found** — under the ``lax-tmro`` fault the fuzzer
  finds a ``tmro-deadline`` failure, shrinks it to a minimal
  reproducer, stores it content-addressed, and the stored blob replays
  to the same violation (re-injecting the fault from its recipe).
* **Recipe inverses** — sources and specs round-trip through their
  recipe dicts, including the new phase-changing attacker.
"""

import random

import pytest

from repro.results.store import ResultStore, content_key
from repro.scenarios.fuzz import (
    DEFAULT_FUZZ_REQUESTS,
    MIN_SHRINK_REQUESTS,
    bisect_divergence,
    check_scenario,
    fuzz,
    fuzz_repro_recipe,
    mutate_spec,
    random_spec,
    replay_reproducer,
    reproducer_spec,
)
from repro.scenarios.spec import ScenarioSpec, spec_from_recipe
from repro.security import faults
from repro.sim.config import DefenseConfig, SystemConfig
from repro.workloads.sources import (
    AttackerSource,
    IdleSource,
    PhasedAttackerSource,
    ProfileSource,
    is_attacker,
    source_from_recipe,
)

#: The fixed seed/budget pair the planted-fault tests (and the CI
#: fuzz-smoke job) rely on: candidate 3 of seed 0 is an ExPress dwell
#: scenario that trips ``tmro-deadline`` under the ``lax-tmro`` fault.
SMOKE_SEED = 0
SMOKE_BUDGET = 6


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faults.clear()
    yield
    faults.clear()


def _failure_fingerprint(report):
    return [
        (
            f.candidate,
            f.signature,
            f.spec.recipe()["cores"],
            f.n_requests,
            f.shrink_steps,
            f.violations,
            f.store_key,
        )
        for f in report.failures
    ]


class TestDeterminism:
    def test_two_invocations_are_identical(self, tmp_path):
        reports = []
        for invocation in range(2):
            store = ResultStore(tmp_path / f"store{invocation}")
            with faults.injected("lax-tmro"):
                reports.append(
                    fuzz(SMOKE_SEED, SMOKE_BUDGET, store=store)
                )
        first, second = reports
        assert _failure_fingerprint(first) == _failure_fingerprint(second)
        assert first.failures  # the planted fault was found both times

    def test_generation_is_seed_stable(self):
        a = random_spec(random.Random(42), 0)
        b = random_spec(random.Random(42), 0)
        assert a.recipe() == b.recipe()
        assert a.recipe() != random_spec(random.Random(43), 0).recipe()


class TestCleanTree:
    def test_fixed_seed_budget_is_violation_free(self):
        report = fuzz(SMOKE_SEED, SMOKE_BUDGET)
        assert report.ok, _failure_fingerprint(report)
        assert report.candidates == SMOKE_BUDGET

    def test_preset_scenario_checks_clean(self):
        spec = ScenarioSpec.colocated(
            "check_clean",
            "mcf",
            (AttackerSource(pattern="hammer", bank=2),),
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            defense=DefenseConfig(tracker="graphene", scheme="impress-p"),
        )
        outcome = check_scenario(spec, n_requests=100)
        assert outcome.ok
        assert outcome.divergence is None

    def test_engines_agree_so_bisection_finds_nothing(self):
        spec = random_spec(random.Random(1), 0)
        assert bisect_divergence(spec, n_requests=80) is None


class TestPlantedFault:
    def _fuzz_with_fault(self, store=None):
        with faults.injected("lax-tmro"):
            return fuzz(SMOKE_SEED, SMOKE_BUDGET, store=store)

    def test_fault_is_found_and_shrunk(self):
        report = self._fuzz_with_fault()
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.signature == ("tmro-deadline",)
        # Shrinking made real progress: fewer requests, idle victims.
        assert failure.n_requests < DEFAULT_FUZZ_REQUESTS
        assert failure.n_requests >= MIN_SHRINK_REQUESTS
        assert failure.shrink_steps
        assert any(
            isinstance(source, IdleSource) for source in failure.spec.cores
        )

    def test_reproducer_replays_to_same_violation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = self._fuzz_with_fault(store=store)
        key = report.failures[0].store_key
        assert key is not None
        assert store.get(key) is not None
        # Replay re-injects the fault recorded in the recipe — no fault
        # is active here, yet the violation reproduces exactly.
        spec, outcome = replay_reproducer(store, key)
        assert outcome.signature == ("tmro-deadline",)
        assert outcome.violations == report.failures[0].violations

    def test_reproducer_recipe_pins_the_fault(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = self._fuzz_with_fault(store=store)
        failure = report.failures[0]
        _, recipe = reproducer_spec(store, failure.store_key)
        assert recipe["faults"] == ["lax-tmro"]
        # The faulted reproducer and a clean run of the same spec are
        # distinct store identities.
        clean_recipe = fuzz_repro_recipe(
            failure.spec, failure.n_requests, failure.seed
        )
        assert clean_recipe["faults"] == []
        assert content_key(clean_recipe) != failure.store_key

    def test_shrunk_spec_is_emittable_as_preset(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = self._fuzz_with_fault(store=store)
        key = report.failures[0].store_key
        spec, _ = reproducer_spec(store, key, name="regression_1")
        assert spec.name == "regression_1"
        # The preset is a plain ScenarioSpec: hashable and re-runnable.
        hash(spec)
        assert spec.recipe() == report.failures[0].spec.recipe()

    def test_missing_key_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyError, match="no fuzz reproducer"):
            reproducer_spec(store, "deadbeefdeadbeef")


class TestPhasedAttacker:
    def _phased(self):
        return PhasedAttackerSource(
            phases=(
                AttackerSource(pattern="hammer", bank=1),
                AttackerSource(pattern="dwell", bank=3, rows=(8, 10)),
            ),
            phase_len=16,
        )

    def test_build_concatenates_and_truncates(self):
        source = self._phased()
        mapper = SystemConfig(n_cores=1, banks_per_channel=8).mapper()
        trace = source.build(0, 40, 0, mapper)
        assert len(trace) == 40
        # The first phase's requests hit bank 1, the second's bank 3.
        first = mapper.map_address(trace[0].address)
        second = mapper.map_address(trace[16].address)
        assert first.bank == 1
        assert second.bank == 3

    def test_is_attacker_and_validation(self):
        source = self._phased()
        assert is_attacker(source)
        with pytest.raises(ValueError, match="bank"):
            source.validate_for(channels=1, banks_per_channel=2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="at least one phase"):
            PhasedAttackerSource(phases=())
        with pytest.raises(ValueError, match="phase_len"):
            PhasedAttackerSource(
                phases=(AttackerSource(pattern="hammer"),), phase_len=0
            )
        with pytest.raises(ValueError, match="AttackerSource"):
            PhasedAttackerSource(phases=(IdleSource(),))


class TestRecipeInverses:
    def test_each_source_kind_round_trips(self):
        sources = [
            ProfileSource("mcf"),
            IdleSource(),
            AttackerSource(pattern="k_sided", bank=5, k=3, rows=(4, 6, 8)),
            PhasedAttackerSource(
                phases=(
                    AttackerSource(pattern="decoy", rows=(10, 12)),
                    AttackerSource(pattern="refresh_sync", burst_acts=16),
                ),
                phase_len=32,
            ),
        ]
        for source in sources:
            rebuilt = source_from_recipe(source.recipe())
            assert rebuilt == source
            assert rebuilt.recipe() == source.recipe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown source recipe"):
            source_from_recipe({"kind": "martian"})

    def test_spec_round_trips_through_recipe(self):
        rng = random.Random(9)
        for index in range(10):
            spec = random_spec(rng, index)
            for _ in range(2):
                spec = mutate_spec(rng, spec)
            rebuilt = spec_from_recipe(spec.recipe(), name=spec.name)
            assert rebuilt.recipe() == spec.recipe()
            assert rebuilt.sweep_point() == spec.sweep_point()

    def test_rate_mode_spec_round_trips(self):
        spec = ScenarioSpec.benign(
            "mcf", defense=DefenseConfig(tracker="para", scheme="impress-p",
                                         trh=100)
        )
        rebuilt = spec_from_recipe(spec.recipe())
        assert rebuilt.recipe() == spec.recipe()
        assert rebuilt.cores == "mcf"


class TestMutationGrammar:
    def test_mutations_keep_specs_valid(self):
        """Every mutated spec still validates and round-trips."""
        rng = random.Random(17)
        spec = random_spec(rng, 0)
        for _ in range(40):
            spec = mutate_spec(rng, spec)
            spec.system.validate_sources(spec.cores)
            assert spec_from_recipe(spec.recipe()).recipe() == spec.recipe()

    def test_mutations_explore_the_space(self):
        """The walk actually moves: topologies and defenses vary."""
        rng = random.Random(3)
        seen_defenses = set()
        seen_topologies = set()
        spec = random_spec(rng, 0)
        for _ in range(60):
            spec = mutate_spec(rng, spec)
            seen_defenses.add(
                None if spec.defense is None else spec.defense.tracker
            )
            seen_topologies.add(
                (spec.system.n_cores, spec.system.channels,
                 spec.system.banks_per_channel)
            )
        assert len(seen_defenses) > 2
        assert len(seen_topologies) > 2
