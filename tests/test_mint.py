"""Unit tests for the MINT single-entry in-DRAM tracker."""

import random

import pytest

from repro.trackers.mint import (
    MintTracker,
    mint_rfmth_for_threshold,
    mint_tolerated_threshold,
)


class TestThresholdModel:
    def test_rfm80_tolerates_1600(self):
        # Section III-B's figure of merit.
        assert mint_tolerated_threshold(80) == 1600.0

    def test_rfmth_for_threshold_roundtrip(self):
        assert mint_rfmth_for_threshold(1600.0) == 80
        assert mint_rfmth_for_threshold(800.0) == 40

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mint_tolerated_threshold(0)
        with pytest.raises(ValueError):
            mint_rfmth_for_threshold(0)


class TestSelection:
    def test_selected_slot_captured(self):
        tracker = MintTracker(rfmth=4, rng=random.Random(0))
        san = tracker.san
        rows = [100, 200, 300, 400]
        for row in rows:
            tracker.record(row)
        # The row occupying the SAN-th activation slot must be in SAR
        # (SAN is integral when fraction_bits is 0).
        assert tracker.sar == rows[int(san) - 1]

    def test_rfm_mitigates_and_redraws(self):
        tracker = MintTracker(rfmth=4, rng=random.Random(1))
        tracker.record(7)
        tracker.record(8)
        tracker.record(9)
        tracker.record(10)
        selected = tracker.on_rfm()
        assert selected in (7, 8, 9, 10)
        assert tracker.sar is None
        assert tracker.can == 0.0

    def test_rfm_with_no_capture_returns_none(self):
        tracker = MintTracker(rfmth=100, rng=random.Random(2))
        tracker.record(7)  # unlikely to hit a far-away SAN every time
        if tracker.sar is None:
            assert tracker.on_rfm() is None

    def test_uniform_selection_statistics(self):
        # Each of RFMTH slots should be selected ~uniformly.
        rng = random.Random(3)
        counts = {0: 0, 1: 0, 2: 0, 3: 0}
        for _ in range(4000):
            tracker = MintTracker(rfmth=4, rng=rng)
            for slot, row in enumerate((10, 11, 12, 13)):
                tracker.record(row)
            winner = tracker.on_rfm()
            counts[winner - 10] += 1
        for slot_count in counts.values():
            assert slot_count == pytest.approx(1000, rel=0.2)

    def test_eact_weight_increases_selection_share(self):
        # ImPress-P: an access worth EACT = 3 spans three slots, so it
        # is selected ~3x as often as a unit access.
        rng = random.Random(4)
        wins = {20: 0, 21: 0}
        for _ in range(4000):
            tracker = MintTracker(rfmth=4, fraction_bits=7, rng=rng)
            tracker.record(20, weight=3.0)
            tracker.record(21, weight=1.0)
            winner = tracker.on_rfm()
            if winner is not None:
                wins[winner] += 1
        assert wins[20] == pytest.approx(3 * wins[21], rel=0.25)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MintTracker(rfmth=0)
        with pytest.raises(ValueError):
            MintTracker(rfmth=4, fraction_bits=-1)
        tracker = MintTracker()
        with pytest.raises(ValueError):
            tracker.record(1, weight=-2.0)

    def test_reset(self):
        tracker = MintTracker(rfmth=4, rng=random.Random(5))
        tracker.record(7)
        tracker.reset()
        assert tracker.can == 0.0
        assert tracker.sar is None
