"""Unit tests for performance metrics and the energy model."""

import pytest

from repro.dram.commands import CommandCounts
from repro.sim.metrics import (
    attacker_act_rate,
    geomean,
    geomean_over_workloads,
    normalized_weighted_speedup,
    relative_acts,
    victim_slowdown,
)
from repro.sim.stats import EnergyBreakdown, SimResult, energy_of


def make_result(core_cycles, core_requests, core_demand_acts=(), **counts):
    return SimResult(
        elapsed_cycles=max(core_cycles),
        core_cycles=list(core_cycles),
        core_requests=list(core_requests),
        counts=CommandCounts(**counts),
        core_demand_acts=list(core_demand_acts),
    )


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_over_workloads(self):
        assert geomean_over_workloads({"a": 1.0, "b": 4.0}) == pytest.approx(2.0)


class TestWeightedSpeedup:
    def test_identical_runs_give_one(self):
        result = make_result([100, 100], [50, 50])
        assert normalized_weighted_speedup(result, result) == 1.0

    def test_half_speed_gives_half(self):
        base = make_result([100, 100], [50, 50])
        slow = make_result([200, 200], [50, 50])
        assert normalized_weighted_speedup(slow, base) == pytest.approx(0.5)

    def test_mismatched_cores_rejected(self):
        base = make_result([100], [50])
        other = make_result([100, 100], [50, 50])
        with pytest.raises(ValueError):
            normalized_weighted_speedup(other, base)


class TestRelativeActs:
    def test_fig14_normalization(self):
        base = make_result([100], [50], demand_acts=100)
        result = make_result([100], [50], demand_acts=120, mitigative_acts=30)
        ratios = relative_acts(result, base)
        assert ratios["demand"] == pytest.approx(1.2)
        assert ratios["mitigative"] == pytest.approx(0.3)
        assert ratios["total"] == pytest.approx(1.5)

    def test_zero_baseline_rejected(self):
        base = make_result([100], [50])
        with pytest.raises(ValueError):
            relative_acts(base, base)


class TestVictimSlowdown:
    def test_unaffected_victims_give_one(self):
        run = make_result([100, 100], [50, 50])
        assert victim_slowdown(run, run, [1]) == pytest.approx(1.0)

    def test_half_speed_victim_gives_two(self):
        baseline = make_result([100, 100], [50, 50])
        attacked = make_result([200, 100], [50, 50])
        assert victim_slowdown(attacked, baseline, [1]) == pytest.approx(2.0)

    def test_attacker_cores_are_excluded(self):
        baseline = make_result([100, 100], [50, 50])
        # Core 1 (the attacker) collapses, core 0 is unaffected: the
        # metric must ignore the attacker's own slowdown.
        attacked = make_result([100, 800], [50, 50])
        assert victim_slowdown(attacked, baseline, [1]) == pytest.approx(1.0)

    def test_stalled_victim_is_infinite(self):
        baseline = make_result([100, 100], [50, 50])
        attacked = make_result([0, 100], [0, 50])
        assert victim_slowdown(attacked, baseline, [1]) == float("inf")

    def test_needs_victims_and_matching_cores(self):
        run = make_result([100, 100], [50, 50])
        with pytest.raises(ValueError):
            victim_slowdown(run, run, [0, 1])
        other = make_result([100], [50])
        with pytest.raises(ValueError):
            victim_slowdown(run, other, [1])


class TestAttackerActRate:
    def test_rate_per_cycle(self):
        run = make_result([1000, 1000], [50, 50],
                          core_demand_acts=[10, 200])
        assert attacker_act_rate(run, [1]) == pytest.approx(0.2)

    def test_sums_over_attackers(self):
        run = make_result([1000, 1000, 1000], [50, 50, 50],
                          core_demand_acts=[10, 100, 150])
        assert attacker_act_rate(run, [1, 2]) == pytest.approx(0.25)

    def test_requires_attribution(self):
        run = make_result([1000, 1000], [50, 50])
        with pytest.raises(ValueError):
            attacker_act_rate(run, [1])

    def test_core_act_rates_view(self):
        run = make_result([1000, 500], [50, 50],
                          core_demand_acts=[100, 300])
        assert run.core_act_rates() == [
            pytest.approx(0.1), pytest.approx(0.3)
        ]

    def test_core_act_rates_without_attribution(self):
        run = make_result([1000, 500], [50, 50])
        assert run.core_act_rates() == [0.0, 0.0]


class TestEnergyModel:
    def test_components_sum(self):
        counts = CommandCounts(demand_acts=100, reads=200, refreshes=2)
        breakdown = energy_of(counts, elapsed_cycles=1000)
        assert breakdown.total == pytest.approx(
            breakdown.activation
            + breakdown.column
            + breakdown.background
            + breakdown.refresh
        )

    def test_activation_share(self):
        breakdown = EnergyBreakdown(
            activation=11.0, column=50.0, background=37.0, refresh=2.0
        )
        assert breakdown.activation_share == pytest.approx(0.11)

    def test_more_acts_more_energy(self):
        few = energy_of(CommandCounts(demand_acts=10, reads=100), 1000)
        many = energy_of(CommandCounts(demand_acts=50, reads=100), 1000)
        assert many.total > few.total

    def test_sim_result_summary(self):
        result = make_result([10], [5], demand_acts=3, reads=5)
        summary = result.summary()
        assert summary["demand_acts"] == 3.0
        assert "energy" in summary

    def test_core_rates(self):
        result = make_result([100, 200], [50, 50])
        assert result.core_rates() == [0.5, 0.25]

    def test_hit_rate_empty(self):
        assert make_result([1], [0]).hit_rate == 0.0
