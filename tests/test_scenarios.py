"""Tests for the scenario subsystem (spec, registry, grid, runner)."""

import dataclasses
import json

import pytest

from repro.experiments.common import SweepRunner
from repro.scenarios import (
    SCENARIOS,
    ScenarioGrid,
    ScenarioSpec,
    get_scenario,
    is_scenario,
    run_scenario,
    run_scenario_cached,
    scenario_names,
)
from repro.results import store_for
from repro.scenarios.run import ScenarioReport, scenario_config_hash
from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.stats import SimResult
from repro.sim.system import simulate_workload
from repro.workloads.sources import (
    AttackerSource,
    IdleSource,
    ProfileSource,
)

SMALL = SystemConfig(n_cores=2, banks_per_channel=8)
DEFENSE = DefenseConfig(tracker="graphene", scheme="impress-p")
REQUESTS = 120


def small_colocated(defense=DEFENSE):
    return ScenarioSpec.colocated(
        "small", "mcf",
        attackers=(AttackerSource("hammer", bank=2, rows=(50, 52)),),
        system=SMALL, defense=defense,
    )


class TestScenarioSpec:
    def test_hashable_value(self):
        a = small_colocated()
        b = small_colocated()
        assert a == b
        assert hash(a) == hash(b)

    def test_named_workload_validated(self):
        with pytest.raises(KeyError):
            ScenarioSpec(name="x", cores="not_a_workload", system=SMALL)

    def test_source_count_must_match_cores(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", cores=(ProfileSource("mcf"),), system=SMALL
            )

    def test_attacker_bank_must_exist(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x",
                cores=(ProfileSource("mcf"),
                       AttackerSource("hammer", bank=64)),
                system=SMALL,
            )

    def test_colocated_needs_a_victim(self):
        with pytest.raises(ValueError):
            ScenarioSpec.colocated(
                "x", "mcf",
                attackers=(AttackerSource("hammer", bank=0),
                           AttackerSource("hammer", bank=1)),
                system=SMALL,
            )

    def test_attacker_cores_and_benign(self):
        spec = small_colocated()
        assert spec.attacker_cores() == (1,)
        assert not spec.is_benign()
        assert ScenarioSpec.benign("mcf", system=SMALL).is_benign()

    def test_sweep_point_canonicalizes_named_workloads(self):
        spec = ScenarioSpec.benign(
            "mcf", system=SMALL, defense=DEFENSE, tmro_ns=96.0
        )
        assert spec.sweep_point() == ("mcf", DEFENSE, 96.0)

    def test_baseline_idles_attackers_only(self):
        spec = small_colocated()
        baseline = spec.baseline()
        assert baseline.cores[0] == ProfileSource("mcf")
        assert baseline.cores[1] == IdleSource()
        assert baseline.defense == spec.defense
        assert baseline.attacker_cores() == ()

    def test_benign_baseline_is_itself(self):
        spec = ScenarioSpec.benign("mcf", system=SMALL)
        assert spec.baseline() is spec

    def test_with_defense_replaces_defense_point(self):
        other = DefenseConfig(tracker="para", scheme="no-rp")
        spec = small_colocated().with_defense(other, tmro_ns=96.0)
        assert spec.defense == other
        assert spec.tmro_ns == 96.0
        assert spec.cores == small_colocated().cores

    def test_core_summary_groups_runs(self):
        assert small_colocated().core_summary() == "mcf + hammer@b2"
        spec = ScenarioSpec.colocated(
            "x", "mcf",
            attackers=(AttackerSource("hammer", bank=2),),
            system=SystemConfig(n_cores=4, banks_per_channel=8),
        )
        assert spec.core_summary() == "3x mcf + hammer@b2"

    def test_mix_splits_victims_like_rate_mode(self):
        spec = ScenarioSpec.colocated(
            "x", "add_copy",
            attackers=(AttackerSource("hammer", bank=2),),
            system=SystemConfig(n_cores=8, banks_per_channel=8),
        )
        profiles = [s.profile for s in spec.cores[:-1]]
        # Rate mode over 8 cores: 4x add then 4x copy; the attacker
        # displaces the last copy core.
        assert profiles == ["add"] * 4 + ["copy"] * 3


class TestRecipeProperties:
    """Seeded property tests over randomly generated ScenarioSpecs.

    The fuzzer's generator doubles as the property-test generator: its
    specs cover phased attackers, mixed topologies and every defense
    kind, so these four invariants of :meth:`ScenarioSpec.recipe` hold
    across the whole reachable spec space, not just the presets.
    """

    def _random_specs(self, seed, count=12, mutations=2):
        import random as random_module

        from repro.scenarios.fuzz import mutate_spec, random_spec

        rng = random_module.Random(seed)
        specs = []
        for index in range(count):
            spec = random_spec(rng, index)
            for _ in range(mutations):
                spec = mutate_spec(rng, spec)
            specs.append(spec)
        return specs

    def test_recipe_is_stable_per_spec(self):
        for spec in self._random_specs(seed=101):
            assert spec.recipe() == spec.recipe()
            # Regeneration from the same seed produces the same recipe.
        first = [s.recipe() for s in self._random_specs(seed=7)]
        second = [s.recipe() for s in self._random_specs(seed=7)]
        assert first == second

    def test_recipe_round_trips(self):
        from repro.scenarios import spec_from_recipe

        for spec in self._random_specs(seed=202):
            rebuilt = spec_from_recipe(spec.recipe(), name=spec.name)
            assert rebuilt.recipe() == spec.recipe()
            assert rebuilt.cores == spec.cores
            assert rebuilt.system == spec.system
            assert rebuilt.defense == spec.defense

    def test_recipe_is_rename_invariant(self):
        for spec in self._random_specs(seed=303, count=8):
            renamed = dataclasses.replace(
                spec, name="renamed", description="something else"
            )
            assert renamed.recipe() == spec.recipe()
            assert (
                scenario_config_hash(renamed, REQUESTS, 0)
                == scenario_config_hash(spec, REQUESTS, 0)
            )

    def test_recipe_key_is_canonical_json_deterministic(self):
        from repro.results.store import canonical_json, content_key

        for spec in self._random_specs(seed=404, count=8):
            recipe = spec.recipe()
            # The recipe is strict JSON data: serializing and reloading
            # it changes nothing, so the content key is reproducible
            # from the stored blob alone.
            reloaded = json.loads(canonical_json(recipe))
            assert reloaded == recipe
            assert content_key(reloaded) == content_key(recipe)
            # Key order never matters.
            shuffled = dict(reversed(list(recipe.items())))
            assert content_key(shuffled) == content_key(recipe)


class TestBenignEquivalence:
    """A benign ScenarioSpec is bit-identical to the legacy path."""

    def test_explicit_sources_match_legacy_single_workload(self):
        legacy = simulate_workload(
            "mcf", DEFENSE, SMALL, n_requests_per_core=REQUESTS
        )
        spec = ScenarioSpec(
            name="explicit",
            cores=(ProfileSource("mcf"), ProfileSource("mcf")),
            system=SMALL,
            defense=DEFENSE,
        )
        scenario = simulate_workload(
            spec.cores, DEFENSE, SMALL, n_requests_per_core=REQUESTS
        )
        assert dataclasses.asdict(scenario) == dataclasses.asdict(legacy)

    def test_mix_sources_match_legacy_mix(self):
        legacy = simulate_workload(
            "add_copy", None, SMALL, n_requests_per_core=REQUESTS
        )
        scenario = simulate_workload(
            (ProfileSource("add"), ProfileSource("copy")),
            None, SMALL, n_requests_per_core=REQUESTS,
        )
        assert dataclasses.asdict(scenario) == dataclasses.asdict(legacy)

    def test_named_spec_shares_cache_entry_with_legacy_run(self):
        runner = SweepRunner(system=SMALL, n_requests=REQUESTS)
        spec = ScenarioSpec.benign("mcf", system=SMALL, defense=DEFENSE)
        via_spec = runner.run_many([spec])[0]
        assert runner.run("mcf", DEFENSE) is via_spec  # cache hit


class TestRegistry:
    def test_names_and_lookup(self):
        names = scenario_names()
        assert "colocated_hammer_mcf" in names
        for name in names:
            assert is_scenario(name)
            assert get_scenario(name).name == name
        assert not is_scenario("mcf")

    def test_unknown_scenario_raises_with_choices(self):
        with pytest.raises(KeyError, match="colocated_hammer_mcf"):
            get_scenario("nope")

    def test_presets_cover_the_attack_families(self):
        patterns = set()
        for spec in SCENARIOS.values():
            sources = spec.sources() or ()
            patterns.update(
                source.pattern for source in sources
                if isinstance(source, AttackerSource)
            )
        assert patterns >= {
            "hammer", "k_sided", "dwell", "decoy", "refresh_sync"
        }

    def test_presets_are_simulable_values(self):
        for spec in SCENARIOS.values():
            hash(spec)
            spec.baseline()
            workload, defense, tmro = spec.sweep_point()
            assert isinstance(workload, (str, tuple))

    def test_multi_attacker_preset_has_four_attackers(self):
        spec = get_scenario("multi_attacker_saturation")
        assert len(spec.attacker_cores()) == 4


class TestScenarioGrid:
    def test_expansion_is_the_cross_product(self):
        grid = ScenarioGrid.cross(
            workloads=("mcf", "add"),
            defenses=(None, DEFENSE),
            tmros_ns=(None, 96.0),
            system=SMALL,
        )
        assert len(grid) == 8
        points = grid.sweep_points()
        assert len(points) == 8
        assert ("mcf", DEFENSE, 96.0) in points
        assert ("add", None, None) in points

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            ScenarioGrid(workloads=())
        with pytest.raises(ValueError):
            ScenarioGrid(workloads=("mcf",), defense_points=())

    def test_grid_specs_feed_run_many_directly(self):
        runner = SweepRunner(system=SMALL, n_requests=REQUESTS)
        spec = small_colocated()
        grid = ScenarioGrid(
            workloads=("mcf", spec.cores),
            defense_points=((None, None), (DEFENSE, None)),
            system=SMALL,
            name="t",
        )
        results = runner.run_many(grid.expand())
        assert len(results) == 4
        assert runner.run("mcf", None) is results[0]

    def test_parallel_equals_serial_for_scenario_grids(self):
        spec = small_colocated()
        grid = ScenarioGrid(
            workloads=("mcf", spec.cores),
            defense_points=((None, None), (DEFENSE, None)),
            system=SMALL,
            name="t",
        )
        serial = SweepRunner(system=SMALL, n_requests=REQUESTS)
        serial_results = serial.run_many(grid.expand(), jobs=1)
        parallel = SweepRunner(system=SMALL, n_requests=REQUESTS)
        try:
            parallel_results = parallel.run_many(grid.expand(), jobs=2)
        finally:
            parallel.close_pool()
        for fast, slow in zip(parallel_results, serial_results):
            assert dataclasses.asdict(fast) == dataclasses.asdict(slow)


class TestRunScenario:
    def test_report_carries_security_metrics(self):
        report = run_scenario(small_colocated(), n_requests=REQUESTS)
        assert report.victim_slowdown is not None
        assert report.victim_slowdown > 0.5
        assert report.attacker_act_rate > 0
        assert report.attacker_acts_per_sec > 0
        payload = report.to_json()
        assert payload["attacker_cores"] == [1]
        assert payload["metrics"]["victim_slowdown"] == (
            report.victim_slowdown
        )

    def test_benign_scenario_reports_no_attack_metrics(self):
        report = run_scenario(
            ScenarioSpec.benign("mcf", system=SMALL), n_requests=REQUESTS
        )
        assert report.victim_slowdown is None
        assert report.attacker_act_rate is None

    def test_runner_topology_must_match(self):
        runner = SweepRunner(system=SystemConfig(n_cores=4))
        with pytest.raises(ValueError):
            run_scenario(small_colocated(), runner=runner)

    def test_preset_runs_by_name(self):
        report = run_scenario(
            "colocated_hammer_mcf", n_requests=60, jobs=1
        )
        assert report.spec.name == "colocated_hammer_mcf"
        assert report.victim_slowdown is not None

    def test_artifact_cache_roundtrip(self, tmp_path):
        spec = small_colocated()
        payload, path, cached = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS
        )
        assert not cached
        assert path.is_file()
        again, path2, cached2 = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS
        )
        assert cached2 and path2 == path
        assert again == payload
        # A different recipe misses; force re-simulates.
        _, _, cached3 = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS + 1
        )
        assert not cached3
        _, _, cached4 = run_scenario_cached(
            spec, tmp_path, n_requests=REQUESTS + 1, force=True
        )
        assert not cached4

    def test_config_hash_tracks_the_recipe(self):
        spec = small_colocated()
        base = scenario_config_hash(spec, 100, 0)
        assert scenario_config_hash(spec, 100, 0) == base
        assert scenario_config_hash(spec, 200, 0) != base
        assert scenario_config_hash(spec, 100, 1) != base
        other = spec.with_defense(None)
        assert scenario_config_hash(other, 100, 0) != base

    def test_config_hash_ignores_name_and_description(self):
        """Names are index aliases, not physics: renaming a preset must
        not orphan its artifacts (and baseline legs must dedup across
        differently-named scenarios)."""
        spec = small_colocated()
        renamed = dataclasses.replace(
            spec, name="renamed", description="cosmetic"
        )
        assert scenario_config_hash(renamed, 100, 0) == (
            scenario_config_hash(spec, 100, 0)
        )

    def test_config_hash_golden(self):
        """The hashing contract, pinned.

        If this fails, the canonical recipe form changed and every
        stored artifact/cache entry is invalidated.  That can be a
        legitimate consequence (e.g. a new field on SystemConfig or
        AttackerSource now rightly enters the recipe) — update the
        golden value then — but it must never happen as a silent side
        effect of a refactor; ``repr``-derived keys did exactly that.
        """
        spec = ScenarioSpec.colocated(
            "golden", "mcf",
            attackers=(AttackerSource("hammer", bank=2, rows=(50, 52)),),
            system=SystemConfig(n_cores=2, banks_per_channel=8),
            defense=DefenseConfig(tracker="graphene", scheme="impress-p"),
        )
        assert scenario_config_hash(spec, 100, 0) == "9b8483b9ce09692e"

    def test_artifact_is_valid_json_with_hash(self, tmp_path):
        _, path, _ = run_scenario_cached(
            small_colocated(), tmp_path, n_requests=REQUESTS
        )
        blob = json.loads(path.read_text())
        payload = blob["payload"]
        assert blob["key"] == payload["config_hash"] == path.stem
        assert payload["scenario"] == "small"
        assert payload["metrics"]["attacker_act_rate_per_cycle"] > 0
        assert payload["stalled_victims"] == []
        index = json.loads((tmp_path / "store" / "index.json").read_text())
        names = {entry["name"] for entry in index["entries"]}
        assert names == {"small", "small@baseline"}

    def test_stalled_victim_serializes_as_null_with_flag(self):
        """An infinite slowdown must never reach JSON as ``Infinity``."""
        spec = small_colocated()
        stalled = SimResult(
            elapsed_cycles=1000, core_cycles=[1000, 1000],
            core_requests=[0, 80], core_demand_acts=[0, 40],
        )
        baseline = SimResult(
            elapsed_cycles=1000, core_cycles=[500, 0],
            core_requests=[80, 0], core_demand_acts=[40, 0],
        )
        report = ScenarioReport(
            spec=spec, result=stalled, baseline=baseline,
            n_requests=80, seed=0,
        )
        assert report.victim_slowdown == float("inf")
        assert report.stalled_victims == (0,)
        payload = report.to_json()
        assert payload["metrics"]["victim_slowdown"] is None
        assert payload["stalled_victims"] == [0]
        text = json.dumps(payload, allow_nan=False)  # strict JSON
        assert "Infinity" not in text

    def test_store_rejects_non_finite_metrics(self, tmp_path):
        store = store_for(tmp_path)
        with pytest.raises(ValueError, match="non-finite"):
            store.put(
                {"kind": "scenario-run", "x": 1},
                {"metrics": {"victim_slowdown": float("inf")}},
            )
