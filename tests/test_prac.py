"""Unit tests for PRAC (per-row activation counting, Section VI-F)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.mitigation import ImpressPScheme
from repro.dram.timing import default_cycle_timings
from repro.security.verifier import replay_pattern
from repro.trackers.base import AccountingTracker
from repro.trackers.prac import DEFAULT_ROWS_PER_BANK, PracTracker


class TestAlertFlow:
    def test_alert_at_threshold(self):
        tracker = PracTracker(alert_threshold=3, rows_per_bank=16)
        assert tracker.record(5) == []
        assert tracker.record(5) == []
        assert tracker.record(5) == [5]
        assert tracker.alerts == 1

    def test_counter_resets_after_alert(self):
        tracker = PracTracker(alert_threshold=2, rows_per_bank=16)
        tracker.record(5)
        tracker.record(5)
        assert tracker.count_for(5) == 0.0

    def test_every_row_has_its_own_counter(self):
        # PRAC's defining property: no Misra-Gries eviction, every row
        # is tracked exactly no matter how many distinct rows are hit.
        tracker = PracTracker(alert_threshold=1000, rows_per_bank=4096)
        for row in range(4096):
            tracker.record(row)
        assert all(tracker.count_for(row) == 1.0 for row in range(4096))

    def test_rejects_out_of_range_row(self):
        tracker = PracTracker(alert_threshold=2, rows_per_bank=4)
        with pytest.raises(ValueError):
            tracker.record(4)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PracTracker(alert_threshold=0)
        with pytest.raises(ValueError):
            PracTracker(alert_threshold=2, rows_per_bank=0)
        with pytest.raises(ValueError):
            PracTracker(alert_threshold=2, fraction_bits=-1)

    def test_reset(self):
        tracker = PracTracker(alert_threshold=5, rows_per_bank=16)
        tracker.record(3)
        tracker.reset()
        assert tracker.count_for(3) == 0.0


class TestImpressOnPrac:
    def test_fractional_eact_counts(self):
        tracker = PracTracker(
            alert_threshold=3, rows_per_bank=16, fraction_bits=7
        )
        assert tracker.record(5, weight=1.5) == []
        assert tracker.record(5, weight=1.5) == [5]

    def test_impress_p_scheme_drives_prac(self):
        timings = default_cycle_timings()
        tracker = PracTracker(
            alert_threshold=4, rows_per_bank=2048, fraction_bits=7
        )
        scheme = ImpressPScheme([tracker], timings)
        # Two accesses each open for tRAS + tRC (EACT = 2) reach the
        # alert threshold of 4.
        ton = timings.tRAS + timings.tRC
        scheme.on_activate(0, 9, 0)
        assert scheme.on_row_closed(0, 9, 0, ton) == []
        scheme.on_activate(0, 9, 10_000)
        assert scheme.on_row_closed(0, 9, 10_000, 10_000 + ton) == [9]

    def test_storage_widens_by_fraction_bits(self):
        base = PracTracker(alert_threshold=1000, fraction_bits=0)
        precise = PracTracker(alert_threshold=1000, fraction_bits=7)
        assert (
            precise.storage_bits_per_row()
            == base.storage_bits_per_row() + 7
        )

    def test_storage_kib_scale(self):
        tracker = PracTracker(alert_threshold=1000)
        # 64K rows x 10 bits = 80 KiB per bank.
        assert tracker.rows_per_bank == DEFAULT_ROWS_PER_BANK
        assert tracker.storage_kib_per_bank() == pytest.approx(80.0)

    @given(st.floats(min_value=1.0, max_value=8.0))
    def test_prac_never_undercounts_vs_accounting(self, eact):
        # With full fractional precision PRAC's counter matches the
        # exact accounting within one quantum per access.
        prac = PracTracker(
            alert_threshold=10_000, rows_per_bank=16, fraction_bits=7
        )
        exact = AccountingTracker()
        for _ in range(10):
            prac.record(3, weight=eact)
            exact.record(3, weight=eact)
        assert prac.count_for(3) >= exact.recorded_for(3) - 10 / 128


class TestPracSecurity:
    def test_prac_impress_p_keeps_threshold(self):
        # The Fig-10 decoy gains nothing against PRAC + ImPress-P.
        from repro.workloads.attacks import decoy_pattern_accesses

        timings = default_cycle_timings()
        tracker = AccountingTracker()
        scheme = ImpressPScheme([tracker], timings, fraction_bits=7)
        accesses = decoy_pattern_accesses(7, 8, 32, timings)
        result = replay_pattern(scheme, accesses, 7, 1.0, timings)
        assert result.ratio <= 1.0 + 1e-9
