"""Unit tests for refresh scheduling and postponement."""

import pytest

from repro.dram.refresh import (
    DDR4_MAX_POSTPONED,
    DDR5_MAX_POSTPONED,
    RefreshScheduler,
)


class TestBasicSchedule:
    def test_not_due_before_trefi(self, timings):
        scheduler = RefreshScheduler(timings)
        assert not scheduler.due(timings.tREFI - 1)
        assert scheduler.due(timings.tREFI)

    def test_issue_advances(self, timings):
        scheduler = RefreshScheduler(timings)
        scheduler.issue(timings.tREFI)
        assert not scheduler.due(timings.tREFI + 1)
        assert scheduler.due(2 * timings.tREFI)
        assert scheduler.issued == 1

    def test_phase_offset(self, timings):
        scheduler = RefreshScheduler(timings, phase_offset=100)
        assert scheduler.next_due == timings.tREFI + 100


class TestPostponement:
    def test_defer_consumes_credit(self, timings):
        scheduler = RefreshScheduler(timings, postpone=True)
        cycle = timings.tREFI
        for _ in range(DDR5_MAX_POSTPONED):
            assert scheduler.pending(cycle)
            assert not scheduler.due(cycle)
            scheduler.defer()
            cycle += timings.tREFI
        # Budget exhausted: now the refresh is mandatory.
        assert scheduler.due(cycle)

    def test_defer_without_credit_raises(self, timings):
        scheduler = RefreshScheduler(timings, postpone=True, max_postponed=0)
        with pytest.raises(RuntimeError):
            scheduler.defer()

    def test_issue_repays_postponement(self, timings):
        scheduler = RefreshScheduler(timings, postpone=True)
        scheduler.defer()
        assert scheduler.postponed == 1
        scheduler.issue(2 * timings.tREFI)
        assert scheduler.postponed == 0


class TestMaxRowOpen:
    def test_without_postponement_one_trefi(self, timings):
        scheduler = RefreshScheduler(timings)
        assert scheduler.max_row_open_cycles() == timings.tREFI

    def test_ddr5_postponement_is_5x(self, timings):
        scheduler = RefreshScheduler(timings, postpone=True)
        assert scheduler.max_row_open_cycles() == 5 * timings.tREFI

    def test_ddr4_postponement_is_9x(self, timings):
        scheduler = RefreshScheduler(
            timings, postpone=True, max_postponed=DDR4_MAX_POSTPONED
        )
        assert scheduler.max_row_open_cycles() == 9 * timings.tREFI
