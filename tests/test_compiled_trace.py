"""Compiled traces must reproduce per-request map_address exactly."""

import pytest

from repro.dram.address import MopAddressMapper
from repro.workloads.compiled import (
    CACHE_MAX_ENTRIES,
    clear_compiled_cache,
    compile_trace,
    compiled_cache_stats,
    compiled_rate_mode_traces,
    mapper_key,
)
from repro.workloads.profiles import ALL_WORKLOAD_NAMES
from repro.workloads.synthetic import rate_mode_traces
from repro.workloads.trace import Trace, TraceRequest

#: The paper's Table II geometry and a deliberately different one, so a
#: compilation bug tied to any single parameter cannot hide.
MAPPERS = [
    MopAddressMapper(),
    MopAddressMapper(channels=3, banks_per_channel=8, lines_per_row_group=4),
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compiled_cache()
    yield
    clear_compiled_cache()


class TestMappingEquivalence:
    @pytest.mark.parametrize("workload", ALL_WORKLOAD_NAMES)
    @pytest.mark.parametrize("mapper", MAPPERS, ids=["table2", "alt"])
    def test_matches_map_address_for_every_profile(self, workload, mapper):
        for trace in rate_mode_traces(workload, 2, 64, seed=5):
            compiled = compile_trace(trace, mapper)
            assert compiled.length == len(trace)
            for i, request in enumerate(trace):
                mapped = mapper.map_address(request.address)
                assert compiled.channels[i] == mapped.channel
                assert compiled.banks[i] == mapped.bank
                assert compiled.rows[i] == mapped.row
                assert compiled.columns[i] == mapped.column
                assert compiled.flat_banks[i] == (
                    mapped.channel * mapper.banks_per_channel + mapped.bank
                )
                assert compiled.is_write[i] == request.is_write
                assert compiled.gaps[i] == request.gap_cycles

    @pytest.mark.parametrize("mapper", MAPPERS, ids=["table2", "alt"])
    def test_extreme_addresses(self, mapper):
        trace = Trace(
            TraceRequest(address=address)
            for address in (0, 63, 64, 1 << 20, (1 << 34) + 8192)
        )
        compiled = compile_trace(trace, mapper)
        for i, request in enumerate(trace):
            mapped = mapper.map_address(request.address)
            assert (
                compiled.channels[i],
                compiled.banks[i],
                compiled.rows[i],
                compiled.columns[i],
            ) == (mapped.channel, mapped.bank, mapped.row, mapped.column)

    def test_key_records_geometry(self):
        compiled = compile_trace(Trace([TraceRequest(0)]), MAPPERS[1])
        assert compiled.key == mapper_key(MAPPERS[1])
        assert compiled.key != mapper_key(MAPPERS[0])


class TestCompiledCache:
    def test_hit_returns_same_objects(self):
        mapper = MopAddressMapper()
        first = compiled_rate_mode_traces("mcf", 2, 50, 0, mapper)
        second = compiled_rate_mode_traces("mcf", 2, 50, 0, mapper)
        assert first is second
        stats = compiled_cache_stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1

    def test_distinct_recipes_not_conflated(self):
        mapper = MopAddressMapper()
        base = compiled_rate_mode_traces("mcf", 2, 50, 0, mapper)
        assert compiled_rate_mode_traces("mcf", 2, 50, 1, mapper) is not base
        assert compiled_rate_mode_traces("mcf", 2, 60, 0, mapper) is not base
        assert compiled_rate_mode_traces("gcc", 2, 50, 0, mapper) is not base
        other_mapper = MAPPERS[1]
        assert (
            compiled_rate_mode_traces("mcf", 2, 50, 0, other_mapper)
            is not base
        )

    def test_cached_equals_fresh_generation(self):
        mapper = MopAddressMapper()
        compiled_rate_mode_traces("add", 2, 40, 3, mapper)  # populate
        cached = compiled_rate_mode_traces("add", 2, 40, 3, mapper)
        fresh = rate_mode_traces("add", 2, 40, 3)
        for compiled, trace in zip(cached, fresh):
            assert [r.address for r in compiled.trace] == [
                r.address for r in trace
            ]

    def test_eviction_is_bounded(self):
        mapper = MopAddressMapper()
        for seed in range(CACHE_MAX_ENTRIES + 5):
            compiled_rate_mode_traces("mcf", 1, 4, seed, mapper)
        assert compiled_cache_stats().size == CACHE_MAX_ENTRIES
