"""Serve-daemon chaos: real SIGKILLs, restarts, and graceful drains.

These spawn actual ``repro serve`` subprocesses (which is why they
cannot live in ``test_serve.py`` — ``os._exit`` would take pytest down
with it) and assert the acceptance criteria of the serving layer:

* ``serve-kill-mid-request``: the daemon dies (exit 45) between the
  journal write and any execution; the journal holds exactly the one
  accepted key and the store holds no blob; a restarted daemon replays
  the entry to completion with a result blob *byte-identical* to a
  serial run, and then drains clean on SIGTERM (exit 0, empty journal).
* ``sigkill-after-accept``: every request is 202-accepted and the
  daemon is SIGKILLed mid-flight; restart + replay completes all keys.
* graceful drain: SIGTERM with a request in flight exits 0 with an
  empty in-flight set and the request answered (blob durable) — an
  accepted request is never silently dropped.
"""

import signal
import time

import pytest

from repro.distrib.coordinator import run_serial_sweep
from repro.distrib.worker import sweep_task_recipe
from repro.results.store import content_key, store_for
from repro.scenarios.spec import ScenarioSpec
from repro.serve.chaos import (
    ServeClient,
    run_serve_chaos_case,
    spawn_daemon,
    wait_for_endpoint,
)
from repro.serve.engine import KILL_MID_REQUEST_EXIT
from repro.serve.journal import RequestJournal
from repro.serve.server import serve_dir
from repro.sim.config import SystemConfig

pytestmark = pytest.mark.slow

#: Sized so a request takes long enough (~1s) to be killed mid-flight
#: but the whole file stays in tens of seconds.
SERVE_CHAOS_REQUESTS = 20_000


def chaos_recipes():
    system = SystemConfig(n_cores=1, banks_per_channel=8)
    specs = [
        ScenarioSpec.benign("mcf", system=system),
        ScenarioSpec.benign("add_copy", system=system),
    ]
    return [
        sweep_task_recipe(spec.recipe(), SERVE_CHAOS_REQUESTS, 0)
        for spec in specs
    ]


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """The serial run every serve chaos case compares bytes against."""
    store = store_for(tmp_path_factory.mktemp("serial"))
    run_serial_sweep(chaos_recipes(), store)
    return store


class TestServeChaos:
    def test_kill_mid_request_replays_byte_identical(
        self, tmp_path, serial_reference
    ):
        report = run_serve_chaos_case(
            tmp_path, chaos_recipes(),
            fault="serve-kill-mid-request",
            timeout_s=120.0,
            serial_store=serial_reference,
        )
        assert report.ok, "\n".join(report.summary_lines())
        assert report.first_exit == KILL_MID_REQUEST_EXIT
        # The kill window's signature: the request exists only in the
        # journal — exactly one entry, zero result blobs.
        assert report.journal_depth_after_kill == 1
        assert report.blobs_present_after_kill == 0
        assert report.drain_exit == 0
        assert report.journal_depth_after_drain == 0
        assert not report.mismatched_keys

    def test_sigkill_after_accept_replays_all_keys(
        self, tmp_path, serial_reference
    ):
        recipes = chaos_recipes()
        report = run_serve_chaos_case(
            tmp_path, recipes,
            fault="sigkill-after-accept",
            timeout_s=120.0,
            serial_store=serial_reference,
        )
        assert report.ok, "\n".join(report.summary_lines())
        # Every accepted request was journaled before the SIGKILL.
        assert report.journal_depth_after_kill == len(recipes)
        assert report.drain_exit == 0
        assert report.journal_depth_after_drain == 0
        assert not report.mismatched_keys


class TestGracefulDrain:
    def test_sigterm_with_inflight_request_drains_and_exits_zero(
        self, tmp_path, serial_reference
    ):
        recipe = chaos_recipes()[0]
        key = content_key(recipe)
        proc = spawn_daemon(
            tmp_path, log_path=tmp_path / "daemon.log",
        )
        try:
            endpoint = wait_for_endpoint(tmp_path, proc.pid, 30.0)
            client = ServeClient(
                endpoint["host"], endpoint["port"], timeout_s=10.0
            )
            code, data = client.call(
                "POST", "/request", {"recipe": recipe, "wait_s": 0}
            )
            assert code == 202, (code, data)
            # SIGTERM with the request in flight: stop accepting,
            # finish the work, exit 0.
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        store = store_for(tmp_path)
        journal = RequestJournal(serve_dir(tmp_path) / "journal")
        # The accepted request was answered, not dropped: blob durable,
        # journal empty, bytes identical to the serial reference.
        assert store.get(key) is not None
        assert journal.depth() == 0
        assert (
            store.blob_path(key).read_bytes()
            == serial_reference.blob_path(key).read_bytes()
        )

    def test_sigterm_idle_daemon_exits_zero_quickly(self, tmp_path):
        proc = spawn_daemon(tmp_path, log_path=tmp_path / "daemon.log")
        try:
            wait_for_endpoint(tmp_path, proc.pid, 30.0)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        # The endpoint advertisement is retired on clean shutdown.
        from repro.serve.server import read_endpoint

        deadline = time.monotonic() + 5.0
        while read_endpoint(tmp_path) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert read_endpoint(tmp_path) is None
