"""Unit tests for tracker sizing: the paper's entry/storage numbers."""

import pytest

from repro.trackers.sizing import (
    StorageEstimate,
    counter_bits,
    graphene_entries,
    graphene_internal_threshold,
    graphene_storage,
    impress_n_storage_bytes,
    impress_p_timer_bits,
    mint_storage_bytes,
    mithril_entries,
    mithril_storage,
    mithril_tolerated_threshold,
)


class TestGrapheneSizing:
    def test_448_entries_at_4k(self):
        # Section III-B: 448 entries per bank for TRH = 4K.
        assert graphene_entries(4000) == 448

    def test_internal_threshold_1333(self):
        assert graphene_internal_threshold(4000) == pytest.approx(1333.3, rel=0.01)

    def test_express_alpha1_doubles_entries(self):
        # Appendix A: 896 entries at alpha = 1.
        assert graphene_storage(4000, 2.0).entries_per_bank == 896

    def test_impress_n_alpha035_605_entries(self):
        # Appendix A: 605 entries at alpha = 0.35.
        assert graphene_storage(4000, 1.35).entries_per_bank == 605

    def test_entries_inverse_in_threshold(self):
        assert graphene_entries(2000) == pytest.approx(
            2 * graphene_entries(4000), rel=0.01
        )

    def test_impress_p_storage_factor_about_1_25(self):
        # Section VI-C: ImPress-P costs 1.25x storage (7 more bits per
        # entry), not 2x entries.
        base = graphene_storage(4000, 1.0)
        precise = graphene_storage(4000, 1.0, fraction_bits=7)
        assert precise.entries_per_bank == base.entries_per_bank
        factor = precise.total_bits_per_channel / base.total_bits_per_channel
        assert 1.2 < factor < 1.3

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            graphene_entries(0)


class TestMithrilSizing:
    def test_383_entries_at_4k(self):
        # Section III-B: 383 entries for TRH = 4K, RFMTH = 80.
        assert mithril_entries(4000, 80) == 383

    def test_1545_entries_at_alpha1(self):
        # Appendix A: target threshold 2000 -> 1545 entries.
        assert mithril_entries(2000, 80) == 1545

    def test_alpha035_entries_near_615(self):
        # Appendix A quotes 615; the calibrated model lands within 3%.
        entries = mithril_entries(4000 / 1.35, 80)
        assert entries == pytest.approx(615, rel=0.03)

    def test_threshold_model_inverts(self):
        entries = mithril_entries(4000, 80)
        assert mithril_tolerated_threshold(entries, 80) >= 3990

    def test_impress_p_keeps_entries(self):
        base = mithril_storage(4000, 80, 1.0)
        precise = mithril_storage(4000, 80, 1.0, fraction_bits=7)
        assert precise.entries_per_bank == base.entries_per_bank
        assert precise.bits_per_entry == base.bits_per_entry + 7

    def test_threshold_below_rfm_floor_raises(self):
        with pytest.raises(ValueError):
            mithril_entries(100, 80)


class TestMintAndSchemeStorage:
    def test_mint_4_bytes_baseline(self):
        assert mint_storage_bytes(0) == 4

    def test_mint_grows_with_fraction_bits(self):
        # Section VI-C says 5 bytes; our register model gives 6 because
        # it widens both SAN and CAN.  Either way it stays tiny.
        assert 5 <= mint_storage_bytes(7) <= 6

    def test_impress_n_is_4_bytes(self):
        assert impress_n_storage_bytes() == 4

    def test_impress_p_timer_is_10_bits(self):
        assert impress_p_timer_bits() == 10


class TestStorageEstimate:
    def test_kib_conversion(self):
        estimate = StorageEstimate(
            entries_per_bank=448, bits_per_entry=27, banks_per_channel=64
        )
        assert estimate.total_bits_per_channel == 448 * 27 * 64
        assert estimate.kib_per_channel == pytest.approx(94.5, rel=0.01)

    def test_counter_bits(self):
        assert counter_bits(1333) == 11
        assert counter_bits(1333, fraction_bits=7) == 18
        with pytest.raises(ValueError):
            counter_bits(0)
