"""Security tests: the verifier must rediscover the paper's thresholds."""

import pytest

from repro.core.mitigation import ImpressNScheme, ImpressPScheme, NoRpScheme
from repro.dram.timing import default_cycle_timings
from repro.security.charge_account import (
    VictimChargeState,
    access_tcl,
    pattern_tcl,
)
from repro.security.simulation import run_security_simulation
from repro.security.verifier import effective_threshold, replay_pattern
from repro.trackers.base import AccountingTracker
from repro.trackers.graphene import GrapheneTracker
from repro.workloads.attacks import (
    TimedAccess,
    k_pattern_accesses,
    row_press_accesses,
    rowhammer_accesses,
)

TRH = 4000.0


@pytest.fixture(scope="module")
def cyc():
    return default_cycle_timings()


class TestChargeAccount:
    def test_rowhammer_access_is_one_unit(self, cyc):
        access = TimedAccess(row=1, act_cycle=0, close_cycle=cyc.tRAS)
        assert access_tcl(access, alpha=1.0, timings=cyc) == pytest.approx(1.0)

    def test_pattern_tcl_filters_by_row(self, cyc):
        accesses = rowhammer_accesses(1, 5, cyc) + rowhammer_accesses(
            2, 3, cyc, start_cycle=10_000
        )
        assert pattern_tcl(accesses, 1, 1.0, cyc) == pytest.approx(5.0)

    def test_victim_state_accumulates_neighbors(self, cyc):
        state = VictimChargeState(alpha=1.0, timings=cyc)
        access = TimedAccess(row=10, act_cycle=0, close_cycle=cyc.tRAS)
        state.apply_access(access)
        assert state.charge[9] == pytest.approx(1.0)
        assert state.charge[11] == pytest.approx(1.0)

    def test_mitigation_refreshes_blast_radius(self, cyc):
        state = VictimChargeState(alpha=1.0, timings=cyc)
        for access in rowhammer_accesses(10, 5, cyc):
            state.apply_access(access)
        refreshed = state.apply_mitigation(10)
        assert set(refreshed) == {8, 9, 11, 12}
        assert state.max_charge() == 0.0
        assert state.peak_charge == pytest.approx(5.0)


class TestNoRpVulnerability:
    def test_row_press_breaks_no_rp(self, cyc):
        # A tREFI-long Row-Press round is recorded as a single ACT but
        # leaks ~tens of units: T* collapses far below TRH.
        report = effective_threshold("no-rp", TRH, alpha=0.48, timings=cyc)
        assert report.relative_threshold < 0.05

    def test_pure_rowhammer_is_fully_recorded(self, cyc):
        scheme = NoRpScheme([AccountingTracker()], cyc)
        result = replay_pattern(
            scheme, rowhammer_accesses(1000, 50, cyc), 1000, 1.0, cyc
        )
        assert result.ratio == pytest.approx(1.0)


class TestExpress:
    def test_express_threshold_matches_clm(self, cyc):
        # With tON capped at tMRO, the worst ratio is TCL(tMRO).
        tmro = cyc.tRAS + cyc.tRC
        report = effective_threshold(
            "express", TRH, alpha=0.35, timings=cyc, tmro_cycles=tmro
        )
        assert report.relative_threshold == pytest.approx(1 / 1.35, rel=0.01)

    def test_express_requires_tmro(self, cyc):
        with pytest.raises(ValueError):
            effective_threshold("express", TRH, alpha=0.35, timings=cyc)


class TestImpressN:
    def test_eq5_alpha_035(self, cyc):
        report = effective_threshold("impress-n", TRH, alpha=0.35, timings=cyc)
        assert report.relative_threshold == pytest.approx(1 / 1.35, rel=0.01)
        # Worst case is a round open ~tRAS + tRC seen as one ACT — the
        # decoy pattern or the phase-free equivalent tON probe.
        assert report.worst_pattern in ("fig10-decoy", "row-press tON=224cyc")

    def test_eq5_alpha_1(self, cyc):
        report = effective_threshold("impress-n", TRH, alpha=1.0, timings=cyc)
        assert report.relative_threshold == pytest.approx(0.5, rel=0.01)

    def test_long_row_press_is_mitigated(self, cyc):
        # ImPress-N credits full windows, so a tREFI-long RP round is
        # almost fully accounted (ratio close to 1, not 18x).
        scheme = ImpressNScheme([AccountingTracker()], cyc)
        accesses = row_press_accesses(1000, 8, cyc.tREFI - cyc.tPRE, cyc)
        result = replay_pattern(scheme, accesses, 1000, 0.48, cyc)
        assert result.ratio < 1.0  # alpha 0.48 < 1 credit per window


class TestImpressP:
    def test_full_precision_keeps_threshold(self, cyc):
        report = effective_threshold(
            "impress-p", TRH, alpha=1.0, timings=cyc, fraction_bits=7
        )
        assert report.relative_threshold == pytest.approx(1.0, abs=1e-6)

    def test_fig12_quantization_curve(self, cyc):
        # Verified T* must sit at or above the paper's 1 - 2^-b bound
        # and degrade monotonically with fewer bits.
        previous = 0.0
        for bits in range(8):
            report = effective_threshold(
                "impress-p", TRH, alpha=1.0, timings=cyc, fraction_bits=bits
            )
            bound = 0.5 if bits == 0 else 1.0 - 2.0**-bits
            assert report.relative_threshold >= bound - 1e-6
            assert report.relative_threshold >= previous - 1e-6
            previous = report.relative_threshold

    def test_decoy_gains_nothing(self, cyc):
        scheme = ImpressPScheme([AccountingTracker()], cyc, fraction_bits=7)
        from repro.workloads.attacks import decoy_pattern_accesses

        accesses = decoy_pattern_accesses(1000, 2000, 16, cyc)
        result = replay_pattern(scheme, accesses, 1000, 1.0, cyc)
        assert result.ratio <= 1.0 + 1e-9

    def test_unknown_scheme_rejected(self, cyc):
        with pytest.raises(ValueError):
            effective_threshold("bogus", TRH, alpha=1.0, timings=cyc)


class TestEndToEndSecurity:
    def _graphene_scheme(self, cyc, scheme_cls, threshold):
        tracker = GrapheneTracker(
            entries=8, internal_threshold=threshold, fraction_bits=7
        )
        return scheme_cls([tracker], cyc)

    def test_impress_p_graphene_stops_k_pattern(self, cyc):
        # Graphene + ImPress-P sized for TRH: no victim ever reaches
        # the critical charge even under a heavy K-pattern.
        trh = 64.0  # small threshold keeps the test fast
        scheme = self._graphene_scheme(cyc, ImpressPScheme, trh / 4)
        accesses = k_pattern_accesses(1000, rounds=200, k=3, timings=cyc)
        outcome = run_security_simulation(
            scheme, accesses, trh, alpha=1.0, timings=cyc
        )
        assert not outcome.flipped
        assert outcome.mitigations > 0

    def test_no_rp_graphene_broken_by_row_press(self, cyc):
        # The same tracker without RP awareness lets a long-open-row
        # pattern reach critical charge: the Row-Press attack works.
        trh = 64.0
        scheme = self._graphene_scheme(cyc, NoRpScheme, trh / 4)
        ton = cyc.tREFI - cyc.tPRE  # one refresh interval per round
        accesses = row_press_accesses(1000, rounds=30, ton_cycles=ton,
                                      timings=cyc)
        outcome = run_security_simulation(
            scheme, accesses, trh, alpha=0.48, timings=cyc
        )
        assert outcome.flipped

    def test_impress_n_bounds_damage_to_eq5(self, cyc):
        # ImPress-N with a tracker sized for TRH/(1+alpha) stops the
        # decoy pattern.
        from repro.workloads.attacks import decoy_pattern_accesses

        trh = 64.0
        scheme = self._graphene_scheme(cyc, ImpressNScheme, trh / 2 / 4)
        accesses = decoy_pattern_accesses(1000, 2000, 300, cyc)
        outcome = run_security_simulation(
            scheme, accesses, trh, alpha=1.0, timings=cyc
        )
        assert not outcome.flipped
