"""Tests for the serve stack: journal, engine, HTTP daemon, client.

Everything here is in-process and fast — the engine executes misses
through its own sticky-degraded path (no worker subprocesses), and the
HTTP daemon binds port 0 on localhost inside the test.  The
process-killing recovery claims (SIGKILL mid-request, restart, replay,
graceful SIGTERM drain) live in ``test_serve_chaos.py``.

The load-bearing claims:

* a served miss produces a result blob *byte-identical* to a serial
  sweep of the same recipe (the store-addressing contract extends to
  the daemon);
* N concurrent identical requests coalesce onto one execution — one
  journal entry, one accepted count, one blob, N equal payloads;
* admission control sheds (never queues unboundedly) past every
  watermark, with store hits still served while draining;
* journal replay completes pre-crash requests and resolves entries
  whose blob already landed without re-executing;
* the client's deadline/retry loop survives dead sockets, sheds, 202
  polling, and a daemon restart that forgot the key (404 → resubmit).
"""

import json
import threading
import time

import pytest

from repro.distrib.coordinator import run_serial_sweep
from repro.distrib.queue import FileWorkQueue
from repro.distrib.worker import sweep_task_recipe
from repro.results.store import content_key, store_for
from repro.scenarios.spec import ScenarioSpec
from repro.serve.client import (
    DeadlineExceeded,
    ServeClient,
    ServeError,
    ServeUnavailable,
)
from repro.serve.engine import RequestEngine, RequestFailed, RequestShed
from repro.serve.engine import InFlight
from repro.serve.journal import JOURNAL_VERSION, RequestJournal
from repro.serve.server import ServeDaemon, read_endpoint
from repro.sim.config import SystemConfig


def small_recipe(workload="add_copy", n_requests=300, seed=0):
    """One cheap single-core task recipe (a few ms to simulate)."""
    system = SystemConfig(n_cores=1, banks_per_channel=8)
    spec = ScenarioSpec.benign(workload, system=system)
    return sweep_task_recipe(spec.recipe(), n_requests, seed)


def slow_recipe(n_requests=20_000, seed=0):
    """A task long enough (~1s) that waits and polls can observe it."""
    system = SystemConfig(n_cores=1, banks_per_channel=8)
    spec = ScenarioSpec.benign("mcf", system=system)
    return sweep_task_recipe(spec.recipe(), n_requests, seed)


def broken_recipe():
    """A recipe whose simulator construction raises (poisons fast)."""
    return {
        "kind": "sweep-task",
        "scenario": {"bogus": True},
        "n_requests": 10,
        "seed": 0,
    }


def make_engine(tmp_path, **overrides):
    """An engine wired to fresh store/queue/journal under ``tmp_path``."""
    store = store_for(tmp_path)
    kwargs = dict(
        max_inflight=8,
        max_waiters=16,
        queue_watermark=64,
        journal_watermark=32,
        serial_grace_s=0.05,
        poll_s=0.01,
        checkpoint_stride=20_000,
    )
    queue = FileWorkQueue(
        tmp_path / "queue",
        lease_s=overrides.pop("lease_s", 5.0),
        max_attempts=overrides.pop("max_attempts", 4),
    )
    kwargs.update(overrides)
    journal = RequestJournal(tmp_path / "serve" / "journal")
    engine = RequestEngine(store, queue, journal, **kwargs)
    return engine, store, queue, journal


class TestRequestJournal:
    def test_record_entry_resolve_roundtrip(self, tmp_path):
        journal = RequestJournal(tmp_path / "j")
        recipe = small_recipe()
        key = content_key(recipe)
        assert journal.record(key, recipe) is True
        assert journal.depth() == 1
        entry = journal.entry(key)
        assert entry is not None
        assert entry.recipe == recipe
        assert entry.journaled_at > 0
        assert journal.resolve(key) is True
        assert journal.depth() == 0
        assert journal.entry(key) is None
        assert journal.resolve(key) is False   # already gone

    def test_record_is_idempotent_by_key(self, tmp_path):
        journal = RequestJournal(tmp_path / "j")
        recipe = small_recipe()
        key = content_key(recipe)
        assert journal.record(key, recipe) is True
        assert journal.record(key, recipe) is False
        assert journal.depth() == 1

    def test_entries_sorted_and_tolerant(self, tmp_path):
        journal = RequestJournal(tmp_path / "j")
        a, b = small_recipe("add_copy"), small_recipe("copy")
        journal.record(content_key(a), a)
        journal.record(content_key(b), b)
        (tmp_path / "j" / "torn.json").write_text("{not json")
        entries = journal.entries()
        assert [e.key for e in entries] == sorted(
            [content_key(a), content_key(b)]
        )

    def test_discard_corrupt_drops_only_unreplayable(self, tmp_path):
        journal = RequestJournal(tmp_path / "j")
        recipe = small_recipe()
        journal.record(content_key(recipe), recipe)
        (tmp_path / "j" / "torn.json").write_text("{not json")
        (tmp_path / "j" / "oldver.json").write_text(json.dumps({
            "version": JOURNAL_VERSION + 1, "recipe": {},
        }))
        dropped = journal.discard_corrupt()
        assert sorted(dropped) == ["oldver", "torn"]
        assert journal.depth() == 1

    def test_no_tmp_residue_after_record(self, tmp_path):
        journal = RequestJournal(tmp_path / "j")
        recipe = small_recipe()
        journal.record(content_key(recipe), recipe)
        assert not list((tmp_path / "j").glob("*.tmp"))


class TestEngineExecution:
    def test_miss_matches_serial_byte_for_byte(self, tmp_path):
        recipe = small_recipe()
        serial_store = store_for(tmp_path / "serial")
        run_serial_sweep([recipe], serial_store)
        engine, store, _queue, journal = make_engine(tmp_path / "served")
        entry, disposition = engine.submit(recipe)
        assert disposition == "accepted"
        payload = engine.wait(entry, 60.0)
        assert payload is not None
        key = content_key(recipe)
        assert entry.key == key
        assert (
            store.blob_path(key).read_bytes()
            == serial_store.blob_path(key).read_bytes()
        )
        # The journal entry died only after the blob became durable.
        assert journal.depth() == 0
        assert engine.stats.completed == 1

    def test_second_submit_is_a_store_hit(self, tmp_path):
        recipe = small_recipe()
        engine, _store, _queue, _journal = make_engine(tmp_path)
        first, _ = engine.submit(recipe)
        engine.wait(first, 60.0)
        again, disposition = engine.submit(recipe)
        assert disposition == "hit"
        assert again.done.is_set()
        assert engine.wait(again, 0.0) == first.payload
        assert engine.stats.store_hits == 1

    def test_deadline_bounds_the_wait_not_the_work(self, tmp_path):
        engine, store, _queue, _journal = make_engine(tmp_path)
        recipe = slow_recipe()
        entry, disposition = engine.submit(recipe)
        assert disposition == "accepted"
        assert engine.wait(entry, 0.01) is None      # 202-style
        state, _ = engine.lookup(entry.key)
        assert state in ("pending", "done")
        payload = engine.wait(entry, 60.0)           # work continued
        assert payload is not None
        assert store.get(entry.key) is not None

    def test_poisoned_task_raises_request_failed(self, tmp_path):
        engine, _store, queue, journal = make_engine(
            tmp_path, max_attempts=1,
        )
        entry, _ = engine.submit(broken_recipe())
        with pytest.raises(RequestFailed):
            engine.wait(entry, 60.0)
        assert engine.stats.failed == 1
        # Poison outlives the journal entry (no infinite replay loop)...
        assert journal.depth() == 0
        state, poison = engine.lookup(entry.key)
        assert state == "failed"
        assert poison is not None and "error" in poison

    def test_lookup_states(self, tmp_path):
        engine, store, _queue, journal = make_engine(tmp_path)
        assert engine.lookup("feedfacefeedface") == ("unknown", None)
        recipe = small_recipe()
        key = content_key(recipe)
        # Journaled but not in flight (the post-crash shape): pending.
        journal.record(key, recipe)
        assert engine.lookup(key)[0] == "pending"
        journal.resolve(key)
        entry, _ = engine.submit(recipe)
        engine.wait(entry, 60.0)
        state, payload = engine.lookup(key)
        assert state == "done"
        assert payload == store.get(key)


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_execution(
        self, tmp_path
    ):
        n = 6
        engine, store, _queue, journal = make_engine(tmp_path)
        recipe = slow_recipe(n_requests=8_000)
        barrier = threading.Barrier(n)
        results, errors = [], []

        def one_request():
            barrier.wait()
            try:
                entry, disposition = engine.submit(recipe)
                payload = engine.wait(entry, 60.0)
                results.append((disposition, payload))
            except Exception as exc:   # pragma: no cover - forensics
                errors.append(exc)

        threads = [
            threading.Thread(target=one_request) for _ in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        assert len(results) == n
        dispositions = [d for d, _ in results]
        # Exactly one execution was started; everyone else either
        # joined it or (if they lost the race entirely) hit the store.
        assert engine.stats.accepted == 1
        assert dispositions.count("accepted") == 1
        assert set(dispositions) <= {"accepted", "coalesced", "hit"}
        payloads = [p for _, p in results]
        assert all(p == payloads[0] for p in payloads)
        # One blob, one (now-resolved) journal entry.
        assert store.get(content_key(recipe)) is not None
        assert journal.depth() == 0
        assert engine.stats.completed == 1


class TestAdmission:
    def test_draining_sheds_new_work(self, tmp_path):
        engine, _store, _queue, _journal = make_engine(tmp_path)
        engine.draining = True
        with pytest.raises(RequestShed) as excinfo:
            engine.submit(small_recipe())
        assert excinfo.value.reason == "draining"
        assert excinfo.value.retry_after_s > 0
        assert engine.stats.shed == 1

    def test_store_hits_served_even_while_draining(self, tmp_path):
        recipe = small_recipe()
        engine, _store, _queue, _journal = make_engine(tmp_path)
        entry, _ = engine.submit(recipe)
        engine.wait(entry, 60.0)
        engine.draining = True
        again, disposition = engine.submit(recipe)
        assert disposition == "hit"
        assert again.payload is not None

    def test_inflight_watermark_sheds(self, tmp_path):
        engine, _store, _queue, _journal = make_engine(
            tmp_path, max_inflight=0,
        )
        with pytest.raises(RequestShed) as excinfo:
            engine.submit(small_recipe())
        assert "in-flight" in excinfo.value.reason

    def test_journal_watermark_sheds(self, tmp_path):
        engine, _store, _queue, _journal = make_engine(
            tmp_path, journal_watermark=0,
        )
        with pytest.raises(RequestShed) as excinfo:
            engine.submit(small_recipe())
        assert "journal" in excinfo.value.reason

    def test_queue_watermark_sheds(self, tmp_path):
        engine, _store, queue, _journal = make_engine(
            tmp_path, queue_watermark=1, journal_watermark=99,
        )
        queue.submit(slow_recipe())   # unrelated backlog
        with pytest.raises(RequestShed) as excinfo:
            engine.submit(small_recipe())
        assert "queue" in excinfo.value.reason

    def test_waiter_cap_sheds_the_wait(self, tmp_path):
        engine, _store, _queue, _journal = make_engine(
            tmp_path, max_waiters=0,
        )
        entry = InFlight(key="deadbeef", recipe={})
        with pytest.raises(RequestShed) as excinfo:
            engine.wait(entry, 0.01)
        assert "waiter" in excinfo.value.reason


class TestReplay:
    def test_replay_executes_journaled_requests(self, tmp_path):
        recipe = small_recipe()
        key = content_key(recipe)
        engine, store, _queue, journal = make_engine(tmp_path)
        journal.record(key, recipe)   # the post-crash journal shape
        assert engine.replay_journal() == 1
        assert engine.stats.replayed == 1
        deadline = time.monotonic() + 60.0
        while engine.inflight_keys() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert store.get(key) is not None
        assert journal.depth() == 0

    def test_replay_resolves_already_landed_blobs_without_rerun(
        self, tmp_path
    ):
        recipe = small_recipe()
        key = content_key(recipe)
        engine, store, _queue, journal = make_engine(tmp_path)
        run_serial_sweep([recipe], store)   # blob is already durable
        journal.record(key, recipe)         # crash hit before resolve
        assert engine.replay_journal() == 0
        assert journal.depth() == 0
        assert engine.stats.replayed == 0

    def test_replay_discards_corrupt_entries(self, tmp_path):
        engine, _store, _queue, journal = make_engine(tmp_path)
        (journal.root / "torn.json").write_text("{not json")
        assert engine.replay_journal() == 0
        assert journal.depth() == 0


@pytest.fixture
def daemon(tmp_path):
    """An in-process daemon on a fresh port-0 endpoint."""
    daemon = ServeDaemon(
        tmp_path,
        serial_grace_s=0.05,
        checkpoint_stride=20_000,
        max_waiters=16,
    )
    daemon.start()
    daemon.serve_in_thread()
    yield daemon
    daemon.shutdown(drain_timeout_s=30.0)


class TestHTTPDaemon:
    def client(self, daemon, **kwargs):
        host, port = daemon.address
        return ServeClient(host, port, **kwargs)

    def test_healthz_and_endpoint_file(self, daemon, tmp_path):
        client = self.client(daemon)
        assert client.healthz() == {"ok": True, "draining": False}
        endpoint = read_endpoint(tmp_path)
        assert endpoint is not None
        assert (endpoint["host"], endpoint["port"]) == daemon.address

    def test_request_roundtrip_and_hit(self, daemon):
        client = self.client(daemon)
        recipe = small_recipe()
        first = client.request({"recipe": recipe}, deadline_s=60.0)
        assert first.key == content_key(recipe)
        assert first.source == "accepted"
        again = client.request({"recipe": recipe}, deadline_s=60.0)
        assert again.source == "hit"
        assert again.payload == first.payload

    def test_scenario_form_matches_recipe_form(self, daemon):
        client = self.client(daemon)
        system_recipe = small_recipe(n_requests=300, seed=0)
        by_recipe = client.request(
            {"recipe": system_recipe}, deadline_s=60.0
        )
        # The preset form addresses presets from the registry; it
        # must produce the preset's own content key.
        by_name = client.request(
            {"scenario": "benign_add_copy", "n_requests": 60, "seed": 0},
            deadline_s=60.0,
        )
        assert by_name.key != by_recipe.key
        assert by_name.payload

    def test_status_surfaces_the_full_census(self, daemon):
        client = self.client(daemon)
        client.request({"recipe": small_recipe()}, deadline_s=60.0)
        status = client.status()
        for field in (
            "owner", "draining", "degraded", "inflight", "waiters",
            "stats", "admission", "journal_depth", "queue", "store",
        ):
            assert field in status
        assert status["stats"]["received"] >= 1
        assert status["store"]["blobs"] >= 1
        assert status["journal_depth"] == 0
        assert "open_tasks" in status["queue"]

    def test_zero_wait_gets_202_then_poll_completes(self, daemon):
        client = self.client(daemon)
        recipe = slow_recipe(n_requests=6_000)
        code, data = client.call(
            "POST", "/request", {"recipe": recipe, "wait_s": 0}
        )
        assert code == 202
        assert data["status"] == "pending"
        key = data["key"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            code, data = client.result(key)
            if code == 200:
                break
            assert code == 202
            time.sleep(0.05)
        assert code == 200
        assert data["payload"]

    def test_bad_bodies_get_400(self, daemon):
        client = self.client(daemon)
        assert client.call("POST", "/request", {})[0] == 400
        assert client.call(
            "POST", "/request", {"recipe": "not-a-dict"}
        )[0] == 400
        assert client.call(
            "POST", "/request", {"scenario": "no_such_preset"}
        )[0] == 400

    def test_unknown_paths_get_404(self, daemon):
        client = self.client(daemon)
        assert client.call("GET", "/nope")[0] == 404
        assert client.call("POST", "/nope", {})[0] == 404
        assert client.result("feedfacefeedface")[0] == 404

    def test_draining_sheds_with_503_and_retry_after(self, daemon):
        client = self.client(daemon)
        daemon.engine.draining = True
        code, data = client.call(
            "POST", "/request", {"recipe": small_recipe()}
        )
        assert code == 503
        assert data["reason"] == "draining"
        assert data["retry_after_s"] > 0
        daemon.engine.draining = False

    def test_inflight_shed_gets_429(self, daemon):
        client = self.client(daemon)
        daemon.engine.max_inflight = 0
        try:
            code, data = client.call(
                "POST", "/request", {"recipe": small_recipe("copy")}
            )
        finally:
            daemon.engine.max_inflight = 8
        assert code == 429
        assert "in-flight" in data["reason"]


class ScriptedClient(ServeClient):
    """A client whose transport is a scripted list of responses."""

    def __init__(self, script):
        super().__init__("test", 0, sleep=self.record_sleep)
        self.script = list(script)
        self.calls = []
        self.sleeps = []

    def record_sleep(self, seconds):
        self.sleeps.append(seconds)

    def call(self, method, path, body=None):
        self.calls.append((method, path))
        # The last step repeats forever (a daemon that keeps saying
        # "pending" while the client's deadline runs out).
        step = (
            self.script.pop(0) if len(self.script) > 1
            else self.script[0]
        )
        if isinstance(step, Exception):
            raise step
        return step


class TestClientRetryLoop:
    def test_survives_dead_socket_shed_and_202(self):
        client = ScriptedClient([
            ConnectionRefusedError("down"),
            (429, {"status": "shed", "retry_after_s": 0.01}),
            (202, {"status": "pending", "key": "k1"}),
            (202, {"status": "pending", "key": "k1"}),
            (200, {"status": "done", "key": "k1", "payload": "p"}),
        ])
        outcome = client.request({"recipe": {}}, deadline_s=30.0)
        assert outcome.payload == "p"
        assert outcome.key == "k1"
        assert outcome.submits == 2   # the shed POST and the accepted one
        assert outcome.polls == 2
        assert outcome.retries == 2   # dead socket + shed
        assert len(client.sleeps) == 4   # error, shed, 2x poll backoff

    def test_404_on_poll_resubmits_idempotently(self):
        client = ScriptedClient([
            (202, {"status": "pending", "key": "k1"}),
            (404, {"status": "unknown", "key": "k1"}),
            (200, {"status": "done", "key": "k1", "payload": "p",
                   "source": "accepted"}),
        ])
        outcome = client.request({"recipe": {}}, deadline_s=30.0)
        assert outcome.payload == "p"
        assert outcome.submits == 2   # the daemon forgot us; resubmitted
        assert outcome.polls == 1

    def test_deadline_exceeded_carries_the_key(self):
        client = ScriptedClient(
            [(202, {"status": "pending", "key": "k1"})]
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            client.request({"recipe": {}}, deadline_s=0.05)
        assert excinfo.value.key == "k1"

    def test_500_raises_serve_error(self):
        client = ScriptedClient([
            (500, {"status": "failed", "error": "poisoned"}),
        ])
        with pytest.raises(ServeError):
            client.request({"recipe": {}}, deadline_s=30.0)

    def test_from_results_dir_requires_endpoint(self, tmp_path):
        with pytest.raises(ServeUnavailable):
            ServeClient.from_results_dir(tmp_path)
