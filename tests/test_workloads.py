"""Tests for workload profiles and synthetic trace generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import LINE_BYTES, MopAddressMapper
from repro.workloads.profiles import (
    ALL_WORKLOAD_NAMES,
    SPEC_NAMES,
    STREAM_KERNEL_NAMES,
    STREAM_MIX_NAMES,
    WorkloadProfile,
    is_mix,
    mix_components,
    profile_for,
)
from repro.workloads.synthetic import (
    rate_mode_traces,
    spec_like_trace,
    stream_like_trace,
    trace_for_profile,
)
from repro.workloads.trace import Trace, TraceRequest


class TestProfiles:
    def test_paper_workload_roster(self):
        # Fig 3's x-axis: 10 SPEC + 4 STREAM kernels + 6 mixes.
        assert len(SPEC_NAMES) == 10
        assert len(STREAM_KERNEL_NAMES) == 4
        assert len(STREAM_MIX_NAMES) == 6
        assert len(ALL_WORKLOAD_NAMES) == 20

    def test_profile_lookup(self):
        assert profile_for("mcf").category == "spec"
        assert profile_for("add").category == "stream"
        with pytest.raises(KeyError):
            profile_for("nonexistent")

    def test_mix_components(self):
        assert is_mix("add_copy")
        assert mix_components("add_copy") == ("add", "copy")
        assert not is_mix("add")
        with pytest.raises(KeyError):
            mix_components("add")

    def test_stream_kernels_have_write_streams(self):
        for name in STREAM_KERNEL_NAMES:
            assert "w" in profile_for(name).streams

    def test_add_and_triad_have_three_streams(self):
        assert len(profile_for("add").streams) == 3
        assert len(profile_for("triad").streams) == 3
        assert len(profile_for("copy").streams) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "bogus")
        with pytest.raises(ValueError):
            WorkloadProfile("x", "spec", run_lines=0.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "spec", write_fraction=1.5)


class TestTrace:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            TraceRequest(address=-1)
        with pytest.raises(ValueError):
            TraceRequest(address=0, gap_cycles=-1)

    def test_offset_by(self):
        trace = Trace([TraceRequest(address=64, gap_cycles=3)])
        shifted = trace.offset_by(128)
        assert shifted[0].address == 192
        assert shifted[0].gap_cycles == 3

    def test_write_fraction(self):
        trace = Trace(
            [TraceRequest(0, is_write=True), TraceRequest(64, is_write=False)]
        )
        assert trace.write_fraction() == 0.5
        assert Trace([]).write_fraction() == 0.0


class TestSpecLikeTraces:
    def test_length_and_determinism(self):
        profile = profile_for("mcf")
        a = spec_like_trace(profile, 500, seed=1)
        b = spec_like_trace(profile, 500, seed=1)
        assert len(a) == 500
        assert [r.address for r in a] == [r.address for r in b]

    def test_different_seeds_differ(self):
        profile = profile_for("mcf")
        a = spec_like_trace(profile, 200, seed=1)
        b = spec_like_trace(profile, 200, seed=2)
        assert [r.address for r in a] != [r.address for r in b]

    def test_locality_orders_hit_potential(self):
        # bwaves (run 5.0) must produce longer same-row runs than mcf
        # (run 1.3) under the MOP mapping.
        mapper = MopAddressMapper()

        def mean_run(trace):
            runs, current, last = [], 0, None
            for request in trace:
                mapped = mapper.map_address(request.address)
                key = (mapped.channel, mapped.bank, mapped.row)
                if key == last:
                    current += 1
                else:
                    if current:
                        runs.append(current)
                    current = 1
                    last = key
            runs.append(current)
            return sum(runs) / len(runs)

        bwaves = spec_like_trace(profile_for("bwaves"), 2000, seed=3)
        mcf = spec_like_trace(profile_for("mcf"), 2000, seed=3)
        assert mean_run(bwaves) > mean_run(mcf)

    def test_write_fraction_near_profile(self):
        profile = profile_for("mcf")
        trace = spec_like_trace(profile, 4000, seed=4)
        assert trace.write_fraction() == pytest.approx(
            profile.write_fraction, abs=0.05
        )


class TestStreamLikeTraces:
    def test_streams_are_sequential(self):
        trace = stream_like_trace(profile_for("copy"), 64, seed=0)
        reads = [r.address for r in trace if not r.is_write]
        deltas = {b - a for a, b in zip(reads, reads[1:])}
        assert deltas == {LINE_BYTES}

    def test_write_stream_present(self):
        trace = stream_like_trace(profile_for("add"), 300, seed=0)
        # add: 2 reads + 1 write per iteration.
        assert trace.write_fraction() == pytest.approx(1 / 3, abs=0.02)

    def test_requires_stream_spec(self):
        with pytest.raises(ValueError):
            stream_like_trace(profile_for("mcf"), 100)

    def test_trace_for_profile_dispatch(self):
        assert len(trace_for_profile(profile_for("add"), 50)) == 50
        assert len(trace_for_profile(profile_for("mcf"), 50)) == 50


class TestRateMode:
    def test_one_trace_per_core(self):
        traces = rate_mode_traces("mcf", 8, 100, seed=0)
        assert len(traces) == 8
        assert all(len(t) == 100 for t in traces)

    def test_core_footprints_disjoint(self):
        traces = rate_mode_traces("mcf", 4, 200, seed=0)
        footprints = [
            {r.address for r in trace} for trace in traces
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not footprints[i] & footprints[j]

    def test_mix_splits_cores(self):
        traces = rate_mode_traces("add_copy", 8, 300, seed=0)
        # add cores write 1/3, copy cores 1/2.
        fractions = sorted(t.write_fraction() for t in traces)
        assert fractions[0] == pytest.approx(1 / 3, abs=0.02)
        assert fractions[-1] == pytest.approx(1 / 2, abs=0.02)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            rate_mode_traces("mcf", 0, 10)

    @given(st.sampled_from(ALL_WORKLOAD_NAMES))
    @settings(max_examples=10, deadline=None)
    def test_every_named_workload_generates(self, name):
        traces = rate_mode_traces(name, 2, 50, seed=0)
        assert len(traces) == 2
        assert all(len(t) == 50 for t in traces)
