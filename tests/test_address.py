"""Unit and property tests for the MOP address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.address import LINE_BYTES, MappedAddress, MopAddressMapper


@pytest.fixture
def mapper():
    return MopAddressMapper(channels=2, banks_per_channel=64)


class TestMopMapping:
    def test_eight_consecutive_lines_share_a_row(self, mapper):
        base = 0
        mapped = [
            mapper.map_address(base + i * LINE_BYTES) for i in range(8)
        ]
        assert len({(m.channel, m.bank, m.row) for m in mapped}) == 1
        assert [m.column for m in mapped] == list(range(8))

    def test_ninth_line_hops_bank(self, mapper):
        first = mapper.map_address(0)
        ninth = mapper.map_address(8 * LINE_BYTES)
        assert (ninth.channel, ninth.bank) != (first.channel, first.bank)
        assert ninth.column == 0

    def test_row_span_bytes(self, mapper):
        assert mapper.row_span_bytes() == 8 * LINE_BYTES

    def test_rejects_negative(self, mapper):
        with pytest.raises(ValueError):
            mapper.map_address(-1)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MopAddressMapper(channels=0)
        with pytest.raises(ValueError):
            MopAddressMapper(lines_per_row_group=0)

    def test_groups_stripe_over_all_banks(self, mapper):
        banks = {
            (m.channel, m.bank)
            for m in (
                mapper.map_address(g * 8 * LINE_BYTES)
                for g in range(mapper.total_banks)
            )
        }
        assert len(banks) == mapper.total_banks


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**38))
    def test_map_address_roundtrip(self, address):
        mapper = MopAddressMapper()
        aligned = (address >> 6) << 6
        assert mapper.address_of(mapper.map_address(aligned)) == aligned

    @given(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=7),
    )
    def test_address_of_roundtrip(self, channel, bank, row, column):
        mapper = MopAddressMapper(channels=2, banks_per_channel=64)
        mapped = MappedAddress(
            channel=channel, bank=bank, row=row, column=column
        )
        assert mapper.map_address(mapper.address_of(mapped)) == mapped
