"""Crash-consistency tests for the content-addressed result store.

Child processes are killed (via the ``_CRASH_AFTER_TMP_WRITE`` hook
calling ``os._exit``) inside the two atomic-write windows — a blob
``put`` and an index alias update — and the parent asserts the store
reads clean afterwards: the interrupted artifact is simply a miss
(retriable), nothing is torn, and ``gc`` sweeps the debris.  Also
covers the index-lock timeout (:class:`StoreLockTimeout`) against a
process that genuinely holds the lock, and the dead-pid/live-pid/aged
rules of the stale-temp sweep.
"""

import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.results.store import (
    ResultStore,
    StoreLockTimeout,
    content_key,
    store_for,
)


def child_env():
    env = dict(os.environ)
    src = str(
        (os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    env["PYTHONPATH"] = os.path.join(src, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def run_child(script):
    """Run a crashing store operation in a child; returns exit code."""
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        env=child_env(), capture_output=True, text=True, timeout=60,
    )


RECIPE = {"kind": "crash-test", "n": 1}


class TestKillMidPut:
    def test_store_reads_clean_and_gc_sweeps_debris(self, tmp_path):
        root = tmp_path / "results"
        proc = run_child(f"""
            import os
            from repro.results import store as store_mod
            from repro.results.store import store_for
            store = store_for({str(root)!r})
            store_mod._CRASH_AFTER_TMP_WRITE = lambda: os._exit(97)
            store.put({RECIPE!r}, {{"value": 1}}, name="crash/one")
        """)
        assert proc.returncode == 97, proc.stderr

        store = store_for(root)
        key = content_key(RECIPE)
        # The blob never landed: a clean miss, so the work is simply
        # retriable — no torn JSON, no exception.
        assert store.get(key) is None
        assert store.fetch(RECIPE) is None
        # The child's temp file is debris with a dead writer pid.
        dry = store.gc(dry_run=True, tmp_grace_s=1e9)
        assert dry.stale_tmp
        assert dry.reclaimable_bytes > 0
        store.gc(tmp_grace_s=1e9)
        assert not list(store.objects_dir.glob("*.tmp"))
        # Retrying the put succeeds and is readable.
        retry_key, _path, created = store.put(
            RECIPE, {"value": 1}, name="crash/one"
        )
        assert retry_key == key
        assert created
        assert store.get(key) == {"value": 1}


class TestKillMidIndexUpdate:
    def test_index_survives_and_blob_stays_live(self, tmp_path):
        root = tmp_path / "results"
        # First, a healthy put with an alias (the index has content).
        store = store_for(root)
        key, _path, _created = store.put(
            RECIPE, {"value": 1}, name="crash/kept"
        )
        proc = run_child(f"""
            import os
            from repro.results import store as store_mod
            from repro.results.store import store_for
            store = store_for({str(root)!r})
            store_mod._CRASH_AFTER_TMP_WRITE = lambda: os._exit(98)
            store.alias("crash/second", {key!r}, "result")
        """)
        assert proc.returncode == 98, proc.stderr

        fresh = store_for(root)
        # The interrupted alias never landed, the prior index content
        # is intact, and the blob is still fetchable.
        assert fresh.latest("crash/second") is None
        assert fresh.latest("crash/kept")["key"] == key
        assert fresh.get(key) == {"value": 1}
        # gc sweeps the orphaned index temp file but keeps the
        # still-referenced blob.
        report = fresh.gc(tmp_grace_s=1e9)
        assert report.stale_tmp
        assert fresh.get(key) == {"value": 1}


class TestLockTimeout:
    def test_timeout_names_the_lock_path(self, tmp_path):
        root = tmp_path / "results" / "store"
        root.mkdir(parents=True)
        holder = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(f"""
                import fcntl, sys, time
                handle = open({str(root / "index.lock")!r}, "w")
                fcntl.flock(handle, fcntl.LOCK_EX)
                print("locked", flush=True)
                time.sleep(60)
            """)],
            env=child_env(), stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            store = ResultStore(root, lock_timeout_s=0.3)
            with pytest.raises(StoreLockTimeout) as excinfo:
                store.alias("blocked", "0" * 16, "result")
            assert str(root / "index.lock") in str(excinfo.value)
            assert excinfo.value.timeout_s == pytest.approx(0.3)
            # gc takes the same lock (its unreferenced-scan must not
            # race alias writers), so it times out identically.
            with pytest.raises(StoreLockTimeout):
                store.gc(blob_grace_s=0.0)
        finally:
            holder.kill()
            holder.wait()

    def test_lock_released_by_holder_unblocks(self, tmp_path):
        store = ResultStore(tmp_path / "store", lock_timeout_s=5.0)
        store.alias("free", "1" * 16, "result")   # uncontended: no raise
        assert store.latest("free")["key"] == "1" * 16


class TestGcBlobGrace:
    def test_fresh_unreferenced_blob_survives_the_grace(self, tmp_path):
        store = store_for(tmp_path)
        key, path, _created = store.put(
            {"kind": "gc-grace", "n": 1}, {"value": 1}
        )
        # No alias yet: unreferenced, but seconds old.  ``put`` writes
        # the blob before its alias, so a concurrent gc must treat it
        # as an in-flight write and keep it under the default grace.
        report = store.gc()
        assert key not in [k for k, _size in report.unreferenced_blobs]
        assert path.is_file()
        # Past the grace it is ordinary garbage.
        report = store.gc(blob_grace_s=0.0)
        assert key in [k for k, _size in report.unreferenced_blobs]
        assert not path.is_file()


class TestStaleTmpSweep:
    def test_dead_pid_swept_live_pid_kept(self, tmp_path):
        store = store_for(tmp_path)
        store.objects_dir.mkdir(parents=True)
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True,
        )
        dead_pid = int(probe.stdout)
        dead = store.objects_dir / f"blob.json.{dead_pid}.0.tmp"
        live = store.objects_dir / f"blob.json.{os.getpid()}.1.tmp"
        dead.write_text("{}")
        live.write_text("{}")
        swept = store.sweep_stale_tmp(grace_s=1e9)
        assert dead in swept
        assert not dead.exists()
        assert live.exists()   # a live writer is never swept

    def test_unjudgeable_tmp_swept_only_after_grace(self, tmp_path):
        store = store_for(tmp_path)
        store.objects_dir.mkdir(parents=True)
        # No parseable pid in the name: age is the only signal.
        odd = store.objects_dir / "foreign.tmp"
        odd.write_text("{}")
        assert store.sweep_stale_tmp(grace_s=3600.0) == []
        stamp = time.time() - 7200.0
        os.utime(odd, (stamp, stamp))
        assert odd in store.sweep_stale_tmp(grace_s=3600.0)
        assert not odd.exists()

    def test_first_write_sweeps_stale_debris(self, tmp_path):
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True,
        )
        dead_pid = int(probe.stdout)
        store = store_for(tmp_path)
        store.objects_dir.mkdir(parents=True)
        debris = store.objects_dir / f"old.json.{dead_pid}.0.tmp"
        debris.write_text("{}")
        store.put(RECIPE, {"value": 1})
        assert not debris.exists()
