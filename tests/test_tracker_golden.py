"""Golden mitigation-sequence tests for every tracker kernel.

Each tracker is driven by a deterministic seeded activation stream and
the *exact* sequence of mitigations it emits (record-path mitigations
and RFM victims, with their step indices) is pinned against
``tests/data/golden_trackers.json``.  The fixture was captured from the
pre-kernel-rewrite trackers, so these tests prove the allocation-free
integer kernels reproduce the old per-call implementations bit for bit.

Regenerate the fixture (only when a deliberate behavior change is made)
with::

    PYTHONPATH=src python tests/test_tracker_golden.py --regenerate
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.trackers.base import AccountingTracker
from repro.trackers.dsac import DsacLikeTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.mint import MintTracker
from repro.trackers.mithril import MithrilTracker
from repro.trackers.para import ParaTracker
from repro.trackers.prac import PracTracker

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trackers.json"

#: Events per stream.  Large enough to exercise table churn, spillover
#: swaps, RFM interleaving and threshold resets many times over.
STREAM_LENGTH = 4000

#: RFM cadence for the in-DRAM trackers (every N record steps).
RFM_EVERY = 17


def _stream(seed: int, n_rows: int, fractional: bool):
    """Deterministic (row, weight) activation stream.

    Rows are drawn with a skew (a few hot rows, a long light tail) so
    Misra-Gries tables fill, spill and swap.  Fractional weights are
    exact multiples of 1/128 (7 fraction bits), mirroring quantized
    ImPress-P EACTs, so JSON round-trips them exactly.
    """
    rng = random.Random(seed)
    events = []
    for _ in range(STREAM_LENGTH):
        if rng.random() < 0.25:
            row = rng.randrange(4)            # hot aggressors
        else:
            row = rng.randrange(n_rows)       # light tail
        if fractional:
            weight = 1.0 + rng.randrange(0, 256) / 128.0
        else:
            weight = 1.0
        events.append((row, weight))
    return events


def _replay(tracker, events, use_rfm: bool):
    """Drive ``tracker`` with ``events``; return the mitigation log.

    The log is a list of ``[step, kind, row]`` entries: ``"m"`` for a
    record-path mitigation, ``"r"`` for an RFM victim.
    """
    log = []
    for step, (row, weight) in enumerate(events):
        for victim in tracker.record(row, weight, cycle=step):
            log.append([step, "m", victim])
        if use_rfm and step % RFM_EVERY == RFM_EVERY - 1:
            victim = tracker.on_rfm(cycle=step)
            if victim is not None:
                log.append([step, "r", victim])
    return log


def _final_state(tracker):
    """A compact post-stream state digest (counters survive replay)."""
    state = {}
    for attribute in ("mitigations", "alerts"):
        if hasattr(tracker, attribute):
            state[attribute] = getattr(tracker, attribute)
    if hasattr(tracker, "spillover"):
        state["spillover"] = tracker.spillover
    if hasattr(tracker, "total"):
        state["total"] = tracker.total
    return state


#: name -> (tracker factory, stream config, uses RFM replay)
CASES = {
    "graphene_int": (
        lambda: GrapheneTracker(entries=24, internal_threshold=9),
        dict(seed=11, n_rows=160, fractional=False),
        False,
    ),
    "graphene_frac": (
        lambda: GrapheneTracker(
            entries=24, internal_threshold=21.5, fraction_bits=7
        ),
        dict(seed=12, n_rows=160, fractional=True),
        False,
    ),
    "mithril": (
        lambda: MithrilTracker(entries=16, fraction_bits=7),
        dict(seed=13, n_rows=120, fractional=True),
        True,
    ),
    "mint": (
        lambda: MintTracker(
            rfmth=RFM_EVERY, fraction_bits=7, rng=random.Random(99)
        ),
        dict(seed=14, n_rows=64, fractional=True),
        True,
    ),
    "para": (
        lambda: ParaTracker(p=0.02, rng=random.Random(77)),
        dict(seed=15, n_rows=64, fractional=True),
        False,
    ),
    "prac": (
        lambda: PracTracker(alert_threshold=12.5, fraction_bits=7),
        dict(seed=16, n_rows=96, fractional=True),
        False,
    ),
    "dsac": (
        lambda: DsacLikeTracker(entries=12, mitigation_threshold=25),
        dict(seed=17, n_rows=96, fractional=True),
        False,
    ),
    "accounting": (
        AccountingTracker,
        dict(seed=18, n_rows=64, fractional=True),
        False,
    ),
}


def _run_case(name):
    factory, stream_config, use_rfm = CASES[name]
    tracker = factory()
    events = _stream(**stream_config)
    log = _replay(tracker, events, use_rfm)
    return {"log": log, "state": _final_state(tracker)}


def _load_golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_mitigation_sequence(name):
    golden = _load_golden()[name]
    actual = _run_case(name)
    assert actual["log"] == golden["log"]
    assert actual["state"] == pytest.approx(golden["state"])


def test_golden_fixture_covers_every_case():
    assert sorted(_load_golden()) == sorted(CASES)


def test_streams_actually_mitigate():
    """Guard against a fixture of empty logs pinning nothing."""
    golden = _load_golden()
    for name, data in golden.items():
        if name == "accounting":
            assert data["log"] == []  # accounting never mitigates
        else:
            assert len(data["log"]) > 20, name


class TestKernelSurfaceMatchesRecord:
    """Twin instances — one driven through ``record``, one through the
    kernel surface — must mitigate identically on the same stream."""

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_raw_kernel_equivalence(self, name):
        scale = 1 << 7
        factory, stream_config, use_rfm = CASES[name]
        via_record, via_kernel = factory(), factory()
        kernel = via_kernel.raw_kernel(scale)
        if kernel is None:
            pytest.skip("tracker has no raw kernel at this scale")
        events = _stream(**stream_config)
        for step, (row, weight) in enumerate(events):
            # Weights are exact multiples of 1/128, so the raw
            # conversion is lossless in both directions.
            record_count = len(via_record.record(row, weight, cycle=step))
            kernel_count = kernel(row, int(weight * scale))
            assert record_count == kernel_count, (name, step)
            if use_rfm and step % RFM_EVERY == RFM_EVERY - 1:
                assert via_record.on_rfm(step) == via_kernel.on_rfm(step)
        assert _final_state(via_record) == _final_state(via_kernel)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_record_unit_equivalence(self, name):
        factory, stream_config, use_rfm = CASES[name]
        via_record, via_unit = factory(), factory()
        events = _stream(**{**stream_config, "fractional": False})
        for step, (row, _weight) in enumerate(events):
            record_count = len(via_record.record(row, 1.0, cycle=step))
            unit_count = via_unit.record_unit(row)
            assert record_count == unit_count, (name, step)
            if use_rfm and step % RFM_EVERY == RFM_EVERY - 1:
                assert via_record.on_rfm(step) == via_unit.on_rfm(step)
        assert _final_state(via_record) == _final_state(via_unit)


def _regenerate():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {name: _run_case(name) for name in sorted(CASES)}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    total = sum(len(data["log"]) for data in payload.values())
    print(f"wrote {GOLDEN_PATH} ({total} mitigation events)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
