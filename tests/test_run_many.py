"""SweepRunner.run_many: parallel == serial, cache-merge semantics."""

import dataclasses

import pytest

from repro.experiments.common import SweepRunner
from repro.sim.config import DefenseConfig, SystemConfig

SMALL = SystemConfig(n_cores=2, banks_per_channel=8)
REQUESTS = 60

GRID = [
    ("mcf", None, None),
    ("mcf", DefenseConfig(tracker="graphene", scheme="impress-p"), None),
    ("add", None, None),
    ("add", DefenseConfig(tracker="para", scheme="no-rp", trh=200), None),
    ("copy", None, 96.0),
]


def small_runner(jobs=1):
    return SweepRunner(system=SMALL, n_requests=REQUESTS, jobs=jobs)


def as_dicts(results):
    return [dataclasses.asdict(result) for result in results]


class TestParallelSerialEquivalence:
    def test_parallel_results_bit_identical_to_serial(self):
        serial = small_runner(jobs=1)
        parallel = small_runner(jobs=2)
        try:
            expected = serial.run_many(GRID)
            actual = parallel.run_many(GRID)
        finally:
            parallel.close_pool()
        assert as_dicts(actual) == as_dicts(expected)

    def test_parallel_merges_into_cache(self):
        runner = small_runner(jobs=2)
        try:
            results = runner.run_many(GRID)
        finally:
            runner.close_pool()
        stats = runner.cache_stats()
        assert stats.size == len(GRID)
        assert stats.misses == len(GRID)
        # Every later run() on the same points is a pure cache hit —
        # including hits produced through speedup()'s baseline leg.
        for point, result in zip(GRID, results):
            assert runner.run(*point) is result
        assert runner.cache_stats().misses == len(GRID)
        assert runner.cache_stats().hits == len(GRID)

    def test_speedup_after_prefetch_matches_direct(self):
        defense = DefenseConfig(tracker="graphene", scheme="impress-p")
        direct = small_runner(jobs=1)
        prefetched = small_runner(jobs=2)
        try:
            prefetched.run_many([("mcf", defense), ("mcf", None)])
        finally:
            prefetched.close_pool()
        assert prefetched.speedup("mcf", defense) == pytest.approx(
            direct.speedup("mcf", defense)
        )


class TestBatchSemantics:
    def test_results_follow_input_order_with_duplicates(self):
        runner = small_runner()
        points = [GRID[0], GRID[1], GRID[0]]
        results = runner.run_many(points)
        assert results[0] is results[2]
        assert runner.cache_stats().misses == 2  # duplicate computed once

    def test_point_shorthand_forms(self):
        runner = small_runner()
        bare, pair, triple = runner.run_many(
            ["mcf", ("mcf", None), ("mcf", None, None)]
        )
        assert bare is pair is triple

    def test_cached_points_are_hits(self):
        runner = small_runner()
        runner.run("mcf")
        runner.run_many(["mcf", "mcf"])
        stats = runner.cache_stats()
        assert stats.hits == 2
        assert stats.misses == 1

    def test_single_uncached_point_stays_serial(self):
        # One point never pays pool spin-up, even with jobs > 1.
        runner = small_runner(jobs=2)
        runner.run_many([("mcf", None, None)])
        assert runner._pool is None

    def test_close_pool_idempotent(self):
        runner = small_runner(jobs=2)
        try:
            runner.run_many(GRID)
        finally:
            runner.close_pool()
            runner.close_pool()
        assert runner._pool is None
