"""Refresh-postponement analysis: how long can a Row-Press round last?

Section II-D/E: without postponement a row stays open at most one
tREFI; DDR5 allows 5x, DDR4 9x.  The paper notes a 30 ms open row could
flip a bit in a *single* round — but DDR specifications cap open time
far below that.  These tests tie the refresh model to the charge model.
"""

import pytest

from repro.core.charge import ALPHA_LONG, ConservativeLinearModel
from repro.dram.refresh import DDR4_MAX_POSTPONED, RefreshScheduler
from repro.dram.timing import CycleTimings, ddr4_timings

PAPER_TRH = 4800.0  # the Kim et al. characterization the paper cites


class TestSingleRoundFlip:
    def test_30ms_single_round_exceeds_critical_charge(self, timings):
        # The paper's thought experiment: 30 ms of open row leaks far
        # more than TRH units even at alpha = 0.48.
        model = ConservativeLinearModel(alpha=ALPHA_LONG)
        ton_trc = 30e6 / 48.0  # 30 ms in tRC units
        assert model.tcl_of_open_time(ton_trc) > PAPER_TRH

    def test_minimum_flip_time_far_exceeds_spec_limits(self, timings):
        # Solve TCL(tON) = TRH for tON: the single-round flip needs
        # ~0.5 ms of open time, two orders beyond what refresh allows.
        model = ConservativeLinearModel(alpha=ALPHA_LONG)
        ton_trc = (PAPER_TRH - 1.0) / model.alpha + model.tras_trc
        ton_cycles = ton_trc * timings.tRC
        scheduler = RefreshScheduler(timings, postpone=True)
        assert ton_cycles > scheduler.max_row_open_cycles()
        assert ton_cycles > timings.tONMAX

    def test_ddr5_postponed_round_damage(self, timings):
        # 5 tREFI of open row at alpha = 0.48: ~195 activations' worth.
        model = ConservativeLinearModel(alpha=ALPHA_LONG)
        scheduler = RefreshScheduler(timings, postpone=True)
        ton_trc = scheduler.max_row_open_cycles() / timings.tRC
        damage = model.tcl_of_open_time(ton_trc - 0.25)
        assert 150 < damage < 250

    def test_ddr4_postponement_worse_than_ddr5(self):
        ddr4 = CycleTimings.from_ns(ddr4_timings())
        ddr4_sched = RefreshScheduler(
            ddr4, postpone=True, max_postponed=DDR4_MAX_POSTPONED
        )
        model = ConservativeLinearModel(alpha=ALPHA_LONG)
        ddr4_damage = model.tcl_of_open_time(
            ddr4_sched.max_row_open_cycles() / ddr4.tRC
        )
        # 9 x 7800 ns for DDR4 vs 5 x 3900 ns for DDR5: ~3.6x the
        # per-round damage.
        ddr5 = CycleTimings.from_ns(ddr4_timings().with_overrides(
            tREFI=3900.0, tREFW=32e6
        ))
        ddr5_sched = RefreshScheduler(ddr5, postpone=True)
        ddr5_damage = model.tcl_of_open_time(
            ddr5_sched.max_row_open_cycles() / ddr5.tRC
        )
        assert ddr4_damage > 3 * ddr5_damage

    def test_rounds_to_flip_matches_18x_claim(self):
        # One tREFI (DDR4) per round at the mean device rate reduces
        # the required rounds by ~18x vs pure Rowhammer.
        from repro.data.rowpress import ONE_TREFI_TRC, mean_tcl_at

        rounds_rp = PAPER_TRH / mean_tcl_at(ONE_TREFI_TRC)
        rounds_rh = PAPER_TRH
        assert rounds_rh / rounds_rp == pytest.approx(18.0, rel=0.25)
