"""Integration tests for the full system simulator."""

import pytest

from repro.sim.config import DefenseConfig, SystemConfig
from repro.sim.metrics import normalized_weighted_speedup
from repro.sim.system import SystemSimulator, simulate_workload
from repro.workloads.synthetic import rate_mode_traces

SMALL = 150  # requests per core: enough to exercise every path, fast


def small_system(**kwargs):
    defaults = dict(n_cores=2, banks_per_channel=8)
    defaults.update(kwargs)
    return SystemConfig(**defaults)


class TestBasicRuns:
    def test_all_requests_retire(self):
        system = small_system()
        traces = rate_mode_traces("mcf", 2, SMALL, seed=0)
        result = SystemSimulator(system, traces).run()
        assert result.core_requests == [SMALL, SMALL]
        assert all(cycles > 0 for cycles in result.core_cycles)

    def test_deterministic(self):
        system = small_system()
        traces = rate_mode_traces("add", 2, SMALL, seed=1)
        a = SystemSimulator(system, traces).run()
        b = SystemSimulator(system, traces).run()
        assert a.elapsed_cycles == b.elapsed_cycles
        assert a.counts.demand_acts == b.counts.demand_acts

    def test_trace_core_mismatch_rejected(self):
        system = small_system()
        traces = rate_mode_traces("mcf", 1, SMALL)
        with pytest.raises(ValueError):
            SystemSimulator(system, traces)

    def test_stream_has_higher_hit_rate_than_spec(self):
        stream = simulate_workload(
            "copy", system=small_system(), n_requests_per_core=400
        )
        spec = simulate_workload(
            "mcf", system=small_system(), n_requests_per_core=400
        )
        assert stream.hit_rate > spec.hit_rate + 0.2

    def test_refresh_happens_on_long_runs(self):
        result = simulate_workload(
            "xalancbmk", system=small_system(), n_requests_per_core=600
        )
        assert result.counts.refreshes > 0

    def test_empty_traces_complete(self):
        from repro.workloads.trace import Trace

        system = small_system()
        result = SystemSimulator(system, [Trace([]), Trace([])]).run()
        assert result.core_requests == [0, 0]


class TestTmroInSystem:
    def test_tmro_closures_counted(self):
        result = simulate_workload(
            "copy", system=small_system(), n_requests_per_core=300,
            tmro_ns=66.0,
        )
        assert result.tmro_closures > 0

    def test_tmro_slows_stream(self):
        base = simulate_workload(
            "copy", system=small_system(), n_requests_per_core=400
        )
        limited = simulate_workload(
            "copy", system=small_system(), n_requests_per_core=400,
            tmro_ns=36.0,
        )
        assert normalized_weighted_speedup(limited, base) < 1.0


class TestDefensesInSystem:
    def test_graphene_no_overhead_benign(self):
        system = small_system()
        base = simulate_workload(
            "gcc", system=system, n_requests_per_core=300
        )
        protected = simulate_workload(
            "gcc",
            DefenseConfig(tracker="graphene", scheme="impress-p"),
            system=system,
            n_requests_per_core=300,
        )
        speedup = normalized_weighted_speedup(protected, base)
        assert speedup == pytest.approx(1.0, abs=0.02)

    def test_para_mitigations_occur(self):
        result = simulate_workload(
            "mcf",
            DefenseConfig(tracker="para", scheme="no-rp", trh=100),
            system=small_system(),
            n_requests_per_core=400,
        )
        assert result.counts.mitigative_acts > 0

    def test_mint_rfm_issued(self):
        result = simulate_workload(
            "mcf",
            DefenseConfig(tracker="mint", scheme="impress-p", trh=1600,
                          rfmth=20),
            system=small_system(),
            n_requests_per_core=400,
        )
        assert result.counts.rfms > 0

    def test_express_increases_demand_acts_on_stream(self):
        system = small_system()
        base = simulate_workload(
            "copy",
            DefenseConfig(tracker="graphene", scheme="no-rp"),
            system=system, n_requests_per_core=400,
        )
        express = simulate_workload(
            "copy",
            DefenseConfig(tracker="graphene", scheme="express", alpha=1.0),
            system=system, n_requests_per_core=400,
        )
        assert express.counts.demand_acts > base.counts.demand_acts

    def test_defense_validation(self):
        with pytest.raises(ValueError):
            DefenseConfig(tracker="bogus")
        with pytest.raises(ValueError):
            DefenseConfig(scheme="bogus")
        with pytest.raises(ValueError):
            DefenseConfig(trh=-1)

    def test_mint_rfmth_tightens_for_impress_n(self):
        impress_n = DefenseConfig(tracker="mint", scheme="impress-n",
                                  alpha=1.0, rfmth=80)
        assert impress_n.effective_rfmth() == 40
        alpha035 = DefenseConfig(tracker="mint", scheme="impress-n",
                                 alpha=0.35, rfmth=80)
        assert alpha035.effective_rfmth() == 60

    def test_target_scale_override(self):
        defense = DefenseConfig(
            tracker="graphene", scheme="express", trh=4000,
            target_scale=0.62, tmro_ns=186.0,
        )
        assert defense.target_threshold == pytest.approx(2480.0)


class TestAttackTraffic:
    def test_hammer_trace_triggers_graphene(self):
        from repro.dram.address import MopAddressMapper
        from repro.workloads.attacks import hammer_trace

        system = SystemConfig(n_cores=1, banks_per_channel=4,
                              channels=1)
        mapper = system.mapper()
        # FR-FCFS batches queued same-row requests into hits, so only a
        # fraction of the hammer stream becomes activations; size the
        # threshold below the per-row activation count.
        trace = hammer_trace(mapper, bank=0, rows=[10, 30], n_requests=800)
        defense = DefenseConfig(tracker="graphene", scheme="no-rp", trh=150)
        simulator = SystemSimulator(system, [trace], defense)
        result = simulator.run()
        assert result.counts.mitigative_acts > 0
