"""Unit tests for PARA and its probability sizing."""

import random

import pytest

from repro.trackers.para import (
    ParaTracker,
    para_failure_probability,
    para_probability,
)


class TestProbabilitySizing:
    def test_paper_value_at_4k(self):
        # Section III-B: p = 1/184 for TRH = 4K at the 0.1 FIT target.
        assert para_probability(4000) == pytest.approx(1 / 184, rel=0.01)

    def test_halved_threshold_doubles_p(self):
        assert para_probability(2000) == pytest.approx(
            2 * para_probability(4000)
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            para_probability(0)
        with pytest.raises(ValueError):
            para_probability(4000, escape_probability=0.0)

    def test_failure_probability_matches_target(self):
        p = para_probability(4000)
        assert para_failure_probability(p, 4000) <= 3.7e-10 * 1.01

    def test_failure_probability_edges(self):
        assert para_failure_probability(1.0, 100) == 0.0
        assert para_failure_probability(0.0, 100) == 1.0
        with pytest.raises(ValueError):
            para_failure_probability(1.5, 100)


class TestParaTracker:
    def test_deterministic_with_seed(self):
        a = ParaTracker(p=0.5, rng=random.Random(42))
        b = ParaTracker(p=0.5, rng=random.Random(42))
        seq_a = [a.record(i) for i in range(100)]
        seq_b = [b.record(i) for i in range(100)]
        assert seq_a == seq_b

    def test_mitigation_rate_close_to_p(self):
        tracker = ParaTracker(p=0.1, rng=random.Random(7))
        n = 20_000
        hits = sum(1 for i in range(n) if tracker.record(i))
        assert hits / n == pytest.approx(0.1, rel=0.1)

    def test_weight_scales_probability(self):
        # ImPress-P: probability p * EACT.
        tracker = ParaTracker(p=0.05, rng=random.Random(7))
        n = 20_000
        hits = sum(1 for i in range(n) if tracker.record(i, weight=2.0))
        assert hits / n == pytest.approx(0.1, rel=0.1)

    def test_probability_saturates_at_one(self):
        tracker = ParaTracker(p=0.5, rng=random.Random(7))
        assert tracker.record(3, weight=100.0) == [3]

    def test_zero_weight_never_selects(self):
        tracker = ParaTracker(p=1.0, rng=random.Random(7))
        assert tracker.record(3, weight=0.0) == []

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            ParaTracker(p=0.0)
        with pytest.raises(ValueError):
            ParaTracker(p=1.5)

    def test_rejects_negative_weight(self):
        tracker = ParaTracker(p=0.5)
        with pytest.raises(ValueError):
            tracker.record(3, weight=-1.0)

    def test_reset_is_stateless(self):
        tracker = ParaTracker(p=0.5)
        tracker.reset()  # must not raise
