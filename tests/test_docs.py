"""Docs stay in sync with the code: coverage, links, docstrings."""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.experiments import registry

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def docs_text():
    paths = [REPO_ROOT / "README.md"]
    paths += sorted((REPO_ROOT / "docs").rglob("*.md"))
    assert paths[0].exists(), "README.md is missing"
    assert len(paths) > 1, "docs/ tree is missing"
    return "\n".join(path.read_text() for path in paths)


class TestDocsCoverage:
    def test_readme_and_docs_exist(self):
        assert (REPO_ROOT / "README.md").is_file()
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "adding_an_experiment.md").is_file()

    def test_every_registered_experiment_in_docs(self, docs_text):
        for name in registry.names():
            assert f"`{name}`" in docs_text, (
                f"experiment {name!r} is not documented"
            )

    def test_every_cli_subcommand_in_docs(self, docs_text):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        for command in subparsers.choices:
            assert command in docs_text, (
                f"CLI subcommand {command!r} is not documented"
            )

    def test_tracker_matrix_names_all_trackers(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for tracker in ("PRAC", "MINT", "Graphene", "PARA", "Mithril",
                        "DSAC"):
            assert tracker in readme


class TestLinks:
    def test_relative_markdown_links_resolve(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_links.py")],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr or result.stdout


def _missing_docstrings(package_dir):
    missing = []
    for path in sorted(package_dir.glob("*.py")):
        tree = ast.parse(path.read_text())

        def walk(node, prefix=""):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    if (
                        not child.name.startswith("_")
                        and ast.get_docstring(child) is None
                    ):
                        missing.append(f"{path.name}:{prefix}{child.name}")
                    walk(child, f"{prefix}{child.name}.")

        walk(tree)
    return missing


class TestDocstrings:
    @pytest.mark.parametrize("package", ["trackers", "core"])
    def test_public_api_is_docstringed(self, package):
        missing = _missing_docstrings(SRC / package)
        assert not missing, (
            "public names without docstrings: " + ", ".join(missing)
        )
