"""Chaos matrix: real worker subprocesses dying at protocol instants.

Each case spawns actual ``repro worker`` subprocesses against a shared
queue directory, injects one fault, and asserts the sweep still
completes with result blobs *byte-identical* to a serial reference run
(computed once per module).  The in-process integration claims live in
``test_distrib_sweep.py``; this file is about what happens when a
worker genuinely dies — ``os._exit`` mid-protocol, a frozen heartbeat,
a corrupted claim file — which cannot be simulated inside pytest's own
process.

Tasks are sized (~1.3s of simulation) so a 0.5s lease expires under a
frozen or killed worker *mid-task*, making the reclaim path load-
bearing rather than decorative.
"""

import pytest

from repro.distrib.chaos import run_chaos_case
from repro.distrib.coordinator import run_serial_sweep, shard_points
from repro.distrib.worker import KILL_MID_PUT_EXIT, KILL_MID_TASK_EXIT
from repro.results.store import store_for
from repro.scenarios.spec import ScenarioSpec
from repro.sim.config import SystemConfig

pytestmark = pytest.mark.slow

#: Long enough that a 0.5s lease expires mid-simulation, short enough
#: that the whole matrix stays in tens of seconds.
CHAOS_REQUESTS = 60_000
CHAOS_STRIDE = 300_000
CHAOS_LEASE_S = 0.5


def chaos_recipes():
    system = SystemConfig(n_cores=2, banks_per_channel=8)
    specs = [
        ScenarioSpec.benign("mcf", system=system),
        ScenarioSpec.benign("add_copy", system=system),
    ]
    return shard_points(specs, CHAOS_REQUESTS, 0)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """The serial run every chaos case compares bytes against."""
    store = store_for(tmp_path_factory.mktemp("serial"))
    run_serial_sweep(chaos_recipes(), store)
    return store


def run_case(tmp_path, serial_reference, fault):
    return run_chaos_case(
        tmp_path,
        chaos_recipes(),
        fault=fault,
        n_workers=2,
        lease_s=CHAOS_LEASE_S,
        checkpoint_stride=CHAOS_STRIDE,
        timeout_s=300.0,
        serial_store=serial_reference,
    )


def assert_byte_identical(report):
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.outcome.results) == 2
    assert not report.mismatched_keys


class TestChaosMatrix:
    def test_fault_free_fleet(self, tmp_path, serial_reference):
        report = run_case(tmp_path, serial_reference, None)
        assert_byte_identical(report)
        assert all(code == 0 for code in report.worker_exit_codes)

    def test_worker_kill_mid_task(self, tmp_path, serial_reference):
        report = run_case(
            tmp_path, serial_reference, "worker-kill-mid-task"
        )
        assert_byte_identical(report)
        # The saboteur really died at its first checkpoint...
        assert KILL_MID_TASK_EXIT in report.worker_exit_codes
        # ...and left a resumable checkpoint plus an expired lease
        # behind for the survivor.
        assert report.fault_fired

    def test_worker_kill_mid_put(self, tmp_path, serial_reference):
        report = run_case(
            tmp_path, serial_reference, "worker-kill-mid-put"
        )
        assert_byte_identical(report)
        assert KILL_MID_PUT_EXIT in report.worker_exit_codes
        # Dying between the temp write and the rename leaves an
        # orphaned *.tmp in the distributed store; gc must report it
        # (dry run) and then remove it without touching the results.
        dist_store = store_for(tmp_path / "dist")
        dry = dist_store.gc(dry_run=True, tmp_grace_s=1e9)
        assert dry.stale_tmp, "expected the torn-write *.tmp orphan"
        assert dry.reclaimable_bytes > 0
        real = dist_store.gc(tmp_grace_s=1e9)
        assert real.stale_tmp
        after = dist_store.gc(dry_run=True, tmp_grace_s=1e9)
        assert not after.stale_tmp
        for key in report.outcome.result_keys:
            assert dist_store.get(key) is not None

    def test_worker_freeze_heartbeat(self, tmp_path, serial_reference):
        report = run_case(
            tmp_path, serial_reference, "worker-freeze-heartbeat"
        )
        assert_byte_identical(report)
        # The frozen straggler's lease expired and was reclaimed; its
        # own late completion then deduplicated, so every worker still
        # exits cleanly.
        assert report.outcome.reclaimed >= 1
        assert all(code == 0 for code in report.worker_exit_codes)

    def test_corrupt_claim_file(self, tmp_path, serial_reference):
        report = run_case(
            tmp_path, serial_reference, "corrupt-claim-file"
        )
        assert_byte_identical(report)
        assert report.fault_fired
        assert report.notes  # records which claim was corrupted


class TestGracefulWorkerShutdown:
    def test_sigterm_releases_claim_and_exits_zero(self, tmp_path):
        """SIGTERM = deploy rollover: release penalty-free, exit 0."""
        import signal

        from repro.distrib.chaos import spawn_worker, wait_for_claim
        from repro.distrib.queue import FileWorkQueue, _read_json
        from repro.distrib.worker import checkpoint_recipe

        recipes = chaos_recipes()[:1]
        queue = FileWorkQueue(tmp_path / "queue", lease_s=30.0)
        store = store_for(tmp_path)
        task_id = queue.submit(recipes[0]).task_id
        proc = spawn_worker(
            tmp_path / "queue", tmp_path, 30.0, 100_000,
            log_path=tmp_path / "worker.log",
        )
        try:
            wait_for_claim(queue, timeout_s=60.0)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        # The claim went back to pending with the attempt uncounted
        # (not a lease expiry, not a failure) and the checkpoint is
        # durable for the next claimant to resume from.
        pending = _read_json(queue._path("pending", task_id))
        assert pending is not None, "claim was not released to pending"
        assert pending["attempts"] == 0
        assert "released_by" in pending
        assert queue.status().claimed == 0
        checkpoint = store.fetch(checkpoint_recipe(task_id))
        assert checkpoint is not None
        log = (tmp_path / "worker.log").read_text()
        assert "graceful shutdown" in log
        assert "1 released" in log
