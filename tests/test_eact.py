"""Unit and property tests for EACT arithmetic and fixed-point counters."""

import pytest
from hypothesis import given, strategies as st

from repro.core.eact import (
    DEFAULT_FRACTION_BITS,
    FixedPointCounter,
    eact_from_times,
    quantize_eact,
)


class TestEactFromTimes:
    def test_minimal_access_is_one(self, timings):
        # tON = tRAS plus tPRE equals tRC: EACT = 1 (Fig 11).
        assert eact_from_times(
            timings.tRAS, timings.tPRE, timings.tRC
        ) == pytest.approx(1.0)

    def test_two_trc_access(self, timings):
        assert eact_from_times(
            timings.tRAS + timings.tRC, timings.tPRE, timings.tRC
        ) == pytest.approx(2.0)

    def test_fractional(self, timings):
        # tON = tRAS + tRC/2 gives EACT = 1.5, the paper's example.
        assert eact_from_times(
            timings.tRAS + timings.tRC // 2, timings.tPRE, timings.tRC
        ) == pytest.approx(1.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            eact_from_times(10, 10, 0)
        with pytest.raises(ValueError):
            eact_from_times(-1, 10, 128)


class TestQuantize:
    def test_full_precision_exact_for_7bit_values(self):
        assert quantize_eact(1.5, 7) == 1.5
        assert quantize_eact(129 / 128, 7) == 129 / 128

    def test_truncates_down(self):
        assert quantize_eact(1.999, 0) == 1.0
        assert quantize_eact(1.26, 2) == 1.25

    def test_never_below_one_for_real_accesses(self):
        assert quantize_eact(1.004, 7) >= 1.0

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            quantize_eact(1.0, -1)

    @given(
        st.floats(min_value=1.0, max_value=100.0),
        st.integers(min_value=0, max_value=7),
    )
    def test_quantized_never_exceeds_true(self, eact, bits):
        quantized = quantize_eact(eact, bits)
        assert quantized <= eact + 1e-9

    @given(
        st.floats(min_value=1.0, max_value=100.0),
        st.integers(min_value=0, max_value=7),
    )
    def test_truncation_error_bounded(self, eact, bits):
        quantized = quantize_eact(eact, bits)
        assert eact - quantized < 2.0**-bits + 1e-9


class TestFixedPointCounter:
    def test_integer_increments(self):
        counter = FixedPointCounter(fraction_bits=0)
        counter.increment()
        counter.increment()
        assert counter.value == 2.0

    def test_fractional_accumulation(self):
        counter = FixedPointCounter(fraction_bits=7)
        for _ in range(4):
            counter.increment(1.25)
        assert counter.value == pytest.approx(5.0)

    def test_default_is_7_bits(self):
        assert FixedPointCounter().fraction_bits == DEFAULT_FRACTION_BITS

    def test_reset(self):
        counter = FixedPointCounter()
        counter.increment(3.5)
        counter.reset()
        assert counter.value == 0.0

    def test_storage_bits(self):
        counter = FixedPointCounter(fraction_bits=7)
        # Counting to 1333 needs 11 integer bits plus the 7 fractional.
        assert counter.storage_bits(1333) == 18

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            FixedPointCounter().increment(-1.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50
        )
    )
    def test_accumulation_close_to_exact_sum(self, increments):
        counter = FixedPointCounter(fraction_bits=7)
        for value in increments:
            counter.increment(value)
        exact = sum(increments)
        # Each increment truncates by at most one quantum.
        assert exact - counter.value <= len(increments) / 128 + 1e-9
        assert counter.value <= exact + 1e-9
