"""Unit tests for the Row-Press mitigation schemes."""

import pytest

from repro.core.mitigation import (
    ExpressScheme,
    ImpressNScheme,
    ImpressPScheme,
    NoRpScheme,
)
from repro.trackers.base import AccountingTracker


def make(scheme_cls, timings, **kwargs):
    tracker = AccountingTracker()
    return scheme_cls([tracker], timings, **kwargs), tracker


class TestNoRp:
    def test_records_one_per_act(self, timings):
        scheme, tracker = make(NoRpScheme, timings)
        scheme.on_activate(0, 7, 0)
        scheme.on_row_closed(0, 7, 0, timings.tREFI)
        assert tracker.recorded_for(7) == 1.0

    def test_no_tmro(self, timings):
        scheme, _ = make(NoRpScheme, timings)
        assert scheme.tmro_cycles() is None

    def test_requires_trackers(self, timings):
        with pytest.raises(ValueError):
            NoRpScheme([], timings)


class TestExpress:
    def test_publishes_tmro(self, timings):
        scheme, _ = make(ExpressScheme, timings, tmro_cycles=224)
        assert scheme.tmro_cycles() == 224

    def test_rejects_tmro_below_tras(self, timings):
        with pytest.raises(ValueError):
            ExpressScheme([AccountingTracker()], timings, tmro_cycles=10)

    def test_records_like_no_rp(self, timings):
        scheme, tracker = make(ExpressScheme, timings, tmro_cycles=224)
        scheme.on_activate(0, 7, 0)
        assert tracker.recorded_for(7) == 1.0


class TestImpressN:
    def test_act_records_one(self, timings):
        scheme, tracker = make(ImpressNScheme, timings)
        scheme.on_activate(0, 7, 0)
        assert tracker.recorded_for(7) == 1.0

    def test_full_window_earns_credit(self, timings):
        scheme, tracker = make(ImpressNScheme, timings)
        trc = timings.tRC
        scheme.on_activate(0, 7, 0)
        # Open from 0 (visible from tACT) through three full windows.
        scheme.on_row_closed(0, 7, 0, 3 * trc)
        # Visible at boundaries tRC, 2 tRC, 3 tRC -> two boundary pairs.
        assert tracker.recorded_for(7) == 1.0 + 2.0

    def test_fig10_decoy_earns_no_credit(self, timings):
        # ACT within tACT of the boundary, open for tRC + tRAS: the row
        # is visible at only one boundary, so no window credit (Eq 5).
        scheme, tracker = make(ImpressNScheme, timings)
        trc = timings.tRC
        act = trc - timings.tACT // 2
        scheme.on_activate(0, 7, act)
        scheme.on_row_closed(0, 7, act, act + trc + timings.tRAS)
        assert tracker.recorded_for(7) == 1.0

    def test_trefi_open_earns_many_credits(self, timings):
        scheme, tracker = make(ImpressNScheme, timings)
        scheme.on_activate(0, 7, 0)
        scheme.on_row_closed(0, 7, 0, timings.tREFI)
        credits = tracker.recorded_for(7) - 1.0
        expected = timings.tREFI // timings.tRC - 1
        assert credits == pytest.approx(expected)

    def test_storage_is_four_bytes(self, timings):
        scheme, _ = make(ImpressNScheme, timings)
        assert scheme.storage_bytes_per_bank() == 4


class TestImpressP:
    def test_act_records_nothing_until_close(self, timings):
        scheme, tracker = make(ImpressPScheme, timings)
        scheme.on_activate(0, 7, 0)
        assert tracker.recorded_for(7) == 0.0

    def test_minimal_access_records_one(self, timings):
        scheme, tracker = make(ImpressPScheme, timings)
        scheme.on_activate(0, 7, 0)
        scheme.on_row_closed(0, 7, 0, timings.tRAS)
        assert tracker.recorded_for(7) == pytest.approx(1.0)

    def test_fractional_eact(self, timings):
        scheme, tracker = make(ImpressPScheme, timings)
        scheme.on_activate(0, 7, 0)
        # tON = tRAS + tRC/2: EACT = 1.5 (the paper's example).
        scheme.on_row_closed(0, 7, 0, timings.tRAS + timings.tRC // 2)
        assert tracker.recorded_for(7) == pytest.approx(1.5)

    def test_quantization_truncates(self, timings):
        scheme, tracker = make(ImpressPScheme, timings, fraction_bits=0)
        scheme.on_activate(0, 7, 0)
        scheme.on_row_closed(0, 7, 0, timings.tRAS + timings.tRC - 1)
        assert tracker.recorded_for(7) == 1.0

    def test_fig10_decoy_fully_charged(self, timings):
        # Against ImPress-P the decoy pattern gains nothing: the full
        # open time is measured regardless of window phase.
        scheme, tracker = make(ImpressPScheme, timings)
        trc = timings.tRC
        act = trc - timings.tACT // 2
        close = act + trc + timings.tRAS
        scheme.on_activate(0, 7, act)
        scheme.on_row_closed(0, 7, act, close)
        assert tracker.recorded_for(7) == pytest.approx(2.0)

    def test_rejects_negative_bits(self, timings):
        with pytest.raises(ValueError):
            ImpressPScheme([AccountingTracker()], timings, fraction_bits=-1)

    def test_per_bank_isolation(self, timings):
        trackers = [AccountingTracker(), AccountingTracker()]
        scheme = ImpressPScheme(trackers, timings)
        scheme.on_activate(1, 7, 0)
        scheme.on_row_closed(1, 7, 0, timings.tRAS)
        assert trackers[0].recorded_for(7) == 0.0
        assert trackers[1].recorded_for(7) == pytest.approx(1.0)
