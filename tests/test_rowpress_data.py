"""Tests for the re-derived Row-Press characterization datasets."""

import pytest

from repro.core.charge import ALPHA_LONG, ALPHA_SHORT, fit_clm
from repro.data.rowpress import (
    FIG4_TMRO_THRESHOLD,
    NINE_TREFI_TRC,
    ONE_TREFI_TRC,
    SHORT_DURATION_POINTS,
    long_duration_devices,
    long_duration_points,
    mean_tcl_at,
    relative_threshold_at_tmro,
)


class TestShortDuration:
    def test_clm_fit_recovers_paper_alpha(self):
        # Fig 8: the conservative cover of the short-duration data is
        # alpha = 0.35.
        assert fit_clm(SHORT_DURATION_POINTS).alpha == pytest.approx(0.35)

    def test_minimum_point_is_rowhammer(self):
        assert SHORT_DURATION_POINTS[0] == (1.0, 1.0)

    def test_sublinear_secants(self):
        # Charge loss per unit time decreases with duration.
        slopes = [
            (tcl - 1.0) / (total - 1.0)
            for total, tcl in SHORT_DURATION_POINTS
            if total > 1.0
        ]
        assert all(a >= b - 1e-9 for a, b in zip(slopes, slopes[1:]))


class TestFig4Table:
    def test_anchor_062_at_186ns(self):
        assert relative_threshold_at_tmro(186.0) == pytest.approx(0.62)

    def test_no_reduction_at_tras(self):
        assert relative_threshold_at_tmro(36.0) == 1.0

    def test_monotone_decreasing(self):
        values = [t for _, t in FIG4_TMRO_THRESHOLD]
        assert values == sorted(values, reverse=True)

    def test_interpolation_between_points(self):
        mid = relative_threshold_at_tmro(51.0)
        assert 0.826 < mid < 1.0

    def test_clamps_outside_range(self):
        assert relative_threshold_at_tmro(10.0) == 1.0
        assert relative_threshold_at_tmro(10_000.0) == FIG4_TMRO_THRESHOLD[-1][1]


class TestLongDuration:
    def test_21_devices_three_vendors(self):
        devices = long_duration_devices()
        assert len(devices) == 21
        by_vendor = {}
        for device in devices:
            by_vendor.setdefault(device.vendor, []).append(device)
        assert len(by_vendor["Samsung"]) == 8
        assert len(by_vendor["Hynix"]) == 6
        assert len(by_vendor["Micron"]) == 7

    def test_alpha_048_covers_all_devices(self):
        # Fig 7: no device point lies above the alpha = 0.48 line.
        fitted = fit_clm(long_duration_points())
        assert fitted.alpha <= ALPHA_LONG
        assert fitted.alpha > ALPHA_LONG - 0.03  # worst device is close

    def test_mean_reduction_about_18x_at_one_trefi(self):
        # Section II-D: one tREFI of Row-Press is worth ~18x activations.
        assert mean_tcl_at(ONE_TREFI_TRC) == pytest.approx(18.0, rel=0.25)

    def test_mean_reduction_about_156x_at_nine_trefi(self):
        assert mean_tcl_at(NINE_TREFI_TRC) == pytest.approx(156.0, rel=0.25)

    def test_rowpress_always_slower_than_rowhammer(self):
        # Key observation 1: even the worst device leaks less than RH
        # would over the same duration.
        for time_trc, tcl in long_duration_points():
            assert tcl < time_trc

    def test_short_alpha_below_long_alpha(self):
        assert ALPHA_SHORT < ALPHA_LONG
