"""Shared fixtures for the test suite."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: simulation-backed tests (seconds, not ms)"
    )

from repro.dram.timing import CycleTimings, DramClock, ddr5_timings


@pytest.fixture(scope="session")
def timings() -> CycleTimings:
    """Table I converted to cycles at the paper's 2.66 GHz clock."""
    return CycleTimings.from_ns(ddr5_timings())


@pytest.fixture(scope="session")
def clock() -> DramClock:
    return DramClock()
