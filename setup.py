"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs a legacy setup.py path
when bdist_wheel is unavailable; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
