#!/usr/bin/env python
"""Attack analysis: how Row-Press breaks a Rowhammer-only defense.

Replays three attack patterns — pure Rowhammer, short Row-Press and a
tREFI-long Row-Press — against Graphene with and without ImPress-P,
tracking the victims' accumulated charge with the unified model.
"""

from repro.core.charge import ALPHA_LONG, ConservativeLinearModel
from repro.core.mitigation import ImpressPScheme, NoRpScheme
from repro.dram.timing import default_cycle_timings
from repro.security.simulation import run_security_simulation
from repro.trackers.graphene import GrapheneTracker
from repro.workloads.attacks import (
    decoy_pattern_accesses,
    row_press_accesses,
    rowhammer_accesses,
)

TRH = 256.0  # scaled-down threshold so the demo runs instantly


def build(scheme_cls):
    tracker = GrapheneTracker(
        entries=16, internal_threshold=TRH / 4, fraction_bits=7
    )
    return scheme_cls([tracker], default_cycle_timings())


def main() -> None:
    timings = default_cycle_timings()
    model = ConservativeLinearModel(alpha=ALPHA_LONG)
    trefi_ton = timings.tREFI - timings.tPRE

    print(f"Charge per round (alpha = {ALPHA_LONG}):")
    print(f"  Rowhammer ACT:           1.00 units")
    print(f"  Row-Press 1 tREFI round: "
          f"{model.tcl_of_open_time(trefi_ton / timings.tRC):.1f} units")

    patterns = {
        "rowhammer x400": rowhammer_accesses(1000, 400, timings),
        "row-press tREFI x40": row_press_accesses(
            1000, 40, trefi_ton, timings
        ),
        "fig10 decoy x400": decoy_pattern_accesses(1000, 2000, 400, timings),
    }
    print(f"\n{'pattern':>22} | {'no-RP defense':>22} | {'ImPress-P':>22}")
    for name, accesses in patterns.items():
        cells = []
        for scheme_cls in (NoRpScheme, ImpressPScheme):
            outcome = run_security_simulation(
                build(scheme_cls), accesses, TRH, ALPHA_LONG, timings
            )
            verdict = "BIT FLIP" if outcome.flipped else "safe"
            cells.append(
                f"{verdict:>9} ({outcome.margin:5.2f} TRH)"
            )
        print(f"{name:>22} | {cells[0]:>22} | {cells[1]:>22}")

    print(
        "\nThe Rowhammer-only defense stops hammering but lets the "
        "long-open-row patterns\nreach critical charge; ImPress-P "
        "converts the open time into EACT and stays safe."
    )


if __name__ == "__main__":
    main()
