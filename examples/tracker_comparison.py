#!/usr/bin/env python
"""Compare all four trackers under every Row-Press scheme.

For each (tracker, scheme) pair this prints performance on a streaming
workload, storage cost, and the provisioning threshold — the trade-off
space of Table III and Section VI-C.
"""

from repro.sim.config import DefenseConfig
from repro.sim.metrics import normalized_weighted_speedup
from repro.sim.system import simulate_workload
from repro.trackers.sizing import (
    graphene_storage,
    mint_storage_bytes,
    mithril_storage,
)

TRH = 4000.0
MINT_TRH = 1600.0
WORKLOAD = "triad"
REQUESTS = 800


def storage_label(tracker: str, scheme: str, alpha: float) -> str:
    bits = 7 if scheme == "impress-p" else 0
    factor = 1.0 + alpha if scheme in ("express", "impress-n") else 1.0
    if tracker == "graphene":
        estimate = graphene_storage(TRH, factor, bits)
        return (f"{estimate.entries_per_bank} entries/bank, "
                f"{estimate.kib_per_channel:.0f} KiB/ch")
    if tracker == "mithril":
        estimate = mithril_storage(TRH, 80, factor, bits)
        return (f"{estimate.entries_per_bank} entries/bank, "
                f"{estimate.kib_per_channel:.0f} KiB/ch")
    if tracker == "mint":
        return f"{mint_storage_bytes(bits)} B/bank"
    return "p register only"


def main() -> None:
    plans = [
        ("graphene", ("no-rp", "express", "impress-n", "impress-p"), TRH),
        ("para", ("no-rp", "express", "impress-n", "impress-p"), TRH),
        ("mithril", ("no-rp", "impress-n", "impress-p"), TRH),
        ("mint", ("no-rp", "impress-n", "impress-p"), MINT_TRH),
    ]
    print(f"Workload '{WORKLOAD}', TRH = {TRH:.0f} "
          f"(MINT at its RFM-80 figure of merit, {MINT_TRH:.0f}):\n")
    for tracker, schemes, trh in plans:
        baseline = simulate_workload(
            WORKLOAD,
            DefenseConfig(tracker=tracker, scheme="no-rp", trh=trh),
            n_requests_per_core=REQUESTS,
        )
        for scheme in schemes:
            defense = DefenseConfig(
                tracker=tracker, scheme=scheme, trh=trh, alpha=1.0
            )
            result = simulate_workload(
                WORKLOAD, defense, n_requests_per_core=REQUESTS
            )
            perf = normalized_weighted_speedup(result, baseline)
            print(f"{tracker:>9} + {scheme:<10} perf {perf:5.3f}  "
                  f"target TRH {defense.target_threshold:6.0f}  "
                  f"[{storage_label(tracker, scheme, 1.0)}]")
        print()
    print("ExPress is absent for Mithril/MINT: a memory-controller tMRO "
          "is invisible to in-DRAM trackers (Section II-E).")


if __name__ == "__main__":
    main()
