#!/usr/bin/env python
"""Size a Row-Press-safe defense for a given Rowhammer threshold.

Given a target TRH, this walks the provisioning math for each scheme:
what threshold the tracker must actually be built for, how many entries
that costs, and what the verifier says the resulting T* is.
"""

import argparse

from repro.core.analysis import impress_n_effective_threshold
from repro.dram.timing import default_cycle_timings
from repro.security.verifier import effective_threshold
from repro.trackers.para import para_probability
from repro.trackers.sizing import (
    graphene_entries,
    graphene_storage,
    mithril_entries,
)

SCHEMES = ("no-rp", "express", "impress-n", "impress-p")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trh", type=float, default=4000.0,
                        help="Rowhammer threshold to defend (default 4000)")
    parser.add_argument("--alpha", type=float, default=1.0,
                        help="charge-leakage ratio for ExPress/ImPress-N")
    args = parser.parse_args()
    trh, alpha = args.trh, args.alpha
    timings = default_cycle_timings()
    tmro = timings.tRAS + timings.tRC

    print(f"Provisioning for TRH = {trh:.0f}, alpha = {alpha}\n")
    header = (f"{'scheme':>10} {'target T':>9} {'graphene':>9} "
              f"{'mithril':>8} {'PARA p':>9} {'verified T*':>12}")
    print(header)
    for scheme in SCHEMES:
        if scheme in ("express", "impress-n"):
            target = impress_n_effective_threshold(trh, alpha)
        else:
            target = trh
        bits = 7 if scheme == "impress-p" else 0
        report = effective_threshold(
            scheme,
            trh,
            alpha=alpha,
            timings=timings,
            tmro_cycles=tmro if scheme == "express" else None,
            fraction_bits=bits,
        )
        print(
            f"{scheme:>10} {target:9.0f} {graphene_entries(target):9d} "
            f"{mithril_entries(target):8d} {para_probability(target):9.5f} "
            f"{report.relative_threshold:11.2f}x"
        )
    base = graphene_storage(trh, 1.0)
    precise = graphene_storage(trh, 1.0, fraction_bits=7)
    doubled = graphene_storage(trh, 1.0 + alpha)
    print(
        f"\nGraphene SRAM per channel: no-RP {base.kib_per_channel:.0f} KiB, "
        f"ExPress/ImPress-N {doubled.kib_per_channel:.0f} KiB, "
        f"ImPress-P {precise.kib_per_channel:.0f} KiB "
        f"({precise.kib_per_channel / base.kib_per_channel:.2f}x)"
    )
    print("\nNote: the verified T* for no-rp collapses because nothing "
          "limits row-open time;\nImPress-P is the only scheme keeping "
          "T* = TRH with 1x entries.")


if __name__ == "__main__":
    main()
