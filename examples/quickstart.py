#!/usr/bin/env python
"""Quickstart: protect a simulated DDR5 system against Row-Press.

Runs one STREAM workload against four configurations — unprotected,
Rowhammer-only (No-RP), ExPress, and ImPress-P — and shows what each
costs and what each actually defends against.
"""

from repro.core.analysis import impress_n_effective_threshold
from repro.dram.timing import default_cycle_timings
from repro.security.verifier import effective_threshold
from repro.sim.config import DefenseConfig
from repro.sim.metrics import normalized_weighted_speedup
from repro.sim.system import simulate_workload

TRH = 4000.0
WORKLOAD = "add"
REQUESTS = 1000


def main() -> None:
    timings = default_cycle_timings()

    print(f"== Performance on '{WORKLOAD}' (TRH = {TRH:.0f}) ==")
    baseline = simulate_workload(WORKLOAD, n_requests_per_core=REQUESTS)
    print(f"unprotected: hit rate {baseline.hit_rate:.3f}, "
          f"{baseline.elapsed_cycles} cycles")

    configs = {
        "graphene no-rp": DefenseConfig(tracker="graphene", scheme="no-rp",
                                        trh=TRH),
        "graphene express": DefenseConfig(tracker="graphene",
                                          scheme="express", trh=TRH,
                                          alpha=1.0),
        "graphene impress-p": DefenseConfig(tracker="graphene",
                                            scheme="impress-p", trh=TRH),
    }
    for name, defense in configs.items():
        result = simulate_workload(
            WORKLOAD, defense, n_requests_per_core=REQUESTS
        )
        speedup = normalized_weighted_speedup(result, baseline)
        print(f"{name:>20}: perf {speedup:.3f}, "
              f"demand ACTs {result.counts.demand_acts}, "
              f"mitigative ACTs {result.counts.mitigative_acts}")

    print("\n== Security: effective threshold under Row-Press ==")
    for scheme, alpha in (("no-rp", 0.48), ("impress-n", 1.0),
                          ("impress-p", 1.0)):
        report = effective_threshold(scheme, TRH, alpha=alpha,
                                     timings=timings)
        print(f"{scheme:>20}: T* = {report.effective_threshold:7.1f} "
              f"({report.relative_threshold:.2f} TRH), "
              f"worst pattern: {report.worst_pattern}")
    print(f"\nEq 5 check: ImPress-N at alpha=1 predicts "
          f"T* = {impress_n_effective_threshold(TRH, 1.0):.0f}")


if __name__ == "__main__":
    main()
