#!/usr/bin/env python
"""Reproduce the tMRO performance sweep of Figure 3 on a small scale.

Shows why ExPress's row-open-time limit is expensive: streaming
workloads lose their row-buffer hits at low tMRO while SPEC-like
workloads barely notice.
"""

from repro.experiments.common import SweepRunner
from repro.sim.metrics import geomean

TMROS_NS = (36.0, 66.0, 96.0, 186.0, 336.0, 636.0)
SPEC = ("mcf", "gcc", "bwaves")
STREAM = ("add", "copy", "triad")
REQUESTS = 800


def main() -> None:
    runner = SweepRunner(n_requests=REQUESTS)
    print(f"{'workload':>10}" + "".join(f"{t:>9.0f}" for t in TMROS_NS))
    per_category = {"SPEC": SPEC, "STREAM": STREAM}
    for category, names in per_category.items():
        rows = {}
        for name in names:
            values = [
                runner.speedup(name, None, tmro_ns=tmro)
                for tmro in TMROS_NS
            ]
            rows[name] = values
            print(f"{name:>10}" + "".join(f"{v:9.3f}" for v in values))
        means = [
            geomean([rows[name][i] for name in names])
            for i in range(len(TMROS_NS))
        ]
        print(f"{category + ' GM':>10}"
              + "".join(f"{v:9.3f}" for v in means))
        print()
    print("Columns are tMRO in ns; values are performance normalized to "
          "the unlimited-tON baseline.")


if __name__ == "__main__":
    main()
