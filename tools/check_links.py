#!/usr/bin/env python3
"""Check that relative markdown links in README.md and docs/ resolve.

Scans every ``[text](target)`` link; targets with a URL scheme or a
pure in-page anchor are skipped, everything else must exist on disk
relative to the file containing the link.  Exits non-zero listing the
broken links (used by CI's docs step and tests/test_docs.py).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def markdown_files(root: Path) -> list[Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").rglob("*.md")))
    return files


def broken_links(root: Path) -> list[str]:
    problems = []
    for path in markdown_files(root):
        for target in LINK_RE.findall(path.read_text()):
            if SCHEME_RE.match(target) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    problems = broken_links(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if problems else 'ok'}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
