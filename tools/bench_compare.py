#!/usr/bin/env python3
"""Compare BENCH_<n>.json artifacts and fail on gross regression.

Usage (the CI perf-smoke gate):

    python tools/bench_compare.py benchmarks/baselines bench-artifacts \
        --max-regression 0.30

Each argument is a ``BENCH_<n>.json`` file or a directory holding them
(the newest artifact is picked; directories prefer the newest artifact
whose quick/full mode matches the other side).  Benchmarks are matched
by name, and only rows with identical ``n_requests``, ``n_cores`` and
``engine`` are compared — throughput is not comparable across different
run shapes or engine tiers.

Trajectory mode prints the whole committed sequence instead of one
pairwise gate — each row's normalized throughput from its first
appearance (absolute) through every later artifact (ratio vs that
baseline):

    python tools/bench_compare.py --trajectory benchmarks/baselines

Because baseline and current may come from different machines, each
throughput is normalized by its artifact's ``calibration_ops_per_sec``
(a pure-Python fixed-work score recorded at measurement time) before
computing the ratio; ``--no-normalize`` compares raw numbers.  The
script exits non-zero if any compared benchmark's normalized throughput
dropped by more than ``--max-regression``, or if nothing was comparable
(so a config drift cannot silently disable the gate).

This script deliberately has no dependencies beyond the standard
library so CI can run it without installing the package.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional

ARTIFACT_PATTERN = re.compile(r"BENCH_(\d+)\.json$")


def artifact_index(path: Path) -> Optional[int]:
    match = ARTIFACT_PATTERN.search(path.name)
    return int(match.group(1)) if match else None


def artifacts_in(directory: Path) -> List[Path]:
    found = [
        path for path in directory.iterdir()
        if artifact_index(path) is not None
    ]
    return sorted(found, key=artifact_index)


def resolve(spec: str, prefer_quick: Optional[bool] = None) -> Path:
    """A BENCH file from a path-or-directory spec."""
    path = Path(spec)
    if path.is_file():
        return path
    if path.is_dir():
        candidates = artifacts_in(path)
        if not candidates:
            raise FileNotFoundError(f"no BENCH_*.json in {path}")
        if prefer_quick is not None:
            matching = []
            for candidate in candidates:
                try:
                    if load(candidate).get("quick") is prefer_quick:
                        matching.append(candidate)
                except (json.JSONDecodeError, OSError):
                    print(f"warning: skipping unreadable {candidate}")
            if matching:
                return matching[-1]
        return candidates[-1]
    raise FileNotFoundError(spec)


def load(path: Path) -> Dict:
    return json.loads(path.read_text())


def normalized_rows(artifact: Dict, normalize: bool) -> Dict[str, Dict]:
    """name -> row, with throughput divided by the calibration score."""
    scale = 1.0
    if normalize:
        calibration = artifact.get("calibration_ops_per_sec")
        if calibration:
            scale = 1.0 / calibration
    rows = {}
    for row in artifact.get("benchmarks", []):
        if row.get("cycles_per_sec"):
            row = dict(row)
            row["normalized"] = row["cycles_per_sec"] * scale
            rows[row["name"]] = row
    return rows


def compare(
    baseline: Dict, current: Dict, max_regression: float, normalize: bool
) -> int:
    base_rows = normalized_rows(baseline, normalize)
    cur_rows = normalized_rows(current, normalize)
    compared = 0
    regressions = []
    label = "normalized " if normalize else ""
    for name, cur in sorted(cur_rows.items()):
        base = base_rows.get(name)
        if base is None:
            print(f"  {name:<24} (no baseline row; skipped)")
            continue
        if _shape(base) != _shape(cur):
            print(f"  {name:<24} (run shape or engine changed; skipped)")
            continue
        compared += 1
        ratio = cur["normalized"] / base["normalized"]
        status = "ok"
        if ratio < 1.0 - max_regression:
            status = "REGRESSION"
            regressions.append(name)
        print(
            f"  {name:<24} {ratio:6.2f}x {label}throughput  [{status}]"
        )
    if compared == 0:
        print("error: no comparable benchmarks between the two artifacts")
        return 2
    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{max_regression:.0%}: {', '.join(regressions)}"
        )
        return 1
    print(f"OK: {compared} benchmark(s) within {max_regression:.0%}")
    return 0


def collect(spec: str) -> List[Path]:
    """Every artifact a spec names: a file, or a directory's sequence."""
    path = Path(spec)
    if path.is_file():
        return [path]
    if path.is_dir():
        return artifacts_in(path)
    raise FileNotFoundError(spec)


def _shape(row: Dict) -> tuple:
    """What must match for two same-named rows to be ratio-comparable.

    ``engine`` is part of the shape: a row re-timed on another engine
    tier (``repro bench --engine``, or the serial-vs-batch grid pair)
    measures a different quantity, so ratios across tiers are never
    printed as progress or regression.
    """
    return (row.get("n_requests"), row.get("n_cores"), row.get("engine"))


def trajectory(specs: List[str], normalize: bool) -> int:
    """Print the per-row throughput trajectory across an artifact sequence.

    Rows are matched by name; each row's first appearance is its
    baseline column (absolute normalized throughput) and every later
    artifact shows the calibration-normalized ratio against it.  Cells
    whose run shape or engine differs from the baseline print ``shape``
    instead of a misleading ratio; artifacts without the row print
    ``—``.
    """
    paths: List[Path] = []
    for spec in specs:
        for path in collect(spec):
            if path not in paths:
                paths.append(path)
    if len(paths) < 2:
        print("error: need at least two artifacts for a trajectory")
        return 2
    artifacts = [(path, normalized_rows(load(path), normalize)) for path in paths]
    names: List[str] = []
    for _, rows in artifacts:
        for name in rows:
            if name not in names:
                names.append(name)
    label = "normalized" if normalize else "raw"
    print(f"trajectory over {len(paths)} artifacts ({label} throughput; "
          f"first appearance -> ratio):")
    # Disambiguate same-numbered artifacts from different directories
    # (e.g. the committed baselines vs a fresh CI run both starting at
    # BENCH_0001) by prefixing the parent directory name.
    names_only = [path.name for path, _ in artifacts]
    columns = [
        path.name.removesuffix(".json")
        if names_only.count(path.name) == 1
        else f"{path.parent.name}/{path.name.removesuffix('.json')}"
        for path, _ in artifacts
    ]
    width = max(12, max(len(column) for column in columns) + 2)
    header = f"  {'benchmark':<24}" + "".join(
        f"{column:>{width}}" for column in columns
    )
    print(header)
    for name in names:
        base = None
        cells = []
        for _, rows in artifacts:
            row = rows.get(name)
            if row is None:
                cells.append(f"{'—':>{width}}")
            elif base is None:
                base = row
                cells.append(f"{row['cycles_per_sec']:>{width},.0f}")
            elif _shape(row) != _shape(base):
                cells.append(f"{'shape':>{width}}")
            else:
                ratio = row["normalized"] / base["normalized"]
                cells.append(f"{ratio:>{width - 1}.2f}x")
        print(f"  {name:<24}" + "".join(cells))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="BENCH file or directory")
    parser.add_argument(
        "current", nargs="?", default=None,
        help="BENCH file or directory (optional with --trajectory)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="maximum tolerated throughput drop (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--no-normalize", action="store_true",
        help="compare raw cycles/sec without calibration normalization",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="print the whole BENCH_* sequence (baseline -> latest per "
             "row) instead of a pairwise gate",
    )
    args = parser.parse_args(argv)
    if args.trajectory:
        specs = [args.baseline] + ([args.current] if args.current else [])
        return trajectory(specs, not args.no_normalize)
    if args.current is None:
        parser.error("current is required without --trajectory")
    current_path = resolve(args.current)
    current = load(current_path)
    baseline_path = resolve(args.baseline, prefer_quick=current.get("quick"))
    baseline = load(baseline_path)
    print(f"baseline: {baseline_path}")
    print(f"current:  {current_path}")
    return compare(
        baseline, current, args.max_regression, not args.no_normalize
    )


if __name__ == "__main__":
    sys.exit(main())
