#!/usr/bin/env python3
"""Standalone entry point for the perf-benchmark harness.

Equivalent to ``PYTHONPATH=src python -m repro bench``; kept as a plain
script so the benchmark can be run without installing the package:

    python tools/perf_bench.py --quick

See ``docs/performance.md`` for what is measured and how to read the
``BENCH_<n>.json`` artifacts.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench import main  # noqa: E402  (path setup must come first)

if __name__ == "__main__":
    raise SystemExit(main())
