#!/usr/bin/env python
"""CI chaos smoke: kill a real worker mid-run, demand identical bytes.

Runs one full chaos experiment (the same harness the test matrix
uses): a serial reference sweep, then the same task recipes through
the distributed queue with two real ``repro worker`` subprocesses —
one of which is SIGKILLed while it holds the first claim — and
finally a byte-for-byte comparison of every result blob against the
serial run.

Exit 0 means the sweep completed and every blob is byte-identical.
Any other outcome exits 1 after printing the report, and leaves the
queue/store directories in place (CI uploads them as the forensic
artifact).

Usage:
    PYTHONPATH=src python tools/chaos_smoke.py [--base-dir DIR]
        [--fault NAME] [--requests N] [--workers N]
"""

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distrib.chaos import EXTERNAL_FAULTS, run_chaos_case  # noqa: E402
from repro.distrib.coordinator import shard_points  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402
from repro.security.faults import KNOWN_FAULTS  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402


def main(argv=None):
    """Run the chaos smoke and return a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--base-dir", default="chaos-smoke",
        help="directory for the serial reference, queue and stores "
             "(kept on failure for artifact upload)",
    )
    parser.add_argument(
        "--fault", default="sigkill-claim-holder",
        choices=sorted(EXTERNAL_FAULTS) + sorted(
            name for name in KNOWN_FAULTS if name.startswith("worker-")
        ),
        help="which death to inject (default: SIGKILL the claim holder)",
    )
    parser.add_argument(
        "--requests", type=int, default=60_000,
        help="requests per core per task (sized so the lease expires "
             "mid-simulation on the CI runner)",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    system = SystemConfig(n_cores=2, banks_per_channel=8)
    specs = [
        ScenarioSpec.benign("mcf", system=system),
        ScenarioSpec.benign("add_copy", system=system),
    ]
    recipes = shard_points(specs, args.requests, 0)

    print(f"chaos smoke: fault={args.fault}, {len(recipes)} task(s), "
          f"{args.workers} worker(s)")
    report = run_chaos_case(
        Path(args.base_dir),
        recipes,
        fault=args.fault,
        n_workers=args.workers,
        lease_s=0.5,
        checkpoint_stride=300_000,
        timeout_s=300.0,
    )
    for line in report.summary_lines():
        print(line)
    for line in report.outcome.summary_lines():
        print(line)
    if not report.fault_fired:
        print("FAIL: the injected fault never fired (vacuous run)")
        return 1
    if not report.ok:
        print("FAIL: distributed blobs differ from the serial reference")
        return 1
    print("OK: sweep completed; every blob byte-identical to serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
