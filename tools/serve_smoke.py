#!/usr/bin/env python
"""CI serve smoke: SIGKILL the daemon mid-flight, demand full recovery.

The script drives the serving layer's whole crash-recovery contract in
one pass:

1. start a real ``repro serve`` daemon;
2. send three concurrent requests — two *identical* (they must
   coalesce onto one journal entry and one execution) and one
   distinct — all with ``wait_s=0`` so they are 202-accepted and in
   flight;
3. SIGKILL the daemon (no drain, no cleanup);
4. assert the journal holds exactly the two accepted keys;
5. restart the daemon and let journal replay finish both requests;
6. assert the store holds *exactly* the expected result blobs (after
   a gc pass retires checkpoint debris), byte-identical to a serial
   reference run;
7. SIGTERM the daemon and require a clean drain: exit 0, empty
   journal, endpoint file retired.

Exit 0 means every assertion held.  Any other outcome exits 1 after
printing the forensics, and leaves the base directory in place (CI
uploads it as the failure artifact).

Usage:
    PYTHONPATH=src python tools/serve_smoke.py [--base-dir DIR]
        [--requests N]
"""

import argparse
import http.client
import signal
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distrib.coordinator import run_serial_sweep  # noqa: E402
from repro.distrib.worker import sweep_task_recipe  # noqa: E402
from repro.results.store import content_key, store_for  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402
from repro.serve.chaos import (  # noqa: E402
    poll_until_done,
    spawn_daemon,
    wait_for_endpoint,
)
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.journal import RequestJournal  # noqa: E402
from repro.serve.server import read_endpoint, serve_dir  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402


def fail(message):
    print(f"FAIL: {message}")
    return 1


def main(argv=None):
    """Run the serve smoke and return a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--base-dir", default="serve-smoke",
        help="directory for the serial reference and the daemon's "
             "world (kept on failure for artifact upload)",
    )
    parser.add_argument(
        "--requests", type=int, default=20_000,
        help="requests per core per task (sized so the SIGKILL lands "
             "mid-flight on the CI runner)",
    )
    args = parser.parse_args(argv)

    base = Path(args.base_dir)
    system = SystemConfig(n_cores=1, banks_per_channel=8)
    shared = sweep_task_recipe(
        ScenarioSpec.benign("mcf", system=system).recipe(),
        args.requests, 0,
    )
    distinct = sweep_task_recipe(
        ScenarioSpec.benign("add_copy", system=system).recipe(),
        args.requests, 0,
    )
    keys = [content_key(shared), content_key(distinct)]
    print(f"serve smoke: 2x identical + 1 distinct request, "
          f"keys {keys}")

    serial_store = store_for(base / "serial")
    run_serial_sweep([shared, distinct], serial_store)

    daemon_dir = base / "daemon"
    journal = RequestJournal(serve_dir(daemon_dir) / "journal")
    store = store_for(daemon_dir)

    # -- first life: accept three requests, then die hard -------------
    first = spawn_daemon(
        daemon_dir, log_path=base / "daemon-1.log",
    )
    responses = []
    try:
        endpoint = wait_for_endpoint(daemon_dir, first.pid, 60.0)
        client = ServeClient(endpoint["host"], endpoint["port"],
                             timeout_s=10.0)

        def accept(recipe):
            try:
                responses.append(client.call(
                    "POST", "/request", {"recipe": recipe, "wait_s": 0}
                ))
            except (OSError, http.client.HTTPException) as exc:
                responses.append(exc)

        threads = [
            threading.Thread(target=accept, args=(recipe,))
            for recipe in (shared, shared, distinct)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=30.0)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30.0)
    print(f"accepted: {responses}")
    accepted = [r for r in responses if isinstance(r, tuple)]
    if len(accepted) != 3 or any(c not in (200, 202) for c, _ in accepted):
        return fail(f"expected three 202/200 accepts, got {responses}")

    journaled = sorted(entry.key for entry in journal.entries())
    print(f"journal after SIGKILL: {journaled}")
    if journaled != sorted(keys):
        return fail(
            f"journal should hold exactly the two accepted keys "
            f"{sorted(keys)}, holds {journaled} — coalescing or the "
            "write-ahead discipline is broken"
        )

    # -- second life: replay must finish everything --------------------
    second = spawn_daemon(daemon_dir, log_path=base / "daemon-2.log")
    try:
        endpoint = wait_for_endpoint(daemon_dir, second.pid, 60.0)
        client = ServeClient(endpoint["host"], endpoint["port"],
                             timeout_s=10.0)
        for key in keys:
            poll_until_done(client, key, timeout_s=180.0)
        print("replay completed every journaled key")
        second.send_signal(signal.SIGTERM)
        drain_exit = second.wait(timeout=120.0)
    finally:
        if second.poll() is None:
            second.kill()
            second.wait(timeout=30.0)
    if drain_exit != 0:
        return fail(f"graceful drain exited {drain_exit}, want 0")
    if journal.depth() != 0:
        return fail(f"journal not empty after drain: {journal.depth()}")
    if read_endpoint(daemon_dir) is not None:
        return fail("endpoint file not retired on clean shutdown")

    # -- the store holds exactly the expected blobs ---------------------
    store.gc(blob_grace_s=0.0)   # retire checkpoint debris
    blobs = sorted(
        path.stem for path in store.objects_dir.glob("*.json")
    )
    if blobs != sorted(keys):
        return fail(
            f"store should hold exactly {sorted(keys)}, holds {blobs}"
        )
    for key in keys:
        if (store.blob_path(key).read_bytes()
                != serial_store.blob_path(key).read_bytes()):
            return fail(f"blob {key} differs from the serial reference")
    print("OK: coalesced journal, full replay, clean drain, "
          "byte-identical blobs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
