#!/usr/bin/env python3
"""CI entry point for the ``repro check`` static contract gate.

Runs the full rule set over ``src/`` + ``tools/`` exactly the way
``repro check`` does (same argument surface, same engine), prints the
human summary, and additionally writes the ``--json`` report to a file
for upload as a CI artifact:

    python tools/staticcheck_smoke.py --report-file staticcheck.json

Exit code 1 on any unsuppressed finding — the static-smoke job gates
merges on it.  See ``docs/static_analysis.md`` for the rule catalog
and the suppression policy.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.staticcheck.cli import (  # noqa: E402  (path setup first)
    build_parser,
    report_from_args,
)


def main(argv=None) -> int:
    parser = build_parser()
    parser.add_argument(
        "--report-file", default=None, metavar="PATH",
        help="also write the JSON report here (the CI artifact)",
    )
    args = parser.parse_args(argv)
    if not args.paths and args.changed is None:
        # CI parity: the gate always covers the full default scope,
        # anchored at the repo root regardless of the caller's cwd.
        args.root = args.root or str(REPO_ROOT)
    if args.list_rules:
        from repro.staticcheck.cli import _list_rules

        return _list_rules()
    try:
        report = report_from_args(args)
    except (KeyError, RuntimeError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.report_file:
        Path(args.report_file).write_text(
            json.dumps(report.to_json(), indent=2)
        )
    for line in report.summary_lines():
        print(line)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
