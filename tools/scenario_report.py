#!/usr/bin/env python3
"""Diff scenario metrics between two content-addressed result stores.

Usage (the CI scenario-smoke diff):

    python tools/scenario_report.py results-a results-b

Each argument is a results directory (the store lives at
``<dir>/store``) or a store root itself.  For every scenario name
present in both stores the latest run's metrics are compared with a
``B/A`` ratio column — the scenario analogue of
``tools/bench_compare.py --trajectory``.  Exits non-zero when nothing
was comparable, so an empty or mislocated store cannot silently pass a
CI gate.

This is a thin wrapper over :mod:`repro.results.report` (the same code
behind ``repro scenario report``); it only bootstraps ``sys.path`` so
CI can invoke it without installing the package.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.results.report import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
