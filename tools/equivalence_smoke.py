#!/usr/bin/env python3
"""CI smoke: one batched sweep grid must be bit-identical to the fast engine.

Runs a small mixed-tracker grid twice — once through
``repro.sim.batch.simulate_batch`` (the NumPy leader/replay tier) and
once per-point through ``simulate_workload`` (the fast engine oracle) —
and asserts every lane's canonical JSON blob is byte-identical.  Also
asserts the batch run actually exercised the replay path (``replayed >
0``), so a silent degradation to per-lane full simulations cannot pass
as equivalence.

Exit codes: 0 identical (or NumPy missing — the tier is optional, so
the smoke degrades to a skip), 1 any lane diverged.

Usage (the CI perf-smoke equivalence gate):

    PYTHONPATH=src python tools/equivalence_smoke.py
"""

from __future__ import annotations

import json
import sys


def result_blob(result) -> bytes:
    return json.dumps(result.to_json(), sort_keys=True).encode()


def main() -> int:
    from repro.sim.batch import BatchStats, batch_available, simulate_batch
    from repro.sim.config import DefenseConfig, SystemConfig
    from repro.sim.system import simulate_workload

    if not batch_available():
        print("equivalence-smoke: numpy unavailable; batch tier "
              "disabled, nothing to check (skip)")
        return 0

    system = SystemConfig(n_cores=2, banks_per_channel=8)
    requests = 120
    seed = 11
    points = [
        ("mcf", None, None),
        ("mcf", DefenseConfig(tracker="graphene", scheme="no-rp"), None),
        ("mcf", DefenseConfig(tracker="graphene", scheme="impress-p"), None),
        ("mcf", DefenseConfig(tracker="prac", scheme="no-rp", trh=150), None),
        ("mcf", DefenseConfig(tracker="dsac", scheme="no-rp"), None),
        ("mcf", DefenseConfig(tracker="para", scheme="no-rp", trh=200.0),
         None),
        ("mcf", DefenseConfig(tracker="mint", scheme="no-rp", rfmth=20),
         None),
        ("mcf", DefenseConfig(tracker="mithril", scheme="no-rp", rfmth=20),
         None),
        ("copy", None, 66.0),
        ("copy", DefenseConfig(tracker="graphene", scheme="no-rp"), 66.0),
    ]

    stats = BatchStats()
    batched = simulate_batch(
        points, system=system, n_requests_per_core=requests, seed=seed,
        stats=stats,
    )

    mismatches = 0
    for (workload, defense, tmro_ns), result in zip(points, batched):
        oracle = simulate_workload(
            workload, defense, system=system,
            n_requests_per_core=requests, tmro_ns=tmro_ns, seed=seed,
        )
        label = (
            f"{workload}/"
            f"{defense.tracker + ':' + defense.scheme if defense else 'none'}"
            f"{'/tmro=' + str(tmro_ns) if tmro_ns else ''}"
        )
        if result_blob(result) == result_blob(oracle):
            print(f"  {label:<40} identical")
        else:
            print(f"  {label:<40} DIVERGED")
            mismatches += 1

    print(
        f"equivalence-smoke: {len(points)} lanes -> "
        f"{stats.leaders} leaders, {stats.replayed} replayed "
        f"({stats.vector_replays} vector / {stats.python_replays} python), "
        f"{stats.fallbacks} fallbacks, {stats.singletons} singletons"
    )
    if mismatches:
        print(f"FAIL: {mismatches} lane(s) diverged from the fast engine")
        return 1
    if stats.replayed == 0:
        print("FAIL: no lane took the replay path; the smoke proved nothing")
        return 1
    print("OK: batch engine bit-identical to the fast engine")
    return 0


if __name__ == "__main__":
    sys.exit(main())
