"""Physical-address mapping.

The paper's baseline (Table II) uses a Minimalist Open-Page (MOP) mapping
with 8 consecutive cache lines per row: a small run of consecutive lines
lands in one row of one bank, after which the stream hops to the next bank.
This gives streaming workloads exactly 8 row-buffer hits per activation,
which is what makes them sensitive to tMRO (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

LINE_BYTES = 64
LINE_SHIFT = 6


@dataclass(frozen=True)
class MappedAddress:
    """Decomposed physical address."""

    channel: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class MopAddressMapper:
    """Minimalist Open-Page address mapping.

    ``lines_per_row_group`` consecutive cache lines map into the same
    (channel, bank, row); the next group strides to the next bank, then
    across channels, and only then advances the row.  The default of 8
    matches Table II.
    """

    channels: int = 2
    banks_per_channel: int = 64   # 32 banks x 2 sub-channels (Table II)
    lines_per_row_group: int = 8

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("channels and banks must be positive")
        if self.lines_per_row_group < 1:
            raise ValueError("lines_per_row_group must be positive")

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel

    def map_address(self, address: int) -> MappedAddress:
        """Map a byte address to (channel, bank, row, column)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address >> LINE_SHIFT
        column = line % self.lines_per_row_group
        group = line // self.lines_per_row_group
        flat_bank = group % self.total_banks
        row = group // self.total_banks
        channel = flat_bank % self.channels
        bank = flat_bank // self.channels
        return MappedAddress(channel=channel, bank=bank, row=row, column=column)

    def address_of(self, mapped: MappedAddress) -> int:
        """Inverse of :meth:`map_address` (useful for attack generators)."""
        flat_bank = mapped.bank * self.channels + mapped.channel
        group = mapped.row * self.total_banks + flat_bank
        line = group * self.lines_per_row_group + mapped.column
        return line << LINE_SHIFT

    def row_span_bytes(self) -> int:
        """Bytes of consecutive addresses that share one row group."""
        return self.lines_per_row_group * LINE_BYTES
