"""A DRAM channel device: banks, refresh state, and RFM bookkeeping.

The device is the boundary between the memory controller and in-DRAM
logic.  In-DRAM trackers (Mithril, MINT) observe activations through bank
hooks and perform their mitigations when the controller issues RFM; the
device counts per-bank activations so the controller knows when RFM is due
(every ``rfm_threshold`` ACTs, Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .bank import Bank
from .refresh import RefreshScheduler
from .timing import CycleTimings

BLAST_RADIUS = 2  #: victim rows refreshed on each side of an aggressor


def victim_rows(row: int, blast_radius: int = BLAST_RADIUS) -> List[int]:
    """Rows refreshed when ``row`` is mitigated (2 each side by default)."""
    victims = []
    for distance in range(1, blast_radius + 1):
        if row - distance >= 0:
            victims.append(row - distance)
        victims.append(row + distance)
    return victims


@dataclass
class DramDevice:
    """One memory channel's worth of banks plus refresh/RFM state."""

    timings: CycleTimings
    num_banks: int = 64
    rfm_threshold: int = 80
    banks: List[Bank] = field(default_factory=list)
    refresh: List[RefreshScheduler] = field(default_factory=list)
    _rfm_counters: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_banks < 1:
            raise ValueError("num_banks must be positive")
        if not self.banks:
            self.banks = [
                Bank(timings=self.timings, bank_id=i)
                for i in range(self.num_banks)
            ]
        if not self.refresh:
            self.refresh = [
                RefreshScheduler(self.timings) for _ in range(self.num_banks)
            ]
        if not self._rfm_counters:
            self._rfm_counters = [0] * self.num_banks
        for bank in self.banks:
            bank.add_activate_hook(self._make_rfm_hook(bank.bank_id))

    def _make_rfm_hook(self, bank_id: int):
        def hook(_row: int, _cycle: int) -> None:
            self._rfm_counters[bank_id] += 1

        return hook

    def rfm_due(self, bank_id: int) -> bool:
        """True once the bank accumulated rfm_threshold ACTs since last RFM."""
        return self._rfm_counters[bank_id] >= self.rfm_threshold

    def acts_since_rfm(self, bank_id: int) -> int:
        return self._rfm_counters[bank_id]

    def issue_rfm(self, bank_id: int, cycle: int) -> int:
        """Issue an RFM to the bank; returns the completion cycle."""
        done = self.banks[bank_id].rfm(cycle)
        self._rfm_counters[bank_id] = 0
        return done
