"""DRAM command vocabulary shared by the device model and the controller."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Dict


class CommandKind(enum.Enum):
    """The DRAM commands the simulator models."""

    ACT = "ACT"    #: activate (open) a row
    PRE = "PRE"    #: precharge (close) the open row
    RD = "RD"      #: column read from the open row
    WR = "WR"      #: column write to the open row
    REF = "REF"    #: refresh one refresh group
    RFM = "RFM"    #: refresh-management command (DDR5, in-DRAM mitigation)


@dataclass(frozen=True)
class Command:
    """A command issued to a specific bank at a specific cycle.

    ``row`` is meaningful only for ACT (RD/WR implicitly target the open
    row; PRE/REF/RFM are row-agnostic).  ``mitigative`` marks activations
    injected by a Rowhammer/Row-Press mitigation rather than demand
    traffic, which is the split Figure 14 of the paper reports.
    """

    kind: CommandKind
    bank: int
    cycle: int
    row: int | None = None
    mitigative: bool = False

    def __post_init__(self) -> None:
        if self.kind is CommandKind.ACT and self.row is None:
            raise ValueError("ACT requires a row")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")


@dataclass
class CommandCounts:
    """Tallies of issued commands, split demand vs mitigative ACTs."""

    demand_acts: int = 0
    mitigative_acts: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    rfms: int = 0

    @property
    def total_acts(self) -> int:
        return self.demand_acts + self.mitigative_acts

    def record(self, command: Command) -> None:
        if command.kind is CommandKind.ACT:
            if command.mitigative:
                self.mitigative_acts += 1
            else:
                self.demand_acts += 1
        elif command.kind is CommandKind.PRE:
            self.precharges += 1
        elif command.kind is CommandKind.RD:
            self.reads += 1
        elif command.kind is CommandKind.WR:
            self.writes += 1
        elif command.kind is CommandKind.REF:
            self.refreshes += 1
        elif command.kind is CommandKind.RFM:
            self.rfms += 1

    def merged_with(self, other: "CommandCounts") -> "CommandCounts":
        return CommandCounts(
            demand_acts=self.demand_acts + other.demand_acts,
            mitigative_acts=self.mitigative_acts + other.mitigative_acts,
            precharges=self.precharges + other.precharges,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            refreshes=self.refreshes + other.refreshes,
            rfms=self.rfms + other.rfms,
        )

    def to_json(self) -> Dict[str, int]:
        """Plain-int dict, the exact field set back to :meth:`from_json`."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, int]) -> "CommandCounts":
        """Inverse of :meth:`to_json` (bit-exact: every field is int)."""
        return cls(**{f: int(data[f]) for f in (
            "demand_acts", "mitigative_acts", "precharges", "reads",
            "writes", "refreshes", "rfms",
        )})
