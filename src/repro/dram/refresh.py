"""Refresh scheduling, including DDR5 refresh postponement.

All of DRAM is refreshed every tREFW.  To hide the latency, memory is split
into :attr:`TimingParams.refresh_groups` groups (8192 in Table I) and one
REF pulse is issued every tREFI.  DDR5 allows postponing up to 4 refreshes,
so the time between REF commands — and hence the longest a row can stay
open before refresh forces it closed — can stretch to 5x tREFI.  That
stretch is exactly what long-duration Row-Press attacks exploit
(Section II-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import CycleTimings

DDR5_MAX_POSTPONED = 4
DDR4_MAX_POSTPONED = 8


@dataclass
class RefreshScheduler:
    """Tracks refresh debt for one bank (or bank group).

    The controller calls :meth:`due` each scheduling step; when it returns
    True a REF must be issued (no postponement credit left).  Attack
    analyses use :meth:`max_row_open_cycles` for the refresh-limited bound
    on tON.
    """

    timings: CycleTimings
    max_postponed: int = DDR5_MAX_POSTPONED
    postpone: bool = False      #: attacker-controlled: defer while legal
    phase_offset: int = 0       #: stagger across banks to avoid lockstep
    _next_due: int = field(default=0, init=False)
    _postponed: int = field(default=0, init=False)
    _issued: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._next_due = self.timings.tREFI + self.phase_offset

    @property
    def next_due(self) -> int:
        """Cycle at which the next refresh pulse becomes pending."""
        return self._next_due

    @property
    def issued(self) -> int:
        return self._issued

    @property
    def postponed(self) -> int:
        return self._postponed

    def pending(self, cycle: int) -> bool:
        """True when a refresh pulse has become due by ``cycle``."""
        return cycle >= self._next_due

    def due(self, cycle: int) -> bool:
        """True when a REF *must* be issued now.

        A pulse that is merely pending can be postponed (if enabled) until
        the postponement budget is exhausted.
        """
        if not self.pending(cycle):
            return False
        if self.postpone and self._postponed < self.max_postponed:
            return False
        return True

    def defer(self) -> None:
        """Consume one postponement credit for the currently-pending REF."""
        if self._postponed >= self.max_postponed:
            raise RuntimeError("no postponement credit left")
        self._postponed += 1
        self._next_due += self.timings.tREFI

    def issue(self, cycle: int) -> None:
        """Record that a REF was issued at ``cycle``."""
        self._issued += 1
        if self._postponed > 0:
            # A postponed refresh is being caught up; the schedule already
            # advanced when it was deferred.
            self._postponed -= 1
        else:
            self._next_due += self.timings.tREFI

    def max_row_open_cycles(self) -> int:
        """Longest a row can stay open before refresh closes it.

        Without postponement this is one tREFI; with postponement it is
        (max_postponed + 1) x tREFI — 5x for DDR5, 9x for DDR4, matching
        Section II-E of the paper.
        """
        budget = self.max_postponed if self.postpone else 0
        return (budget + 1) * self.timings.tREFI
