"""DRAM bank state machine with JEDEC-style timing enforcement.

Each bank tracks its open row, when it was opened, and the earliest cycles
at which the next ACT/PRE/column command is legal.  Banks report two events
to registered observers:

* ``on_activate(row, cycle)`` — a row was opened; Rowhammer trackers hook
  this to count activations.
* ``on_row_closed(row, open_cycles, total_cycles)`` — a row finished
  precharging; ``total_cycles`` includes the precharge time, which is the
  quantity ImPress-P divides by tRC to obtain EACT (Figure 11).

The bank is a ``__slots__`` class and the hook lists are lazily created:
the system simulator's controllers dispatch bank activity to trackers
directly through the mitigation scheme, so in the hot path no hooks are
registered and ACT/PRE pay no observer-iteration cost at all.  Only the
standalone :class:`repro.dram.device.DramDevice` and unit tests register
hooks.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .timing import CycleTimings

ActivateHook = Callable[[int, int], None]
CloseHook = Callable[[int, int, int], None]


class TimingViolation(RuntimeError):
    """A command was issued before its earliest legal cycle."""


class Bank:
    """A single DRAM bank.

    The bank is purely reactive: callers (the memory controller or the
    device's refresh logic) issue commands at chosen cycles, and the bank
    validates timing and maintains row-buffer state.
    """

    __slots__ = (
        "timings",
        "bank_id",
        "open_row",
        "act_cycle",
        "_ready_act",
        "_ready_pre",
        "_ready_col",
        "_activate_hooks",
        "_close_hooks",
    )

    def __init__(
        self,
        timings: CycleTimings,
        bank_id: int = 0,
        open_row: Optional[int] = None,
        act_cycle: int = -1,
    ) -> None:
        self.timings = timings
        self.bank_id = bank_id
        self.open_row = open_row
        self.act_cycle = act_cycle    #: cycle the open row was activated
        self._ready_act = 0
        self._ready_pre = 0
        self._ready_col = 0
        # None until the first observer registers; the common (simulator)
        # path never registers any, keeping ACT/PRE free of hook loops.
        self._activate_hooks: Optional[List[ActivateHook]] = None
        self._close_hooks: Optional[List[CloseHook]] = None

    def add_activate_hook(self, hook: ActivateHook) -> None:
        if self._activate_hooks is None:
            self._activate_hooks = []
        self._activate_hooks.append(hook)

    def add_close_hook(self, hook: CloseHook) -> None:
        if self._close_hooks is None:
            self._close_hooks = []
        self._close_hooks.append(hook)

    # -- timing queries -----------------------------------------------

    def earliest_act(self) -> int:
        """Earliest cycle an ACT may be issued (row must be closed)."""
        return self._ready_act

    def earliest_pre(self) -> int:
        """Earliest cycle the open row may be precharged."""
        return self._ready_pre

    def earliest_col(self) -> int:
        """Earliest cycle a RD/WR may be issued to the open row."""
        return self._ready_col

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def open_time(self, cycle: int) -> int:
        """Cycles the current row has been open as of ``cycle``."""
        if self.open_row is None:
            return 0
        return cycle - self.act_cycle

    # -- commands -------------------------------------------------------

    def activate(self, row: int, cycle: int) -> None:
        """Open ``row``; the bank must be precharged and past tRC."""
        if self.open_row is not None:
            raise TimingViolation(
                f"bank {self.bank_id}: ACT while row {self.open_row} open"
            )
        if cycle < self._ready_act:
            raise TimingViolation(
                f"bank {self.bank_id}: ACT at {cycle} before {self._ready_act}"
            )
        timings = self.timings
        self.open_row = row
        self.act_cycle = cycle
        self._ready_pre = cycle + timings.tRAS
        self._ready_col = cycle + timings.tRCD
        self._ready_act = cycle + timings.tRC
        if self._activate_hooks is not None:
            for hook in self._activate_hooks:
                hook(row, cycle)

    def column_access(self, cycle: int) -> int:
        """Issue a RD/WR burst; returns the cycle data is available."""
        if self.open_row is None:
            raise TimingViolation(f"bank {self.bank_id}: column access, no row")
        if cycle < self._ready_col:
            raise TimingViolation(
                f"bank {self.bank_id}: column at {cycle} before {self._ready_col}"
            )
        self._ready_col = cycle + self.timings.tCCD
        return cycle + self.timings.tCAS

    def precharge(self, cycle: int) -> int:
        """Close the open row; returns cycles the row was open (sans tPRE)."""
        if self.open_row is None:
            raise TimingViolation(f"bank {self.bank_id}: PRE with no open row")
        if cycle < self._ready_pre:
            raise TimingViolation(
                f"bank {self.bank_id}: PRE at {cycle} before {self._ready_pre}"
            )
        row = self.open_row
        open_cycles = cycle - self.act_cycle
        total_cycles = open_cycles + self.timings.tPRE
        self.open_row = None
        ready = cycle + self.timings.tPRE
        if ready > self._ready_act:
            self._ready_act = ready
        if self._close_hooks is not None:
            for hook in self._close_hooks:
                hook(row, open_cycles, total_cycles)
        return open_cycles

    def block_until(self, cycle: int) -> None:
        """Reserve the (closed) bank for internal work until ``cycle``.

        Used for mitigative victim-refresh bursts, which occupy the bank
        without going through the demand ACT path.
        """
        if self.open_row is not None:
            raise TimingViolation(
                f"bank {self.bank_id}: cannot block with row open"
            )
        if cycle > self._ready_act:
            self._ready_act = cycle

    def refresh(self, cycle: int) -> int:
        """Perform a REF; the row must be closed.  Returns completion cycle."""
        if self.open_row is not None:
            raise TimingViolation(f"bank {self.bank_id}: REF with open row")
        if cycle < self._ready_act:
            raise TimingViolation(
                f"bank {self.bank_id}: REF at {cycle} before {self._ready_act}"
            )
        done = cycle + self.timings.tRFC
        self._ready_act = done
        return done

    def rfm(self, cycle: int) -> int:
        """Perform an RFM; the row must be closed.  Returns completion cycle."""
        if self.open_row is not None:
            raise TimingViolation(f"bank {self.bank_id}: RFM with open row")
        if cycle < self._ready_act:
            raise TimingViolation(
                f"bank {self.bank_id}: RFM at {cycle} before {self._ready_act}"
            )
        done = cycle + self.timings.tRFM
        self._ready_act = done
        return done
