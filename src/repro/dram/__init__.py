"""DRAM substrate: timings, banks, address mapping, refresh, devices."""

from .address import LINE_BYTES, MappedAddress, MopAddressMapper
from .bank import Bank, TimingViolation
from .commands import Command, CommandCounts, CommandKind
from .device import BLAST_RADIUS, DramDevice, victim_rows
from .refresh import (
    DDR4_MAX_POSTPONED,
    DDR5_MAX_POSTPONED,
    RefreshScheduler,
)
from .timing import (
    CycleTimings,
    DramClock,
    TimingParams,
    ddr4_timings,
    ddr5_timings,
    default_cycle_timings,
)

__all__ = [
    "LINE_BYTES",
    "MappedAddress",
    "MopAddressMapper",
    "Bank",
    "TimingViolation",
    "Command",
    "CommandCounts",
    "CommandKind",
    "BLAST_RADIUS",
    "DramDevice",
    "victim_rows",
    "DDR4_MAX_POSTPONED",
    "DDR5_MAX_POSTPONED",
    "RefreshScheduler",
    "CycleTimings",
    "DramClock",
    "TimingParams",
    "ddr4_timings",
    "ddr5_timings",
    "default_cycle_timings",
]
