"""DRAM timing parameters (Table I of the ImPress paper).

All primary values are expressed in nanoseconds, exactly as the paper's
Table I lists them.  The simulator operates on integer DRAM-clock cycles,
so :class:`DramClock` converts between the two domains.  With the paper's
2.66 GHz DRAM clock, ``tRC`` (48 ns) equals 128 cycles, which makes the
division by ``tRC`` used by ImPress-P implementable as a 7-bit right shift
(Section VI-A of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TimingParams:
    """JEDEC-style timing parameters, in nanoseconds.

    The defaults reproduce Table I of the paper (DDR5).  Use
    :func:`ddr4_timings` for the DDR4 variant referenced when re-deriving
    the Row-Press characterization data of Luo et al.
    """

    tACT: float = 12.0      #: time to perform an activation
    tPRE: float = 12.0      #: time to precharge an open row
    tRAS: float = 36.0      #: minimum time a row must stay open
    tRC: float = 48.0       #: minimum time between ACTs to a bank
    tREFW: float = 32e6     #: refresh window (32 ms)
    tREFI: float = 3900.0   #: interval between REF commands
    tRFC: float = 350.0     #: execution time of a REF command
    tONMAX: float = 19500.0 #: max row-open time permitted by DDR5
    tRFM: float = 205.0     #: latency of an RFM command (half of tRFC)
    tCCD: float = 6.0       #: column-to-column delay (back-to-back bursts)
    tRCD: float = 12.0      #: ACT-to-column command delay (== tACT here)
    tCAS: float = 14.0      #: column access latency

    def __post_init__(self) -> None:
        if self.tRAS < self.tACT:
            raise ValueError("tRAS must be at least tACT")
        if self.tRC < self.tRAS + self.tPRE:
            raise ValueError("tRC must cover tRAS + tPRE")
        if self.tREFI <= 0 or self.tREFW <= 0:
            raise ValueError("refresh intervals must be positive")

    @property
    def refresh_groups(self) -> int:
        """Number of refresh groups (the paper: memory is split into 8192)."""
        return int(round(self.tREFW / self.tREFI))

    def with_overrides(self, **kwargs: float) -> "TimingParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def ddr5_timings() -> TimingParams:
    """Timing parameters of Table I (DDR5)."""
    return TimingParams()


def ddr4_timings() -> TimingParams:
    """DDR4 timings used by the Row-Press characterization (Luo et al.).

    The parameters that matter for the charge-loss datasets are
    ``tREFI = 7800 ns`` and the same ``tRC = 48 ns`` normalization the
    paper uses (1 tREFI == 162.5 tRC, which the paper rounds to 162).
    """
    return TimingParams(tREFI=7800.0, tREFW=64e6)


@dataclass(frozen=True)
class DramClock:
    """Converts between nanoseconds and integer DRAM-clock cycles.

    The paper assumes a 2.66 GHz DRAM command clock so that ``tRC`` is a
    power-of-two number of cycles (128), letting ImPress-P divide by
    ``tRC`` with a 7-bit shift.
    """

    freq_ghz: float = 2.66666666666

    def cycles(self, time_ns: float) -> int:
        """Round a duration in ns to the nearest whole cycle count."""
        return int(round(time_ns * self.freq_ghz))

    def ceil_cycles(self, time_ns: float) -> int:
        """Smallest whole number of cycles covering ``time_ns``."""
        return int(math.ceil(time_ns * self.freq_ghz - 1e-9))

    def ns(self, cycle_count: int) -> float:
        """Duration of ``cycle_count`` cycles, in nanoseconds."""
        return cycle_count / self.freq_ghz


@dataclass(frozen=True)
class CycleTimings:
    """Timing parameters converted to integer DRAM-clock cycles.

    This is the form the event-driven simulator consumes.  ``trc_shift``
    is the shift amount that implements division by ``tRC`` when ``tRC``
    is a power of two in cycles (7 for the default configuration).
    """

    tACT: int
    tPRE: int
    tRAS: int
    tRC: int
    tREFW: int
    tREFI: int
    tRFC: int
    tONMAX: int
    tRFM: int
    tCCD: int
    tRCD: int
    tCAS: int
    clock: DramClock = field(default_factory=DramClock)

    @classmethod
    def from_ns(
        cls, params: TimingParams, clock: DramClock | None = None
    ) -> "CycleTimings":
        clock = clock or DramClock()
        return cls(
            tACT=clock.cycles(params.tACT),
            tPRE=clock.cycles(params.tPRE),
            tRAS=clock.cycles(params.tRAS),
            tRC=clock.cycles(params.tRC),
            tREFW=clock.cycles(params.tREFW),
            tREFI=clock.cycles(params.tREFI),
            tRFC=clock.cycles(params.tRFC),
            tONMAX=clock.cycles(params.tONMAX),
            tRFM=clock.cycles(params.tRFM),
            tCCD=clock.cycles(params.tCCD),
            tRCD=clock.cycles(params.tRCD),
            tCAS=clock.cycles(params.tCAS),
            clock=clock,
        )

    @property
    def trc_shift(self) -> int | None:
        """Shift implementing division by tRC, or None if tRC is not 2**k."""
        if self.tRC > 0 and (self.tRC & (self.tRC - 1)) == 0:
            return self.tRC.bit_length() - 1
        return None

    def eact_of_cycles(self, total_cycles: int) -> float:
        """Equivalent activation count of a ``total_cycles``-long access."""
        return total_cycles / self.tRC


def default_cycle_timings() -> CycleTimings:
    """Table I converted to cycles at the paper's 2.66 GHz DRAM clock."""
    return CycleTimings.from_ns(ddr5_timings())
