"""Security analysis: charge accounting, T* verification, attack replay."""

from .charge_account import VictimChargeState, access_tcl, pattern_tcl
from .simulation import SecurityOutcome, run_security_simulation
from .verifier import (
    PatternResult,
    ThresholdReport,
    effective_threshold,
    replay_pattern,
)

__all__ = [
    "VictimChargeState",
    "access_tcl",
    "pattern_tcl",
    "SecurityOutcome",
    "run_security_simulation",
    "PatternResult",
    "ThresholdReport",
    "effective_threshold",
    "replay_pattern",
]
