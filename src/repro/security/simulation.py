"""End-to-end security simulation: pattern vs defense vs victim charge.

Replays an attack pattern through a real tracker (not just an accounting
stub), applies the unified charge model to the victims, and lets
mitigations restore their charge.  The outcome — peak victim charge
relative to the critical value — answers the threat model's question
directly: did the attacker flip a bit anywhere?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.mitigation import MitigationScheme
from ..dram.timing import CycleTimings
from ..workloads.attacks import TimedAccess
from .charge_account import VictimChargeState


@dataclass(frozen=True)
class SecurityOutcome:
    """Result of one attack replay."""

    peak_charge: float
    trh: float
    mitigations: int
    rfms: int

    @property
    def flipped(self) -> bool:
        return self.peak_charge >= self.trh

    @property
    def margin(self) -> float:
        """Fraction of the critical charge the attacker reached."""
        return self.peak_charge / self.trh


def run_security_simulation(
    scheme: MitigationScheme,
    accesses: Iterable[TimedAccess],
    trh: float,
    alpha: float,
    timings: CycleTimings,
    rfmth: Optional[int] = None,
    bank: int = 0,
) -> SecurityOutcome:
    """Replay ``accesses`` against the scheme's tracker.

    ``rfmth`` enables RFM delivery for in-DRAM trackers: an RFM is
    issued to the bank after every ``rfmth`` activations, and whatever
    row the tracker nominates gets mitigated.
    """
    state = VictimChargeState(alpha=alpha, timings=timings)
    tracker = scheme.tracker_for(bank)
    mitigation_count = 0
    rfm_count = 0
    acts_since_rfm = 0
    for access in accesses:
        aggressors = list(
            scheme.on_activate(bank, access.row, access.act_cycle)
        )
        state.apply_access(access)
        aggressors.extend(
            scheme.on_row_closed(
                bank, access.row, access.act_cycle, access.close_cycle
            )
        )
        for aggressor in aggressors:
            state.apply_mitigation(aggressor)
            mitigation_count += 1
        acts_since_rfm += 1
        if tracker.in_dram and rfmth and acts_since_rfm >= rfmth:
            acts_since_rfm = 0
            rfm_count += 1
            nominated = scheme.on_rfm(bank, access.close_cycle)
            if nominated is not None:
                state.apply_mitigation(nominated)
                mitigation_count += 1
    return SecurityOutcome(
        peak_charge=state.peak_charge,
        trh=trh,
        mitigations=mitigation_count,
        rfms=rfm_count,
    )
