"""Security verifier: measures the effective threshold T* of a defense.

The verifier drives a mitigation scheme with adversarial access patterns
and compares the *true* charge loss (unified model) against the damage
the scheme *records* for the tracker.  The worst-case ratio between the
two is the factor by which the tolerated Rowhammer threshold shrinks:

    T* = TRH / max_pattern (true damage / recorded damage)

For ImPress-N the search rediscovers Eq 5 (ratio 1 + alpha, achieved by
the Fig-10 decoy pattern); for ImPress-P with full precision the ratio
is 1 (no threshold loss); for a No-RP baseline the ratio is unbounded in
tON, which is exactly why Row-Press breaks plain Rowhammer defenses.

The candidate set is the paper's pattern library (pure RP at several
tON values, K-patterns, the Fig-10 decoy, quantization probes).  It is
not exhaustive: phase-adversarial variants can squeeze an extra
(tACT + tPRE)/tRC of invisible open time out of ImPress-N beyond Eq 5's
one-window statement — see the note in
:class:`repro.core.mitigation.ImpressNScheme`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..core.mitigation import (
    ExpressScheme,
    ImpressNScheme,
    ImpressPScheme,
    MitigationScheme,
    NoRpScheme,
)
from ..dram.timing import CycleTimings
from ..trackers.base import AccountingTracker
from ..workloads.attacks import (
    TimedAccess,
    decoy_pattern_accesses,
    k_pattern_accesses,
    row_press_accesses,
)
from .charge_account import access_tcl

SchemeFactory = Callable[[AccountingTracker, CycleTimings], MitigationScheme]


@dataclass(frozen=True)
class PatternResult:
    """Outcome of one adversarial pattern against one scheme."""

    pattern: str
    true_damage: float
    recorded_damage: float

    @property
    def ratio(self) -> float:
        """True damage per recorded unit — the threshold-reduction factor.

        The scheme's recording happens at access granularity, so a
        pattern whose damage is never recorded at all would be an
        unmitigable design flaw; we report infinity for it.
        """
        if self.recorded_damage <= 0:
            return float("inf")
        return self.true_damage / self.recorded_damage


def replay_pattern(
    scheme: MitigationScheme,
    accesses: Iterable[TimedAccess],
    target_row: int,
    alpha: float,
    timings: CycleTimings,
    bank: int = 0,
) -> PatternResult:
    """Feed accesses through the scheme; account only the target row."""
    tracker = scheme.tracker_for(bank)
    if not isinstance(tracker, AccountingTracker):
        raise TypeError("replay_pattern requires an AccountingTracker")
    true_damage = 0.0
    pattern_name = "custom"
    for access in accesses:
        scheme.on_activate(bank, access.row, access.act_cycle)
        scheme.on_row_closed(
            bank, access.row, access.act_cycle, access.close_cycle
        )
        if access.row == target_row:
            true_damage += access_tcl(access, alpha, timings)
    return PatternResult(
        pattern=pattern_name,
        true_damage=true_damage,
        recorded_damage=tracker.recorded_for(target_row),
    )


def _candidate_patterns(
    timings: CycleTimings,
    rounds: int,
    tmro_cycles: Optional[int],
    max_ton_cycles: Optional[int] = None,
) -> List[tuple]:
    """(name, accesses) candidates; tON capped at tMRO when enforced."""
    target, decoy = 1000, 2000
    trc = timings.tRC
    limit = max_ton_cycles or timings.tONMAX
    if tmro_cycles is not None:
        limit = min(limit, tmro_cycles)
    tons = {
        timings.tRAS,
        timings.tRAS + trc // 4,
        timings.tRAS + trc // 2,
        timings.tRAS + trc - 1,
        timings.tRAS + trc,
        timings.tRAS + 2 * trc - 1,
        timings.tRAS + 4 * trc,
        timings.tRAS + 16 * trc,
        timings.tREFI,
    }
    # Quantization probes: a tON whose EACT sits just below the next
    # representable step of a b-bit fractional counter maximizes the
    # truncation loss (Fig 12's worst case).
    for shift in range(8):
        tons.add(timings.tRAS + max(trc >> shift, 1) - 1)
    tons = sorted(tons)
    patterns = []
    for ton in tons:
        if ton > limit:
            continue
        patterns.append(
            (
                f"row-press tON={ton}cyc",
                row_press_accesses(target, rounds, ton, timings),
            )
        )
    for k in (1, 2, 8):
        if timings.tRAS + k * trc <= limit:
            patterns.append(
                (
                    f"k-pattern K={k}",
                    k_pattern_accesses(target, rounds, k, timings),
                )
            )
    if tmro_cycles is None and timings.tRAS + trc <= limit:
        patterns.append(
            (
                "fig10-decoy",
                decoy_pattern_accesses(target, decoy, rounds, timings),
            )
        )
    return patterns


@dataclass(frozen=True)
class ThresholdReport:
    """Effective-threshold verdict for a scheme."""

    scheme: str
    trh: float
    worst_ratio: float
    worst_pattern: str
    results: Sequence[PatternResult]

    @property
    def effective_threshold(self) -> float:
        if self.worst_ratio == float("inf"):
            return 0.0
        return self.trh / self.worst_ratio

    @property
    def relative_threshold(self) -> float:
        return self.effective_threshold / self.trh


def effective_threshold(
    scheme_name: str,
    trh: float,
    alpha: float,
    timings: CycleTimings,
    rounds: int = 32,
    tmro_cycles: Optional[int] = None,
    fraction_bits: int = 7,
    max_ton_cycles: Optional[int] = None,
) -> ThresholdReport:
    """Search adversarial patterns for the worst damage/recorded ratio."""
    target = 1000

    def build_scheme() -> MitigationScheme:
        tracker = AccountingTracker()
        if scheme_name == "no-rp":
            return NoRpScheme([tracker], timings)
        if scheme_name == "express":
            if tmro_cycles is None:
                raise ValueError("express needs tmro_cycles")
            return ExpressScheme([tracker], timings, tmro_cycles)
        if scheme_name == "impress-n":
            return ImpressNScheme([tracker], timings)
        if scheme_name == "impress-p":
            return ImpressPScheme([tracker], timings, fraction_bits)
        raise ValueError(f"unknown scheme: {scheme_name!r}")

    enforced_tmro = tmro_cycles if scheme_name == "express" else None
    results: List[PatternResult] = []
    worst_ratio = 0.0
    worst_pattern = "none"
    for name, accesses in _candidate_patterns(
        timings, rounds, enforced_tmro, max_ton_cycles
    ):
        scheme = build_scheme()
        result = replay_pattern(scheme, accesses, target, alpha, timings)
        result = PatternResult(
            pattern=name,
            true_damage=result.true_damage,
            recorded_damage=result.recorded_damage,
        )
        results.append(result)
        if result.ratio > worst_ratio:
            worst_ratio = result.ratio
            worst_pattern = name
    return ThresholdReport(
        scheme=scheme_name,
        trh=trh,
        worst_ratio=worst_ratio,
        worst_pattern=worst_pattern,
        results=tuple(results),
    )
