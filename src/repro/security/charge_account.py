"""Charge accounting: the ground truth the security verifier checks against.

Applies the Unified Charge-Loss Model to a stream of timed accesses and
tracks per-victim accumulated charge loss, including the effect of
mitigative refreshes (which restore the victims' charge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..core.charge import ConservativeLinearModel
from ..dram.device import BLAST_RADIUS, victim_rows
from ..dram.timing import CycleTimings
from ..workloads.attacks import TimedAccess


def access_tcl(
    access: TimedAccess, alpha: float, timings: CycleTimings
) -> float:
    """True charge loss one access inflicts on its neighbors (Eq 3)."""
    model = ConservativeLinearModel(
        alpha=alpha,
        tras_trc=timings.tRAS / timings.tRC,
        tpre_trc=timings.tPRE / timings.tRC,
    )
    return model.tcl_of_open_time(access.open_cycles() / timings.tRC)


def pattern_tcl(
    accesses: Iterable[TimedAccess],
    row: int,
    alpha: float,
    timings: CycleTimings,
) -> float:
    """Total charge loss ``row``'s neighbors suffer from a pattern."""
    return sum(
        access_tcl(access, alpha, timings)
        for access in accesses
        if access.row == row
    )


@dataclass
class VictimChargeState:
    """Per-victim accumulated charge loss with mitigation resets.

    Damage from an aggressor applies to its immediately adjacent rows;
    a mitigation on an aggressor refreshes victims within the blast
    radius (2 rows each side), restoring their charge.  A bit flip occurs
    when any victim's accumulated loss reaches the critical value (TRH
    units, by the normalization of Section IV-A).
    """

    alpha: float
    timings: CycleTimings
    charge: Dict[int, float] = field(default_factory=dict)
    peak_charge: float = 0.0

    def apply_access(self, access: TimedAccess) -> None:
        damage = access_tcl(access, self.alpha, self.timings)
        for victim in (access.row - 1, access.row + 1):
            if victim < 0:
                continue
            updated = self.charge.get(victim, 0.0) + damage
            self.charge[victim] = updated
            self.peak_charge = max(self.peak_charge, updated)

    def apply_mitigation(self, aggressor: int) -> List[int]:
        """Refresh the aggressor's victims; returns the refreshed rows."""
        refreshed = victim_rows(aggressor, BLAST_RADIUS)
        for victim in refreshed:
            self.charge[victim] = 0.0
        return refreshed

    def max_charge(self) -> float:
        return max(self.charge.values(), default=0.0)

    def flipped(self, trh: float) -> bool:
        """True if some victim ever reached the critical charge."""
        return self.peak_charge >= trh
