"""Online invariant engine: security guarantees checked *during* a run.

The offline verifier (:mod:`repro.security.verifier`) replays finished
patterns; this module instead watches a live simulation and flags the
first moment a defense's guarantee is broken.  An
:class:`InvariantMonitor` attaches to either engine
(:class:`~repro.sim.system.SystemSimulator` or
:class:`~repro.sim.reference.ReferenceSimulator`) through the banks'
lazy observer hooks and the controllers' kernel dispatch lists — both of
which cost nothing when no monitor is attached, so default runs are
unaffected (``repro bench`` pins this).

Invariants checked:

``damage-ratio``
    Per row closure, the *true* charge damage of the access (Eq 3's
    conservative linear model) must stay within the scheme's documented
    bound of what the scheme *recorded* to its tracker: exactly 1x for
    ImPress-P up to quantization (Section VI), and the
    ``1 + alpha * (tRC + tACT + tPRE)/tRC`` per-round bound for
    ImPress-N's window accounting (Eq 5 plus the hardware-precision
    caveat).  No-RP is exempt (unbounded by design); ExPress's version
    of this guarantee *is* the tMRO deadline below.

``tmro-deadline``
    When a tMRO is configured, no row stays open past the *intended*
    limit (recomputed here from the raw nanosecond figure, deliberately
    not trusting the controller's enforcement value) plus a small
    scheduling slack.  This is what catches the planted ``lax-tmro``
    fault.

``mitigation-conservation``
    At every checkpoint, mitigations produced by the scheme kernels
    equal mitigations consumed as 4-ACT victim-refresh blocks plus the
    backlog still pending — no mitigation is lost or double-counted,
    and mitigative ACTs only move in whole blocks.

``refresh-monotonic``
    At every checkpoint, each bank's refresh schedule only moves
    forward: ``next_due`` and the issued count never decrease.

Violations carry the simulated cycle and the cycle of the nearest
checkpoint at or before them, so a failure can be replayed from the
checkpoint's snapshot rather than from cycle zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.charge import ConservativeLinearModel
from ..sim.config import DEFAULT_EXPRESS_TMRO_NS

#: Default scheduling slack on the tMRO deadline: an in-flight column
#: burst can delay the expiry service call, and the end-of-run flush can
#: close a row one cycle late.  One tRC plus margin covers both with
#: room to spare while staying far below any real enforcement bug.
DEFAULT_TMRO_SLACK_CYCLES = 192

_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach, locatable in simulated time."""

    invariant: str
    cycle: int
    channel: int            # -1 for run-global invariants
    bank: int               # -1 for run-global invariants
    message: str
    checkpoint_cycle: int   # nearest checkpoint at/before, -1 if none

    def describe(self) -> str:
        where = (
            f"channel {self.channel} bank {self.bank}"
            if self.bank >= 0
            else "global"
        )
        return (
            f"[{self.invariant}] cycle {self.cycle} ({where}, "
            f"checkpoint {self.checkpoint_cycle}): {self.message}"
        )


class _ControllerLedger:
    """Per-controller mitigation-conservation bookkeeping."""

    __slots__ = ("controller", "produced", "acts_base", "pending_base")

    def __init__(self, controller) -> None:
        self.controller = controller
        self.produced = 0
        self.acts_base = controller.counts.mitigative_acts
        self.pending_base = sum(
            book.pending_mitigations for book in controller.state
        )


class InvariantMonitor:
    """Live security-invariant checks for one simulation run.

    Construct, then :meth:`attach` to a simulator *before* (or between)
    ``run_until`` steps.  Call :meth:`checkpoint` periodically — it
    snapshots the engine, polls the checkpoint-scoped invariants and
    gives subsequent violations a replay anchor.  Detached simulators
    pay nothing: the bank hooks and kernel wrappers only exist once a
    monitor attaches.
    """

    def __init__(
        self,
        tmro_slack_cycles: int = DEFAULT_TMRO_SLACK_CYCLES,
        keep_snapshots: bool = True,
        max_violations: int = 64,
    ) -> None:
        self.tmro_slack_cycles = tmro_slack_cycles
        self.keep_snapshots = keep_snapshots
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.closures_checked = 0
        self.last_checkpoint_cycle = -1
        self.last_checkpoint_snapshot = None
        self._sim = None
        self._ledgers: List[_ControllerLedger] = []
        self._refresh_marks: List[List[tuple]] = []

    # -- wiring -----------------------------------------------------------

    def attach(self, sim, tmro_ns: Optional[float] = None) -> "InvariantMonitor":
        """Hook into ``sim``'s banks and kernel tables.

        ``tmro_ns`` overrides the defense-derived intended tMRO for
        simulators constructed with an explicit ``tmro_ns`` argument
        (scenario runs); None derives it from ``sim.defense``.
        """
        if self._sim is not None:
            raise RuntimeError("monitor is already attached")
        self._sim = sim
        defense = sim.defense
        timings = sim.system.timings
        trc = timings.tRC
        tact = timings.tACT
        tpre = timings.tPRE
        scheme = defense.scheme
        alpha = defense.alpha
        model = ConservativeLinearModel(
            alpha=alpha,
            tras_trc=timings.tRAS / trc,
            tpre_trc=tpre / trc,
        )
        tcl = model.tcl_of_open_time

        # Intended tMRO, recomputed from the raw nanosecond figure so a
        # buggy/faulted enforcement path cannot vouch for itself.
        if tmro_ns is None:
            tmro_ns = defense.tmro_ns
            if tmro_ns is None and scheme == "express":
                tmro_ns = DEFAULT_EXPRESS_TMRO_NS
        intended_tmro = (
            timings.clock.cycles(tmro_ns) if tmro_ns is not None else None
        )
        deadline = (
            intended_tmro + self.tmro_slack_cycles
            if intended_tmro is not None
            else None
        )

        # Per-scheme recorded-damage model and ratio bound (None skips
        # the ratio check: No-RP records honestly but bounds nothing,
        # and ExPress's bound is the deadline).
        if scheme == "impress-n":
            bound = 1.0 + alpha * (trc + tact + tpre) / trc

            def recorded(act: int, close: int) -> float:
                first = -(-(act + tact) // trc)
                return 1.0 + max(0, close // trc - first)

        elif scheme == "impress-p":
            scale = 1 << defense.tracker_fraction_bits
            if scale > 1:
                bound = max(1.0, alpha) * scale / (scale - 1)
            else:
                bound = 2.0 * max(1.0, alpha)

            def recorded(act: int, close: int) -> float:
                return int((close - act + tpre) / trc * scale) / scale

        else:
            bound = None
            recorded = None

        violations = self.violations

        def violate(
            invariant: str, cycle: int, channel: int, bank: int, message: str
        ) -> None:
            if len(violations) >= self.max_violations:
                return
            violations.append(
                Violation(
                    invariant=invariant,
                    cycle=cycle,
                    channel=channel,
                    bank=bank,
                    message=message,
                    checkpoint_cycle=self.last_checkpoint_cycle,
                )
            )

        self._violate = violate

        for channel, controller in enumerate(sim.controllers):
            ledger = _ControllerLedger(controller)
            self._ledgers.append(ledger)
            self._refresh_marks.append(
                [
                    (sched._next_due, sched._issued)
                    for sched in controller.refresh
                ]
            )
            for bank_id, bank in enumerate(controller.banks):

                def on_close(
                    row: int,
                    open_cycles: int,
                    total_cycles: int,
                    bank=bank,
                    channel=channel,
                    bank_id=bank_id,
                ) -> None:
                    act = bank.act_cycle
                    close = act + open_cycles
                    self.closures_checked += 1
                    if deadline is not None and open_cycles > deadline:
                        violate(
                            "tmro-deadline", close, channel, bank_id,
                            f"row {row} open {open_cycles} cycles, "
                            f"intended tMRO {intended_tmro} "
                            f"(+{self.tmro_slack_cycles} slack)",
                        )
                    if bound is not None:
                        true_damage = tcl(open_cycles / trc)
                        recorded_damage = recorded(act, close)
                        if true_damage > bound * recorded_damage + _EPS:
                            violate(
                                "damage-ratio", close, channel, bank_id,
                                f"row {row}: true damage "
                                f"{true_damage:.4f} exceeds {bound:.4f}x "
                                f"recorded {recorded_damage:.4f}",
                            )

                bank.add_close_hook(on_close)

            def counting(kernel, ledger=ledger):
                def counted(*args) -> int:
                    fired = kernel(*args)
                    ledger.produced += fired
                    return fired

                return counted

            for i, kernel in enumerate(controller._act_kernels):
                if kernel is not None:
                    controller._act_kernels[i] = counting(kernel)
            for i, kernel in enumerate(controller._close_kernels):
                if kernel is not None:
                    controller._close_kernels[i] = counting(kernel)
        return self

    # -- checkpoint-scoped checks ----------------------------------------

    def checkpoint(self):
        """Poll the run-global invariants and anchor a replay point.

        Returns the engine snapshot when ``keep_snapshots`` is set
        (else None).  Safe to call at any stop point, including before
        the first event and after completion.
        """
        if self._sim is None:
            raise RuntimeError("monitor is not attached")
        sim = self._sim
        cycle = sim.now
        for channel, ledger in enumerate(self._ledgers):
            controller = ledger.controller
            consumed_acts = (
                controller.counts.mitigative_acts - ledger.acts_base
            )
            pending = sum(
                book.pending_mitigations for book in controller.state
            ) - ledger.pending_base
            if consumed_acts % 4 != 0:
                self._violate(
                    "mitigation-conservation", cycle, channel, -1,
                    f"mitigative ACTs moved by {consumed_acts}, "
                    f"not a whole 4-ACT victim block",
                )
            elif ledger.produced != consumed_acts // 4 + pending:
                self._violate(
                    "mitigation-conservation", cycle, channel, -1,
                    f"produced {ledger.produced} mitigations but "
                    f"consumed {consumed_acts // 4} + pending {pending}",
                )
            marks = self._refresh_marks[channel]
            for bank_id, sched in enumerate(controller.refresh):
                prev_due, prev_issued = marks[bank_id]
                if sched._next_due < prev_due or sched._issued < prev_issued:
                    self._violate(
                        "refresh-monotonic", cycle, channel, bank_id,
                        f"refresh schedule moved backwards: "
                        f"next_due {prev_due}->{sched._next_due}, "
                        f"issued {prev_issued}->{sched._issued}",
                    )
                marks[bank_id] = (sched._next_due, sched._issued)
        self.last_checkpoint_cycle = cycle
        if self.keep_snapshots:
            self.last_checkpoint_snapshot = sim.snapshot()
            return self.last_checkpoint_snapshot
        return None

    # -- results -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation_names(self) -> tuple:
        """Sorted unique violated invariant names (failure signature)."""
        return tuple(sorted({v.invariant for v in self.violations}))


def monitored_run(
    sim,
    tmro_ns: Optional[float] = None,
    checkpoint_cycles: int = 100_000,
    monitor: Optional[InvariantMonitor] = None,
    max_cycles: int = 1 << 34,
):
    """Run ``sim`` to completion under a monitor with periodic checkpoints.

    Returns ``(result, monitor)``.  The run is stepped ``run_until`` in
    ``checkpoint_cycles`` strides with :meth:`InvariantMonitor.checkpoint`
    between strides — identical simulation behavior to a straight
    ``run()`` (pinned by the checkpoint tests), plus replay anchors.
    """
    if monitor is None:
        monitor = InvariantMonitor()
    monitor.attach(sim, tmro_ns=tmro_ns)
    monitor.checkpoint()
    stop = checkpoint_cycles
    while not sim.run_until(stop_cycle=stop, max_cycles=max_cycles):
        if not sim._heap:
            break
        monitor.checkpoint()
        stop = max(stop + checkpoint_cycles, sim.now + checkpoint_cycles)
    if sim._remaining > 0:
        raise RuntimeError("event heap drained with work remaining")
    result = sim.finish()
    monitor.checkpoint()
    return result, monitor
