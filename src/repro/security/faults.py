"""Test-only defense-fault injection registry.

The invariant engine (:mod:`repro.security.invariants`) and the scenario
fuzzer (:mod:`repro.scenarios.fuzz`) are validated end to end by
*planting* a known defense bug and asserting the fuzzer finds it,
shrinks it and stores a replayable reproducer.  The plant lives here:
a process-local set of active fault names that defense construction
code consults.

Faults are keyed by name so they stay out of the recipe/config surface
(adding a field to ``DefenseConfig`` would change every content-store
key).  Nothing in a production run ever activates one; the registry is
empty unless a test or ``repro fuzz --fault`` turns a fault on.

Known faults:

``lax-tmro``
    :meth:`DefenseConfig.express_tmro_cycles` returns 4x the configured
    tMRO, so the controller enforces a far weaker row-open limit than
    the tracker provisioning assumed.  The invariant monitor computes
    the *intended* tMRO independently from the raw nanosecond figure,
    so any workload that holds a row open between the intended and the
    lax limit trips the ``tmro-deadline`` invariant.

**Process-layer faults** extend the same registry into the distributed
sweep runtime (:mod:`repro.distrib`): instead of a wrong number, the
planted bug is a crash or a stall at a protocol-critical instant.  The
chaos harness injects them into *worker processes* (``repro worker
--fault ...``) and asserts the sweep still completes with results
bit-identical to a serial run:

``worker-kill-mid-task``
    The worker ``os._exit``\\ s right after writing its first engine
    checkpoint — a SIGKILL-equivalent death mid-simulation, leaving an
    expired-lease claim and a resumable checkpoint blob behind.

``worker-kill-mid-put``
    The worker dies *inside* the result store's atomic write, between
    the temp-file write and the rename — the torn-write window.  The
    store must read clean (the blob is simply missing) and ``gc`` must
    sweep the orphaned temp file.

``worker-freeze-heartbeat``
    The worker's heartbeat thread stops refreshing the lease after the
    first beat while the simulation keeps running — a straggler whose
    lease expires under it.  The task is reclaimed and re-run
    elsewhere; the frozen worker's late result deduplicates by content
    key.

``serve-kill-mid-request``
    The ``repro serve`` daemon ``os._exit``\\ s immediately after
    writing a request's journal entry, before submitting or executing
    anything — the exact window the write-ahead journal exists for.
    A restarted daemon must replay the entry to completion with a
    result blob byte-identical to a serial run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: Fault names the registry accepts, mapped to one-line descriptions.
KNOWN_FAULTS = {
    "lax-tmro": "express_tmro_cycles returns 4x the configured tMRO",
    "worker-kill-mid-task":
        "worker process dies right after its first checkpoint write",
    "worker-kill-mid-put":
        "worker dies between the result blob's temp write and rename",
    "worker-freeze-heartbeat":
        "worker's lease heartbeat freezes after the first beat",
    "serve-kill-mid-request":
        "serve daemon dies after the journal write, before any "
        "execution or result put",
}

#: Enforcement factor the ``lax-tmro`` fault applies.
LAX_TMRO_FACTOR = 4

_active: set = set()


def fault_active(name: str) -> bool:
    """True when ``name`` has been injected (hot path: one set probe)."""
    return name in _active


def inject(name: str) -> None:
    """Activate a known fault process-wide until :func:`clear`."""
    if name not in KNOWN_FAULTS:
        raise ValueError(
            f"unknown fault {name!r}; known: {sorted(KNOWN_FAULTS)}"
        )
    _active.add(name)


def clear(name: str | None = None) -> None:
    """Deactivate one fault, or every fault when ``name`` is None."""
    if name is None:
        _active.clear()
    else:
        _active.discard(name)


def active_faults() -> tuple:
    """Currently injected fault names, sorted (for run metadata)."""
    return tuple(sorted(_active))


@contextmanager
def injected(name: str) -> Iterator[None]:
    """Scope a fault to a ``with`` block (always deactivates on exit)."""
    inject(name)
    try:
        yield
    finally:
        clear(name)
