"""Test-only defense-fault injection registry.

The invariant engine (:mod:`repro.security.invariants`) and the scenario
fuzzer (:mod:`repro.scenarios.fuzz`) are validated end to end by
*planting* a known defense bug and asserting the fuzzer finds it,
shrinks it and stores a replayable reproducer.  The plant lives here:
a process-local set of active fault names that defense construction
code consults.

Faults are keyed by name so they stay out of the recipe/config surface
(adding a field to ``DefenseConfig`` would change every content-store
key).  Nothing in a production run ever activates one; the registry is
empty unless a test or ``repro fuzz --fault`` turns a fault on.

Known faults:

``lax-tmro``
    :meth:`DefenseConfig.express_tmro_cycles` returns 4x the configured
    tMRO, so the controller enforces a far weaker row-open limit than
    the tracker provisioning assumed.  The invariant monitor computes
    the *intended* tMRO independently from the raw nanosecond figure,
    so any workload that holds a row open between the intended and the
    lax limit trips the ``tmro-deadline`` invariant.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: Fault names the registry accepts, mapped to one-line descriptions.
KNOWN_FAULTS = {
    "lax-tmro": "express_tmro_cycles returns 4x the configured tMRO",
}

#: Enforcement factor the ``lax-tmro`` fault applies.
LAX_TMRO_FACTOR = 4

_active: set = set()


def fault_active(name: str) -> bool:
    """True when ``name`` has been injected (hot path: one set probe)."""
    return name in _active


def inject(name: str) -> None:
    """Activate a known fault process-wide until :func:`clear`."""
    if name not in KNOWN_FAULTS:
        raise ValueError(
            f"unknown fault {name!r}; known: {sorted(KNOWN_FAULTS)}"
        )
    _active.add(name)


def clear(name: str | None = None) -> None:
    """Deactivate one fault, or every fault when ``name`` is None."""
    if name is None:
        _active.clear()
    else:
        _active.discard(name)


def active_faults() -> tuple:
    """Currently injected fault names, sorted (for run metadata)."""
    return tuple(sorted(_active))


@contextmanager
def injected(name: str) -> Iterator[None]:
    """Scope a fault to a ``with`` block (always deactivates on exit)."""
    inject(name)
    try:
        yield
    finally:
        clear(name)
