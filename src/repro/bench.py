"""Perf-benchmark harness: tracked cycles-per-second measurements.

Times the canonical simulations (per tracker, per workload class, plus
the frozen :class:`~repro.sim.reference.ReferenceSimulator` on the
canonical single-core config) and writes ``BENCH_<n>.json`` artifacts so
the engine's throughput trajectory is measurable across PRs.

The metric is **simulated DRAM cycles per wall-clock second** — the
quantity that decides how long a paper sweep takes.  Each artifact also
records a pure-Python *calibration score* (fixed-work loop, ops/sec) so
:mod:`tools.bench_compare` can normalize away machine-speed differences
when CI compares a run against the committed baseline.

Entry points:

* ``repro bench`` (see :mod:`repro.cli`) and ``tools/perf_bench.py``
  both call :func:`main`.
* Tests drive :func:`run_benchmarks` / :func:`write_artifact` directly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .experiments.common import SweepRunner
from .sim.config import DefenseConfig, SystemConfig
from .sim.reference import ReferenceSimulator
from .sim.system import SystemSimulator
from .workloads.compiled import (
    compiled_cache_stats,
    compiled_rate_mode_traces,
)

ARTIFACT_SCHEMA = 1
ARTIFACT_PATTERN = re.compile(r"BENCH_(\d+)\.json$")
DEFAULT_OUT_DIR = Path("benchmarks") / "baselines"

#: Requests per core: full mode for local trend tracking, quick mode for
#: the CI smoke gate.
FULL_REQUESTS = 1500
QUICK_REQUESTS = 400

#: The canonical single-core configuration the acceptance speedup is
#: measured on (also run through the reference engine each time).
CANONICAL_WORKLOAD = "mcf"


@dataclass(frozen=True)
class BenchSpec:
    """One timed benchmark configuration.

    ``engine`` selects what is measured:

    * ``"fast"`` / ``"reference"`` — a full simulation; ``cycles`` are
      simulated DRAM cycles.
    * ``"tracker-kernel"`` — the tracker's record kernel alone, driven
      by a seeded synthetic activation stream; ``cycles`` counts kernel
      record calls, so ``cycles_per_sec`` reads as records/second.
    * ``"sweep"`` — a fresh ``SweepRunner.run_many`` batch over a small
      (workload x defense) grid; ``cycles`` sums the simulated cycles
      of every point, so ``cycles_per_sec`` is sweep throughput
      including trace compilation and cache management.
    * ``"scenario"`` — a full simulation of the scenario preset named
      by ``workload`` (its own topology and defense; see
      ``repro scenario list``), measuring the engine under co-located
      attacker traffic; ``cycles`` are simulated DRAM cycles.
    * ``"scenario-invariants"`` — the same scenario preset run under an
      attached :class:`~repro.security.invariants.InvariantMonitor`
      with periodic checkpoints, so the cost of online checking is a
      tracked number rather than a guess.
    * ``"distributed-sweep"`` — a small (workload x defense) grid
      executed through the full :mod:`repro.distrib` machinery (queue
      submit, claim, lease, checkpoint, store put, collect) with the
      coordinator in degraded in-process mode — single-core CI safe,
      so the row tracks the coordination overhead itself; ``cycles``
      sums the simulated cycles of every task.
    * ``"serial-grid"`` / ``"batch-grid"`` — the same pinned
      12-defense grid (:func:`grid_defenses`) on ``workload``, run
      point-by-point on the fast engine vs. through the NumPy batch
      tier (:func:`repro.sim.batch.simulate_batch`); ``cycles`` sums
      the simulated cycles of every lane, so the two rows' ratio *is*
      the batch-tier speedup (``batch-grid`` is skipped when NumPy is
      unavailable).  ``tracker``/``scheme`` are the markers
      ``"mixed"``/``"grid"`` — grid rows have no single defense, and
      :meth:`defense` must not be called for them.
    """

    name: str
    workload: str
    tracker: str = "none"
    scheme: str = "no-rp"
    n_cores: int = 8
    engine: str = "fast"
    #: Pin this benchmark's request count regardless of quick/full mode.
    #: The canonical single-core pair uses it so the headline speedup is
    #: measured on the same run shape in every artifact.
    fixed_requests: Optional[int] = None

    def defense(self) -> Optional[DefenseConfig]:
        """The defense configuration this benchmark simulates under."""
        if self.engine in ("serial-grid", "batch-grid"):
            raise ValueError(
                f"{self.name}: grid rows sweep {len(grid_defenses())} "
                "defenses (grid_defenses()); there is no single defense"
            )
        if self.tracker == "none" and self.scheme == "no-rp":
            return None
        return DefenseConfig(tracker=self.tracker, scheme=self.scheme)

    def system(self) -> SystemConfig:
        """The simulated machine for this benchmark."""
        return SystemConfig(n_cores=self.n_cores)


#: Kernel-microbench records per configured request (quick mode's 400
#: requests drive 12k records — enough churn to fill every table).
KERNEL_RECORDS_PER_REQUEST = 30

#: RFM cadence for in-DRAM trackers in the kernel microbench.
KERNEL_RFM_EVERY = 32

#: The sweep-throughput row's pinned grid shape.
SWEEP_BENCH_REQUESTS = 200

#: Pinned request budget for the serial-vs-batch grid rows.  Large
#: enough that per-lane simulation dominates the batch tier's replay
#: overhead (the speedup saturates above ~600 requests/core), small
#: enough for the CI smoke gate.
GRID_BENCH_REQUESTS = 600


def grid_defenses() -> List[Optional[DefenseConfig]]:
    """The pinned defense grid the serial/batch grid rows sweep.

    Shaped like the paper's K-sweeps: every tracker appears, several at
    two provisioning thresholds (a threshold change alters tracker
    state, not timing, so the lanes share a recorded timeline — exactly
    the redundancy the batch tier amortizes).  PARA rides along too:
    its probabilistic mitigations defeat replay and force the per-lane
    fallback path, so the rows measure the tier as real sweeps hit it,
    not a best case.
    """
    return [
        None,
        DefenseConfig(tracker="graphene", scheme="no-rp"),
        DefenseConfig(tracker="graphene", scheme="no-rp", trh=2000.0),
        DefenseConfig(tracker="graphene", scheme="impress-n"),
        DefenseConfig(tracker="graphene", scheme="impress-p"),
        DefenseConfig(tracker="graphene", scheme="impress-p", trh=2000.0),
        DefenseConfig(tracker="prac", scheme="no-rp"),
        DefenseConfig(tracker="prac", scheme="no-rp", trh=2000.0),
        DefenseConfig(tracker="prac", scheme="impress-p"),
        DefenseConfig(tracker="dsac", scheme="no-rp"),
        DefenseConfig(tracker="dsac", scheme="no-rp", trh=2000.0),
        DefenseConfig(tracker="para", scheme="no-rp"),
        DefenseConfig(tracker="mint", scheme="no-rp"),
        DefenseConfig(tracker="mint", scheme="impress-p"),
        DefenseConfig(tracker="mithril", scheme="no-rp"),
        DefenseConfig(tracker="mithril", scheme="impress-p"),
    ]

#: The canonical benchmark set: the acceptance pair (fast + reference on
#: the single-core config), one benchmark per workload class, one
#: simulation per tracker, a record-kernel microbench per tracker, and
#: the sweep-batch row.
CANONICAL_BENCHMARKS: Sequence[BenchSpec] = (
    BenchSpec(
        "single_core", CANONICAL_WORKLOAD, n_cores=1,
        fixed_requests=FULL_REQUESTS,
    ),
    BenchSpec(
        "single_core_reference", CANONICAL_WORKLOAD, n_cores=1,
        engine="reference", fixed_requests=FULL_REQUESTS,
    ),
    BenchSpec("class_spec", "mcf"),
    BenchSpec("class_stream", "add"),
    BenchSpec("class_mix", "add_copy"),
    BenchSpec("tracker_graphene", "mcf", tracker="graphene",
              scheme="impress-p"),
    BenchSpec("tracker_para", "mcf", tracker="para", scheme="no-rp"),
    BenchSpec("tracker_mithril", "mcf", tracker="mithril", scheme="no-rp"),
    BenchSpec("tracker_mint", "mcf", tracker="mint", scheme="impress-n"),
    BenchSpec("tracker_prac", "mcf", tracker="prac", scheme="impress-p"),
    BenchSpec("tracker_dsac", "mcf", tracker="dsac", scheme="no-rp"),
    BenchSpec("tracker_grid_serial", "mcf", tracker="mixed", scheme="grid",
              engine="serial-grid", fixed_requests=GRID_BENCH_REQUESTS),
    BenchSpec("tracker_grid_batch", "mcf", tracker="mixed", scheme="grid",
              engine="batch-grid", fixed_requests=GRID_BENCH_REQUESTS),
    BenchSpec("ukernel_graphene", "synthetic", tracker="graphene",
              scheme="kernel", n_cores=1, engine="tracker-kernel"),
    BenchSpec("ukernel_para", "synthetic", tracker="para",
              scheme="kernel", n_cores=1, engine="tracker-kernel"),
    BenchSpec("ukernel_mithril", "synthetic", tracker="mithril",
              scheme="kernel", n_cores=1, engine="tracker-kernel"),
    BenchSpec("ukernel_mint", "synthetic", tracker="mint",
              scheme="kernel", n_cores=1, engine="tracker-kernel"),
    BenchSpec("ukernel_prac", "synthetic", tracker="prac",
              scheme="kernel", n_cores=1, engine="tracker-kernel"),
    BenchSpec("ukernel_dsac", "synthetic", tracker="dsac",
              scheme="kernel", n_cores=1, engine="tracker-kernel"),
    BenchSpec("sweep_run_many", "mcf+add", tracker="graphene",
              scheme="impress-p", n_cores=2, engine="sweep",
              fixed_requests=SWEEP_BENCH_REQUESTS),
    BenchSpec("distributed_sweep", "mcf+add", tracker="graphene",
              scheme="impress-p", n_cores=2, engine="distributed-sweep",
              fixed_requests=SWEEP_BENCH_REQUESTS),
    BenchSpec("colocated_attack", "colocated_hammer_mcf",
              tracker="graphene", scheme="impress-p", n_cores=8,
              engine="scenario"),
    BenchSpec("scenario_invariants", "colocated_hammer_mcf",
              tracker="graphene", scheme="impress-p", n_cores=8,
              engine="scenario-invariants"),
)


@dataclass
class BenchResult:
    """One benchmark's measurement."""

    spec: BenchSpec
    n_requests: int
    cycles: int
    seconds: float
    repeats: int

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.seconds if self.seconds else 0.0

    def to_json(self) -> Dict:
        """The artifact row for this measurement."""
        return {
            "name": self.spec.name,
            "workload": self.spec.workload,
            "tracker": self.spec.tracker,
            "scheme": self.spec.scheme,
            "n_cores": self.spec.n_cores,
            "engine": self.spec.engine,
            "n_requests": self.n_requests,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "repeats": self.repeats,
            "cycles_per_sec": self.cycles_per_sec,
        }


@dataclass
class BenchReport:
    """A full benchmark run, ready to serialize."""

    results: List[BenchResult]
    quick: bool
    repeats: int
    n_requests: int
    calibration_ops_per_sec: float
    sweep_cache: Dict[str, float] = field(default_factory=dict)
    trace_cache: Dict[str, float] = field(default_factory=dict)

    def speedup_vs_reference(self) -> Optional[float]:
        """Fast-engine over reference-engine throughput, canonical config."""
        by_name = {result.spec.name: result for result in self.results}
        fast = by_name.get("single_core")
        reference = by_name.get("single_core_reference")
        if fast is None or reference is None or not reference.cycles_per_sec:
            return None
        return fast.cycles_per_sec / reference.cycles_per_sec

    def batch_speedup(self) -> Optional[float]:
        """Batch-tier over per-point throughput on the pinned grid pair.

        Both rows run in the same process on the same machine, so the
        ratio is calibration-normalized by construction.  None when
        either row is absent (e.g. NumPy missing skipped the batch leg).
        """
        by_name = {result.spec.name: result for result in self.results}
        batch = by_name.get("tracker_grid_batch")
        serial = by_name.get("tracker_grid_serial")
        if batch is None or serial is None or not serial.cycles_per_sec:
            return None
        return batch.cycles_per_sec / serial.cycles_per_sec

    def to_json(self) -> Dict:
        """Serialize the run to the ``BENCH_<n>.json`` artifact shape."""
        return {
            "schema": ARTIFACT_SCHEMA,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "quick": self.quick,
            "repeats": self.repeats,
            "n_requests": self.n_requests,
            "machine": machine_metadata(),
            "calibration_ops_per_sec": self.calibration_ops_per_sec,
            "speedup_vs_reference": self.speedup_vs_reference(),
            "batch_grid_speedup": self.batch_speedup(),
            "sweep_cache": self.sweep_cache,
            "trace_cache": self.trace_cache,
            "benchmarks": [result.to_json() for result in self.results],
        }


def machine_metadata() -> Dict[str, object]:
    """Hardware/software context recorded in every artifact."""
    meta: Dict[str, object] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "processor": platform.processor() or platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    try:
        # Resolve against the tree this module lives in, not the CWD —
        # otherwise running from inside an unrelated repository would
        # record that repository's revision in the artifact.
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if rev.returncode == 0:
            meta["git_rev"] = rev.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return meta


def calibrate(target_seconds: float = 0.05, samples: int = 3) -> float:
    """Fixed-work pure-Python loop score, in operations per second.

    Used to normalize cycles-per-second numbers across machines of
    different single-thread speed: the simulator is pure Python, so its
    throughput tracks this score closely.  Takes the best of ``samples``
    windows — interference (a scheduler stall on a loaded CI host) can
    only *lower* a sample, so the maximum is the stable machine score
    and a single noisy window cannot swing the normalized gate.
    """
    chunk = 200_000

    def spin(n: int) -> int:
        total = 0
        for i in range(n):
            total += i & 7
        return total

    def one_sample() -> float:
        ops = 0
        start = time.perf_counter()
        while True:
            spin(chunk)
            ops += chunk
            elapsed = time.perf_counter() - start
            if elapsed >= target_seconds:
                return ops / elapsed

    spin(chunk)  # warm up
    return max(one_sample() for _ in range(max(1, samples)))


#: Keep sampling a benchmark until this much wall time has been spent
#: measuring it (or MAX_REPEATS is hit).  Quick-mode benches finish in
#: tens of milliseconds, where a single scheduler stall can swing one
#: sample by >30%; the minimum over ~a third of a second of samples is
#: stable enough for the CI gate.
MIN_MEASURE_SECONDS = 0.3
MAX_REPEATS = 20


def _simulation_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the ``fast`` / ``reference`` engines.

    Trace generation and compilation stay outside the timed region —
    the benchmark measures engine throughput, not trace synthesis.
    """
    system = spec.system()
    defense = spec.defense()
    compiled = compiled_rate_mode_traces(
        spec.workload, system.n_cores, n_requests, 0, system.mapper()
    )
    traces = [entry.trace for entry in compiled]
    if spec.engine == "reference":
        def timed_pass() -> int:
            return ReferenceSimulator(system, traces, defense).run(
            ).elapsed_cycles
    elif spec.engine == "batch":
        # A single point degenerates to one fast run inside the batch
        # tier; this row exists to time the plumbing, not to show wins
        # (those are the batch-grid rows).
        from .sim.batch import simulate_batch

        points = [(spec.workload, defense, None)]

        def timed_pass() -> int:
            return simulate_batch(
                points, system=system, n_requests_per_core=n_requests,
                seed=0,
            )[0].elapsed_cycles
    else:
        def timed_pass() -> int:
            return SystemSimulator(
                system, traces, defense, compiled=compiled
            ).run().elapsed_cycles
    return timed_pass


def _tracker_kernel_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the per-tracker record microbench.

    Replays a pre-generated skewed (row, raw-weight) stream straight
    into the tracker's raw kernel (a fresh tracker per pass), issuing
    ``on_rfm`` every :data:`KERNEL_RFM_EVERY` records for the in-DRAM
    trackers.  Returns the record count, so the artifact row's
    ``cycles_per_sec`` reads as kernel records per second.
    """
    import random

    defense = DefenseConfig(
        tracker=spec.tracker, scheme="impress-p", trh=4000.0
    )
    scale = 1 << defense.fraction_bits
    n_records = n_requests * KERNEL_RECORDS_PER_REQUEST
    rng = random.Random(1234)
    rows: List[int] = []
    raws: List[int] = []
    for _ in range(n_records):
        # A few hot aggressors over a light tail, like the goldens.
        rows.append(
            rng.randrange(8) if rng.random() < 0.25
            else rng.randrange(4096)
        )
        raws.append(scale + rng.randrange(2 * scale))
    uses_rfm = spec.tracker in ("mithril", "mint")

    def timed_pass() -> int:
        tracker = defense._build_tracker(0)
        kernel = tracker.raw_kernel(scale)
        if uses_rfm:
            on_rfm = tracker.on_rfm
            step = 0
            for row, raw in zip(rows, raws):
                kernel(row, raw)
                step += 1
                if not step % KERNEL_RFM_EVERY:
                    on_rfm(step)
        else:
            for row, raw in zip(rows, raws):
                kernel(row, raw)
        return n_records

    return timed_pass


def _sweep_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the ``run_many`` sweep-throughput row.

    Each pass batches a small (workload x defense) grid through a fresh
    :class:`SweepRunner` (serial — the row must be comparable on
    single-core CI hosts) and returns the summed simulated cycles, so
    the row tracks end-to-end sweep throughput including cache
    management and result merging.
    """
    workloads = spec.workload.split("+")
    defense = spec.defense()

    def timed_pass() -> int:
        runner = SweepRunner(
            system=SystemConfig(
                n_cores=spec.n_cores, banks_per_channel=8
            ),
            n_requests=n_requests,
        )
        results = runner.run_many(
            [(workload, None) for workload in workloads]
            + [(workload, defense) for workload in workloads]
        )
        return sum(result.elapsed_cycles for result in results)

    return timed_pass


def _scenario_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the co-located scenario row.

    Resolves the preset named by ``spec.workload``, pre-compiles its
    heterogeneous per-core traces (benign victims + attacker
    generators) outside the timed region, and times the engine alone —
    the same contract as the ``fast`` rows, but under adversarial
    co-located traffic on the preset's own topology and defense.
    """
    from .scenarios.registry import get_scenario
    from .workloads.compiled import compiled_source_traces

    scenario = get_scenario(spec.workload)
    system = scenario.system
    if isinstance(scenario.cores, str):
        compiled = compiled_rate_mode_traces(
            scenario.cores, system.n_cores, n_requests, 0, system.mapper()
        )
    else:
        compiled = compiled_source_traces(
            scenario.cores, n_requests, 0, system.mapper()
        )
    traces = [entry.trace for entry in compiled]

    def timed_pass() -> int:
        return SystemSimulator(
            system, traces, scenario.defense, tmro_ns=scenario.tmro_ns,
            compiled=compiled,
        ).run().elapsed_cycles

    return timed_pass


def _scenario_invariants_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the monitored co-located scenario row.

    The same preset and trace set as the ``scenario`` row, but each
    pass runs under a fresh :class:`InvariantMonitor` with periodic
    checkpoints (:func:`repro.security.invariants.monitored_run`).  The
    gap between this row and ``colocated_attack`` is the full online
    checking overhead; the monitor-disabled row itself must stay within
    noise of earlier artifacts — the hooks are zero-cost when detached.
    """
    from .scenarios.registry import get_scenario
    from .security.invariants import monitored_run
    from .workloads.compiled import compiled_source_traces

    scenario = get_scenario(spec.workload)
    system = scenario.system
    if isinstance(scenario.cores, str):
        compiled = compiled_rate_mode_traces(
            scenario.cores, system.n_cores, n_requests, 0, system.mapper()
        )
    else:
        compiled = compiled_source_traces(
            scenario.cores, n_requests, 0, system.mapper()
        )
    traces = [entry.trace for entry in compiled]

    def timed_pass() -> int:
        sim = SystemSimulator(
            system, traces, scenario.defense, tmro_ns=scenario.tmro_ns,
            compiled=compiled,
        )
        result, monitor = monitored_run(
            sim, tmro_ns=scenario.tmro_ns, checkpoint_cycles=50_000
        )
        if not monitor.ok:
            raise AssertionError(
                "benchmark preset violated invariants: "
                + ", ".join(monitor.violation_names())
            )
        return result.elapsed_cycles

    return timed_pass


def _distributed_sweep_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the distributed-sweep throughput row.

    Each pass runs the same grid shape as ``sweep_run_many`` through
    the whole :mod:`repro.distrib` stack in a fresh temporary
    directory: tasks submitted to a real filesystem queue, claimed and
    executed through the lease/checkpoint path, results put into a
    content-addressed store and collected.  No workers are spawned —
    the coordinator's degraded serial mode executes in-process, which
    keeps the row meaningful on single-core CI hosts and makes the gap
    to ``sweep_run_many`` read directly as coordination overhead.
    """
    import tempfile

    from .distrib.coordinator import run_distributed_sweep, shard_points
    from .distrib.queue import FileWorkQueue
    from .results.store import ResultStore
    from .scenarios.spec import ScenarioSpec

    workloads = spec.workload.split("+")
    system = SystemConfig(n_cores=spec.n_cores, banks_per_channel=8)
    defense = spec.defense()
    specs = [
        ScenarioSpec.benign(workload, system=system, defense=d)
        for workload in workloads
        for d in (None, defense)
    ]
    recipes = shard_points(specs, n_requests, 0)

    def timed_pass() -> int:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            queue = FileWorkQueue(root / "queue")
            store = ResultStore(root / "store")
            outcome = run_distributed_sweep(
                recipes, queue, store,
                poll_s=0.0, serial_grace_s=0.0,
            )
            return sum(
                result.elapsed_cycles for result in outcome.results
            )

    return timed_pass


def _serial_grid_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the per-point leg of the grid pair.

    Runs the pinned :func:`grid_defenses` sweep one fast-engine
    simulation per lane — the way a sweep executed before the batch
    tier existed.  Trace compilation is warmed outside the timed
    region, same as the other simulation rows.
    """
    from .sim.system import simulate_workload

    system = spec.system()
    compiled_rate_mode_traces(
        spec.workload, system.n_cores, n_requests, 0, system.mapper()
    )
    defenses = grid_defenses()

    def timed_pass() -> int:
        total = 0
        for defense in defenses:
            total += simulate_workload(
                spec.workload, defense, system=system,
                n_requests_per_core=n_requests,
            ).elapsed_cycles
        return total

    return timed_pass


def _batch_grid_pass(spec: BenchSpec, n_requests: int):
    """Timed-pass closure for the batch-tier leg of the grid pair.

    The identical grid through :func:`repro.sim.batch.simulate_batch`;
    the ratio against ``tracker_grid_serial`` is the tier's speedup on
    an honest defense mix (PARA forces one fallback lane).  Raises
    ImportError when NumPy is missing — ``run_benchmarks`` skips the
    row with a note.
    """
    from .sim.batch import simulate_batch

    system = spec.system()
    compiled_rate_mode_traces(
        spec.workload, system.n_cores, n_requests, 0, system.mapper()
    )
    points = [(spec.workload, defense, None) for defense in grid_defenses()]

    def timed_pass() -> int:
        return sum(
            result.elapsed_cycles
            for result in simulate_batch(
                points, system=system, n_requests_per_core=n_requests,
                seed=0,
            )
        )

    return timed_pass


_ENGINE_PASSES = {
    "fast": _simulation_pass,
    "reference": _simulation_pass,
    "batch": _simulation_pass,
    "tracker-kernel": _tracker_kernel_pass,
    "sweep": _sweep_pass,
    "scenario": _scenario_pass,
    "scenario-invariants": _scenario_invariants_pass,
    "distributed-sweep": _distributed_sweep_pass,
    "serial-grid": _serial_grid_pass,
    "batch-grid": _batch_grid_pass,
}


def run_one(spec: BenchSpec, n_requests: int, repeats: int) -> BenchResult:
    """Time one benchmark: the best (minimum) wall time over its samples.

    Takes at least ``repeats`` samples, and keeps sampling until
    :data:`MIN_MEASURE_SECONDS` of measurement has accumulated (capped
    at :data:`MAX_REPEATS`), so short benchmarks get enough samples for
    the minimum to be a stable machine-speed estimate.
    """
    if spec.fixed_requests is not None:
        n_requests = spec.fixed_requests
    timed_pass = _ENGINE_PASSES[spec.engine](spec, n_requests)
    best = float("inf")
    cycles = 0
    total = 0.0
    samples = 0
    while samples < max(1, repeats) or (
        total < MIN_MEASURE_SECONDS and samples < MAX_REPEATS
    ):
        start = time.perf_counter()
        cycles = timed_pass()
        elapsed = time.perf_counter() - start
        total += elapsed
        samples += 1
        best = min(best, elapsed)
    return BenchResult(
        spec=spec, n_requests=n_requests, cycles=cycles,
        seconds=best, repeats=samples,
    )


def _sweep_cache_sample(n_requests: int) -> Dict[str, float]:
    """Exercise a small SweepRunner sweep and report its cache behavior."""
    runner = SweepRunner(
        system=SystemConfig(n_cores=2, banks_per_channel=8),
        n_requests=min(n_requests, 200),
    )
    defense = DefenseConfig(tracker="graphene", scheme="impress-p")
    start = time.perf_counter()
    for workload in ("mcf", "add"):
        # Each speedup() call re-requests the shared baseline: the
        # second-and-later lookups must come from the run cache.
        runner.speedup(workload, defense)
        runner.speedup(workload, None)
    elapsed = time.perf_counter() - start
    payload = runner.cache_stats().to_json()
    payload["seconds"] = elapsed
    return payload


def run_benchmarks(
    quick: bool = False,
    repeats: Optional[int] = None,
    n_requests: Optional[int] = None,
    specs: Optional[Sequence[BenchSpec]] = None,
    progress=None,
) -> BenchReport:
    """Run the canonical benchmark set and return the report."""
    if repeats is None:
        repeats = 2 if quick else 3
    if n_requests is None:
        n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    if specs is None:
        specs = CANONICAL_BENCHMARKS
    calibration = calibrate()
    results: List[BenchResult] = []
    for spec in specs:
        try:
            result = run_one(spec, n_requests, repeats)
        except ImportError as error:
            # The batch-grid row needs NumPy; without it the row is
            # skipped (never silently zeroed) and the pure-Python rows
            # still produce a complete artifact.
            if progress is not None:
                progress(f"  {spec.name:<24} skipped: {error}")
            continue
        results.append(result)
        if progress is not None:
            progress(
                f"  {spec.name:<24} {result.cycles_per_sec:>12,.0f} cyc/s "
                f"({result.cycles} cycles, best of {result.repeats})"
            )
    return BenchReport(
        results=results,
        quick=quick,
        repeats=repeats,
        n_requests=n_requests,
        calibration_ops_per_sec=calibration,
        sweep_cache=_sweep_cache_sample(n_requests),
        trace_cache=compiled_cache_stats().to_json(),
    )


# -- profiling ------------------------------------------------------------


def profile_row(
    name: str,
    quick: bool = False,
    n_requests: Optional[int] = None,
    top: int = 25,
    progress=print,
) -> int:
    """Run one bench row under cProfile and print the hottest functions.

    The row's timed pass runs once unprofiled (warming trace and sweep
    caches, exactly like the sampling loop does) and once under the
    profiler, so the table reflects steady-state behavior.  This is the
    ``repro bench --profile <row>`` entry point: perf work should start
    from this table, not from guesses.
    """
    import cProfile
    import io
    import pstats

    specs = {spec.name: spec for spec in CANONICAL_BENCHMARKS}
    spec = specs.get(name)
    if spec is None:
        progress(
            f"error: unknown benchmark {name!r}; "
            f"choose from: {', '.join(sorted(specs))}"
        )
        return 2
    if n_requests is None:
        n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    if spec.fixed_requests is not None:
        n_requests = spec.fixed_requests
    timed_pass = _ENGINE_PASSES[spec.engine](spec, n_requests)
    timed_pass()  # warm-up: steady-state caches, like the sampling loop
    profiler = cProfile.Profile()
    profiler.enable()
    cycles = timed_pass()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    progress(
        f"profile of {name} ({spec.engine} engine, "
        f"{n_requests} requests, {cycles} cycles):"
    )
    progress(buffer.getvalue().rstrip())
    return 0


# -- artifacts ------------------------------------------------------------


def artifact_index(path: Path) -> Optional[int]:
    """The ``<n>`` of a ``BENCH_<n>.json`` path, or None."""
    match = ARTIFACT_PATTERN.search(path.name)
    return int(match.group(1)) if match else None


def list_artifacts(out_dir: Path) -> List[Path]:
    """All ``BENCH_<n>.json`` files in ``out_dir``, oldest index first."""
    if not out_dir.is_dir():
        return []
    found = [
        path for path in out_dir.iterdir() if artifact_index(path) is not None
    ]
    return sorted(found, key=lambda path: artifact_index(path))


def latest_artifact(out_dir: Path) -> Optional[Path]:
    """The highest-numbered artifact in ``out_dir``, if any."""
    artifacts = list_artifacts(out_dir)
    return artifacts[-1] if artifacts else None


def next_artifact_path(out_dir: Path) -> Path:
    """The next free ``BENCH_<n>.json`` slot in ``out_dir``."""
    artifacts = list_artifacts(out_dir)
    next_index = (artifact_index(artifacts[-1]) + 1) if artifacts else 1
    return out_dir / f"BENCH_{next_index:04d}.json"


def write_artifact(report: BenchReport, out_dir: Path) -> Path:
    """Serialize ``report`` into the next ``BENCH_<n>.json`` slot."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = next_artifact_path(out_dir)
    path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    return path


def compare_to_previous(
    report: BenchReport, previous_path: Optional[Path]
) -> List[str]:
    """Human-readable per-benchmark comparison lines vs. an artifact.

    Applies the same calibration normalization as
    ``tools/bench_compare.py`` (when both sides carry a score), so the
    printed ratios reflect engine changes rather than machine speed.
    """
    if previous_path is None or not previous_path.is_file():
        return ["no previous baseline to compare against"]
    previous = json.loads(previous_path.read_text())
    by_name = {row["name"]: row for row in previous.get("benchmarks", [])}
    previous_calibration = previous.get("calibration_ops_per_sec")
    if previous_calibration and report.calibration_ops_per_sec:
        # ratio = (cur/cur_cal) / (base/base_cal); fold the calibration
        # legs into one machine-speed factor applied to every row.
        scale = previous_calibration / report.calibration_ops_per_sec
        label = "normalized "
    else:
        scale = 1.0
        label = "raw "
    lines = [f"vs {previous_path.name} ({label.strip()} throughput):"]
    for result in report.results:
        row = by_name.get(result.spec.name)
        if row is None or not row.get("cycles_per_sec"):
            lines.append(f"  {result.spec.name:<24} (new benchmark)")
            continue
        if row.get("engine", result.spec.engine) != result.spec.engine:
            # A name measured on a different engine tier (e.g. a
            # --engine override) is a different quantity: never ratio
            # across tiers.  Legacy artifacts without the field are
            # assumed to match the spec's engine.
            lines.append(
                f"  {result.spec.name:<24} (engine changed: "
                f"{row.get('engine')} -> {result.spec.engine}; "
                f"not comparable)"
            )
            continue
        if (
            row.get("n_requests") != result.n_requests
            or row.get("n_cores") != result.spec.n_cores
        ):
            # Same guard tools/bench_compare.py applies: throughput is
            # not comparable across different run shapes.
            lines.append(
                f"  {result.spec.name:<24} (run shape changed; "
                f"not comparable)"
            )
            continue
        ratio = result.cycles_per_sec * scale / row["cycles_per_sec"]
        lines.append(
            f"  {result.spec.name:<24} {ratio:6.2f}x {label}"
            f"({row['cycles_per_sec']:,.0f} -> "
            f"{result.cycles_per_sec:,.0f} raw cyc/s)"
        )
    return lines


# -- CLI ------------------------------------------------------------------


def engine_override_specs(engine: str) -> List[BenchSpec]:
    """The canonical set with the ``fast`` simulation rows remapped.

    ``repro bench --engine reference|batch`` re-times the plain
    simulation rows on another tier under the same names; the ``engine``
    field in each row (and the guard in :func:`compare_to_previous` /
    ``tools/bench_compare.py``) keeps the results from ever being
    ratioed against fast-engine baselines.  Non-``fast`` rows
    (microbenches, sweep/scenario/grid rows) are left untouched.
    """
    import dataclasses

    return [
        dataclasses.replace(spec, engine=engine)
        if spec.engine == "fast" else spec
        for spec in CANONICAL_BENCHMARKS
    ]


def run_bench_command(
    quick: bool = False,
    repeats: Optional[int] = None,
    n_requests: Optional[int] = None,
    out_dir: Path = DEFAULT_OUT_DIR,
    write: bool = True,
    compare_to: Optional[Path] = None,
    engine: str = "fast",
    progress=print,
) -> int:
    """Drive a full ``repro bench`` invocation; returns an exit code."""
    mode = "quick" if quick else "full"
    progress(f"perf bench ({mode} mode):")
    if compare_to is not None:
        if not compare_to.is_file():
            progress(f"error: --compare-to {compare_to} does not exist")
            return 2
        baseline = compare_to
    else:
        baseline = latest_artifact(out_dir)
    specs = (
        engine_override_specs(engine) if engine != "fast" else None
    )
    report = run_benchmarks(
        quick=quick, repeats=repeats, n_requests=n_requests, specs=specs,
        progress=progress,
    )
    speedup = report.speedup_vs_reference()
    if speedup is not None:
        progress(
            f"engine speedup vs reference (canonical single-core): "
            f"{speedup:.2f}x"
        )
    batch_speedup = report.batch_speedup()
    if batch_speedup is not None:
        progress(
            f"batch tier speedup on the defense grid: {batch_speedup:.2f}x"
        )
    cache = report.sweep_cache
    progress(
        f"sweep cache: {cache['hits']:.0f} hits / "
        f"{cache['misses']:.0f} misses "
        f"(hit rate {cache['hit_rate']:.2f})"
    )
    for line in compare_to_previous(report, baseline):
        progress(line)
    if write:
        path = write_artifact(report, out_dir)
        progress(f"artifact: {path}")
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``bench`` options on ``parser``.

    Shared by ``repro bench`` (:mod:`repro.cli`) and the standalone
    ``tools/perf_bench.py`` script so the two surfaces cannot drift.
    """
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced request counts and repeats (the CI smoke mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per benchmark (best-of)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="override requests per core",
    )
    parser.add_argument(
        "--out-dir", default=str(DEFAULT_OUT_DIR),
        help="artifact directory (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="measure and compare only; do not write an artifact",
    )
    parser.add_argument(
        "--compare-to", default=None,
        help="explicit BENCH_<n>.json to compare against "
             "(default: latest in --out-dir)",
    )
    parser.add_argument(
        "--engine", choices=("fast", "reference", "batch"), default="fast",
        help="re-time the plain simulation rows on another engine tier "
             "(rows keep their names; the recorded engine field stops "
             "cross-tier ratio comparisons)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="ROW",
        help="run one benchmark row under cProfile and print the "
             "hottest functions instead of benchmarking",
    )
    parser.add_argument(
        "--profile-top", type=int, default=25,
        help="rows of the cProfile table to print (with --profile)",
    )


def command_from_args(args: argparse.Namespace) -> int:
    """Run :func:`run_bench_command` from parsed bench arguments."""
    if args.profile is not None:
        return profile_row(
            args.profile,
            quick=args.quick,
            n_requests=args.requests,
            top=args.profile_top,
        )
    return run_bench_command(
        quick=args.quick,
        repeats=args.repeats,
        n_requests=args.requests,
        out_dir=Path(args.out_dir),
        write=not args.no_write,
        compare_to=Path(args.compare_to) if args.compare_to else None,
        engine=args.engine,
    )


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the standalone ``tools/perf_bench.py`` script."""
    parser = argparse.ArgumentParser(
        prog="perf_bench", description=__doc__,
    )
    add_bench_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by ``repro bench`` and ``tools/perf_bench.py``."""
    return command_from_args(build_parser().parse_args(argv))
