"""Closed-form analyses from the paper.

* Eq 5: ImPress-N's worst-case effective threshold TRH / (1 + alpha).
* Fig 12: ImPress-P's effective threshold vs fractional counter bits.
* Appendix B, Eq 6-9: Graphene slowdown under the parameterized
  RH+RP attack loop (8/T, independent of the Row-Press amount K).
* Appendix B, Eq 10: PARA slowdown 4*min(1, p(K+1))/(K+1).
"""

from __future__ import annotations

from ..data.rowpress import relative_threshold_at_tmro
from .charge import ALPHA_SHORT, ConservativeLinearModel


def impress_n_effective_threshold(trh: float, alpha: float) -> float:
    """Eq 5: T* = TRH / (1 + alpha).

    The Fig-10 decoy pattern keeps a row open for tRAS + tRC while being
    seen as a single ACT, so each round leaks (1 + alpha) units of charge
    against one recorded unit.
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    return trh / (1.0 + alpha)


def impress_p_relative_threshold(fraction_bits: int) -> float:
    """Fig 12: relative T* of ImPress-P with b fractional counter bits.

    EACT itself has 7 fractional bits (tRC is 128 cycles), so 7 stored
    bits track exactly: T* = TRH.  With fewer bits the counter's
    precision is 2**-b, and so is the loss of accuracy:
    T*/TRH = 1 - 2**-b (the paper's bound; the verifier's exact search
    can only do better).  With b = 0 the design degenerates to ImPress-N
    at alpha = 1, i.e. T*/TRH = 0.5.
    """
    if fraction_bits < 0:
        raise ValueError("fraction_bits must be non-negative")
    if fraction_bits >= 7:
        return 1.0
    if fraction_bits == 0:
        return 0.5
    return 1.0 - 2.0**-fraction_bits


def express_relative_threshold_clm(
    tmro_ns: float, alpha: float = ALPHA_SHORT, trc_ns: float = 48.0,
    tras_ns: float = 36.0,
) -> float:
    """T*/TRH of ExPress at tMRO, from the Conservative Linear Model.

    Each round under tMRO leaks at most TCL(tMRO) units, so the defense
    observes TRH / TCL(tMRO) activations before a flip.
    """
    model = ConservativeLinearModel(alpha=alpha, tras_trc=tras_ns / trc_ns)
    return 1.0 / model.tcl_of_open_time(tmro_ns / trc_ns)


def express_relative_threshold_measured(tmro_ns: float) -> float:
    """T*/TRH of ExPress at tMRO, from the characterization data (Fig 4)."""
    return relative_threshold_at_tmro(tmro_ns)


# ----------------------------------------------------------------------
# Appendix B: performance under the parameterized RH + RP attack loop
# ----------------------------------------------------------------------

#: Activations per mitigation: blast radius 2, two victims on each side.
MITIGATION_ACTS = 4


def appendix_para_probability(trh: float) -> float:
    """PARA probability used in the Appendix-B analysis.

    The appendix quotes p = 1/84, 1/42, 1/21 for TRH = 4000/2000/1000,
    i.e. p = 1000 / (21 * TRH).
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    return min(1.0, 1000.0 / (21.0 * trh))


def graphene_attack_slowdown(trh: float, k: int = 0) -> float:
    """Eq 6-9: fractional slowdown of Graphene under the K-pattern.

    Graphene mitigates every TRH/2 recorded activations; with ImPress-P
    each loop iteration of total time (K+1) tRC records (K+1) EACT, so
    the mitigation cost of 4 ACTs amortizes to 8/TRH regardless of K.
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    if k < 0:
        raise ValueError("k must be non-negative")
    return 2.0 * MITIGATION_ACTS / trh


def para_attack_slowdown(trh: float, k: int, p: float | None = None) -> float:
    """Eq 10: fractional slowdown of PARA+ImPress-P under the K-pattern.

    Each loop iteration lasts (K+1) tRC and is selected with probability
    min(1, p * (K+1)); a selection costs 4 ACTs (4 tRC).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if p is None:
        p = appendix_para_probability(trh)
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    eact = k + 1
    return MITIGATION_ACTS * min(1.0, p * eact) / eact


def attack_iteration_time_trc(k: int) -> float:
    """Total time of one K-pattern loop iteration, in tRC units (Fig 17)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return float(k + 1)
