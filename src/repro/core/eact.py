"""Equivalent Activation Count (EACT) arithmetic (Section VI).

ImPress-P measures the time a row is open (tON), adds the precharge time,
and divides by tRC to obtain the Equivalent Activation Count:

    EACT = (tON + tPRE) / tRC          (Figure 11)

EACT is at least 1 (tON >= tRAS and tRAS + tPRE == tRC) and generally
fractional.  Hardware stores the fraction in a fixed number of bits;
fewer bits lose precision and lower the effective threshold (Figure 12).
This module provides the fixed-point representation used by the modified
trackers and the quantization used in that sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: fraction bits in the paper's default ImPress-P implementation: tRC is
#: 128 DRAM cycles, so dividing by tRC keeps 7 fractional bits.
DEFAULT_FRACTION_BITS = 7


def eact_from_times(
    ton_cycles: int, tpre_cycles: int, trc_cycles: int
) -> float:
    """Exact EACT of an access that kept the row open ``ton_cycles``."""
    if trc_cycles <= 0:
        raise ValueError("tRC must be positive")
    if ton_cycles < 0 or tpre_cycles < 0:
        raise ValueError("times must be non-negative")
    return (ton_cycles + tpre_cycles) / trc_cycles


def quantize_eact(eact: float, fraction_bits: int) -> float:
    """Truncate EACT to ``fraction_bits`` fractional bits.

    Truncation (rather than rounding) models a counter that simply drops
    the low bits: the recorded damage never exceeds the true damage, and
    the attacker exploits the (bounded) underestimate — this is the error
    source behind Figure 12.  EACT never quantizes below 1 because every
    access costs at least one full activation.
    """
    if fraction_bits < 0:
        raise ValueError("fraction_bits must be non-negative")
    if eact < 0:
        raise ValueError("eact must be non-negative")
    scale = 1 << fraction_bits
    quantized = int(eact * scale) / scale
    return max(quantized, 1.0) if eact >= 1.0 else quantized


@dataclass
class FixedPointCounter:
    """An activation counter extended with fractional EACT bits.

    Counter-based trackers (Graphene, Mithril, MINT's CAN) are extended by
    ``fraction_bits`` so they can accumulate fractional EACT; the paper's
    default of 7 extra bits makes tracking exact (Section VI-B).  The
    counter stores a raw integer in units of 2**-fraction_bits.
    """

    fraction_bits: int = DEFAULT_FRACTION_BITS
    raw: int = field(default=0)

    def __post_init__(self) -> None:
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")

    @property
    def scale(self) -> int:
        """Fixed-point denominator: raw counts are in 1/scale ACT units."""
        return 1 << self.fraction_bits

    @property
    def value(self) -> float:
        """Current count in activation units."""
        return self.raw / self.scale

    def increment(self, eact: float = 1.0) -> float:
        """Add ``eact`` activations (truncated to available precision)."""
        if eact < 0:
            raise ValueError("eact must be non-negative")
        self.raw += int(eact * self.scale)
        return self.value

    def reset(self, value: float = 0.0) -> None:
        """Set the counter to ``value`` ACT units (e.g. the spill floor)."""
        self.raw = int(value * self.scale)

    def storage_bits(self, max_count: int) -> int:
        """Bits needed to store counts up to ``max_count`` activations."""
        integer_bits = max(1, max_count.bit_length())
        return integer_bits + self.fraction_bits
