"""Unified Charge-Loss Model (Section IV of the paper).

Both Rowhammer (RH) and Row-Press (RP) damage a victim cell by causing
charge loss, at different rates.  The model normalizes everything to the
damage of one RH activation:

* Eq 1: ``TCL_RH = K`` after K activations (1 unit per ACT).
* Eq 2: ``TCL_RP = 1 + f((tON - tRAS)/tRC)`` for a row kept open tON.
* Eq 3: the Conservative Linear Model (CLM)
  ``TCL = 1 + alpha * (tON - tRAS)/tRC`` with alpha chosen so that no
  observed data point lies above the line.

The module also evaluates the combined damage of arbitrary patterns that
interleave RH and RP rounds, which is what the security verifier uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: alpha covering the short-duration characterization (tON <= 2 tRC).
ALPHA_SHORT = 0.35
#: alpha covering the long-duration data across all 21 devices (Fig 7).
ALPHA_LONG = 0.48
#: device-independent alpha (RP can never out-damage RH per unit time).
ALPHA_SAFE = 1.0

#: Table I values in tRC-normalized units: tRAS = 36ns = 0.75 tRC,
#: tPRE = 12 ns = 0.25 tRC.
TRAS_TRC = 0.75
TPRE_TRC = 0.25


def rowhammer_tcl(activations: float) -> float:
    """Eq 1: total charge loss of a pure Rowhammer attack."""
    if activations < 0:
        raise ValueError("activations must be non-negative")
    return float(activations)


@dataclass(frozen=True)
class ConservativeLinearModel:
    """Eq 3: TCL of one access that keeps the row open for tON.

    All times are expressed in units of tRC.  ``alpha`` is the relative
    charge leakage per tRC of row-open time; alpha=1 reproduces the
    Rowhammer rate and is the device-independent choice (Observation 4).
    """

    alpha: float = ALPHA_SHORT
    tras_trc: float = TRAS_TRC
    tpre_trc: float = TPRE_TRC

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0 < self.tras_trc <= 1:
            raise ValueError("tRAS must be positive and at most tRC")

    def tcl_of_open_time(self, ton_trc: float) -> float:
        """TCL of a single round holding the row open for ``ton_trc``.

        A round with ``ton_trc == tRAS`` degenerates to one Rowhammer
        activation (TCL = 1).
        """
        if ton_trc < self.tras_trc - 1e-12:
            raise ValueError("tON cannot be below tRAS")
        return 1.0 + self.alpha * (ton_trc - self.tras_trc)

    def tcl_of_attack_time(self, total_trc: float) -> float:
        """TCL of a round whose *total* duration (tON + tPRE) is given.

        This is the x-axis of Figure 8: the minimum total time is one tRC
        (tRAS + tPRE), which yields TCL = 1.
        """
        return self.tcl_of_open_time(total_trc - self.tpre_trc)

    def rounds_to_flip(self, trh: float, ton_trc: float) -> float:
        """Rounds of an RP(tON) pattern needed to reach critical charge."""
        return trh / self.tcl_of_open_time(ton_trc)

    def effective_threshold(self, trh: float, ton_trc: float) -> float:
        """Activations seen by an unaware RH defense before a bit flips.

        Each RP round registers as a single activation, so the defense
        observes only ``rounds_to_flip`` activations — the reduced T*.
        """
        return self.rounds_to_flip(trh, ton_trc)


def unified_tcl(
    rounds: Iterable[float],
    alpha: float = ALPHA_SHORT,
    tras_trc: float = TRAS_TRC,
) -> float:
    """Combined charge loss of an arbitrary RH/RP pattern.

    ``rounds`` is the sequence of row-open times (in tRC units) of the
    aggressor across the attack; an entry equal to tRAS is a plain
    Rowhammer activation.  This realizes Key Observation 2: the model
    estimates the combined effect of any interleaving.
    """
    model = ConservativeLinearModel(alpha=alpha, tras_trc=tras_trc)
    return sum(model.tcl_of_open_time(t) for t in rounds)


def fastest_attack_is_rowhammer(
    alpha: float, duration_trc: float, tras_trc: float = TRAS_TRC
) -> bool:
    """Key Observation 2: with alpha <= 1, pure RH maximizes damage rate.

    Compares the damage of spending ``duration_trc`` on back-to-back
    activations against one long RP round of the same duration.
    """
    rh_damage = math.floor(duration_trc)  # one ACT per tRC
    model = ConservativeLinearModel(alpha=alpha, tras_trc=tras_trc)
    rp_damage = model.tcl_of_open_time(duration_trc - TPRE_TRC)
    return rh_damage >= rp_damage


# ----------------------------------------------------------------------
# Fitting the model to characterization data
# ----------------------------------------------------------------------

Point = Tuple[float, float]  # (total attack time in tRC, observed TCL)


def fit_clm(
    points: Sequence[Point],
    tras_trc: float = TRAS_TRC,
    tpre_trc: float = TPRE_TRC,
) -> ConservativeLinearModel:
    """Fit the Conservative Linear Model to observed (time, TCL) points.

    Section IV-C: rather than a best fit with error in both directions,
    CLM picks the smallest alpha such that *no* observed data point lies
    above the line — underestimating TCL would be a security failure.
    """
    if not points:
        raise ValueError("need at least one data point")
    alpha = 0.0
    for total_trc, tcl in points:
        extra = total_trc - tpre_trc - tras_trc
        if extra <= 1e-12:
            if tcl > 1.0 + 1e-9:
                raise ValueError(
                    "data point at minimal time exceeds one unit of damage"
                )
            continue
        alpha = max(alpha, (tcl - 1.0) / extra)
    return ConservativeLinearModel(
        alpha=alpha, tras_trc=tras_trc, tpre_trc=tpre_trc
    )


@dataclass(frozen=True)
class PowerLawFit:
    """Best-effort curve fit ``TCL = 1 + a * extra**b`` (Fig 8's dotted line).

    Unlike CLM this is a least-squares fit, so observed points may lie on
    either side — which is exactly why the paper rejects it for hardware.
    """

    a: float
    b: float
    tras_trc: float = TRAS_TRC
    tpre_trc: float = TPRE_TRC

    def tcl_of_attack_time(self, total_trc: float) -> float:
        """TCL of a round whose total duration (tON + tPRE) is given."""
        extra = total_trc - self.tpre_trc - self.tras_trc
        if extra <= 0:
            return 1.0
        return 1.0 + self.a * extra**self.b


def fit_power_law(
    points: Sequence[Point],
    tras_trc: float = TRAS_TRC,
    tpre_trc: float = TPRE_TRC,
) -> PowerLawFit:
    """Least-squares fit of ``TCL - 1`` against extra open time (log-log)."""
    xs: List[float] = []
    ys: List[float] = []
    for total_trc, tcl in points:
        extra = total_trc - tpre_trc - tras_trc
        if extra > 1e-9 and tcl > 1.0 + 1e-9:
            xs.append(math.log(extra))
            ys.append(math.log(tcl - 1.0))
    if len(xs) < 2:
        raise ValueError("need at least two usable points for a fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    b = sxy / sxx if sxx > 0 else 0.0
    a = math.exp(mean_y - b * mean_x)
    return PowerLawFit(a=a, b=b, tras_trc=tras_trc, tpre_trc=tpre_trc)
