"""Row-Press mitigation schemes: No-RP, ExPress, ImPress-N, ImPress-P.

A mitigation scheme sits between the DRAM banks and the Rowhammer
trackers.  It decides *what* each piece of bank activity is worth to the
tracker:

* **No-RP** — the Row-Press-oblivious baseline: one record per ACT.
* **ExPress** (Luo et al.) — also one record per ACT, but the memory
  controller additionally limits row-open time to tMRO and the tracker
  must be provisioned for the reduced threshold T* (Fig 1c).
* **ImPress-N** — divides time into tRC windows; a row open for a full
  window is recorded as one extra activation (Fig 9).  Sub-window
  Row-Press stays unmitigated, costing up to (1 + alpha) in threshold
  (Eq 5).
* **ImPress-P** — measures tON precisely, converts (tON + tPRE)/tRC into
  a fractional EACT and records that weight (Fig 11).  No threshold loss
  with full-precision counters.

The scheme returns aggressor rows that memory-controller-based trackers
want mitigated; the controller turns those into victim refreshes.
In-DRAM trackers mitigate under RFM instead and always return nothing
from the record path.

**Two dispatch surfaces.**  The ``on_activate`` / ``on_row_closed`` /
``on_rfm`` methods are the readable API used by the security verifier
and unit tests.  The simulator's controller instead consumes the
*per-bank kernel lists* built once at construction —
:meth:`MitigationScheme.act_kernels`, :meth:`~MitigationScheme.close_kernels`
and :meth:`~MitigationScheme.rfm_kernels` — which bind each bank's
tracker kernel (see :mod:`repro.trackers.base`) directly, so the per-row
close path costs one call into flat integer state instead of
``scheme.on_row_closed -> tracker_for -> record -> quantize`` dynamic
dispatch.  Both surfaces share tracker state and are pinned equal by
the golden-sequence and golden-SimResult tests.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence

from ..dram.timing import CycleTimings
from ..trackers.base import Tracker
from .eact import quantize_eact

#: Activate kernel: ``(row) -> mitigation count`` (None = no ACT work).
ActKernel = Optional[Callable[[int], int]]
#: Close kernel: ``(row, act_cycle, close_cycle) -> mitigation count``
#: (None = nothing to record at row close).
CloseKernel = Optional[Callable[[int, int, int], int]]


class MitigationScheme(abc.ABC):
    """Feeds bank activity into per-bank trackers under one RP policy."""

    name: str = "base"

    def __init__(
        self, trackers: Sequence[Tracker], timings: CycleTimings
    ) -> None:
        if not trackers:
            raise ValueError("need at least one per-bank tracker")
        self.trackers = list(trackers)
        self.timings = timings
        self._act_kernels: List[ActKernel] = self._build_act_kernels()
        self._close_kernels: List[CloseKernel] = self._build_close_kernels()
        self._rfm_kernels = [tracker.on_rfm for tracker in self.trackers]

    # -- kernel surface (bound per bank, consumed by the controller) ----

    def _build_act_kernels(self) -> List[ActKernel]:
        """Default: every ACT records one unit into the bank's tracker."""
        return [tracker.record_unit for tracker in self.trackers]

    def _build_close_kernels(self) -> List[CloseKernel]:
        """Default: nothing is recorded when a row closes."""
        return [None] * len(self.trackers)

    def act_kernels(self) -> List[ActKernel]:
        """Per-bank ``(row) -> count`` activation kernels (None = no-op)."""
        return self._act_kernels

    def close_kernels(self) -> List[CloseKernel]:
        """Per-bank ``(row, act, close) -> count`` kernels (None = no-op)."""
        return self._close_kernels

    def rfm_kernels(self) -> List[Callable[[int], Optional[int]]]:
        """Per-bank bound ``on_rfm`` methods (skips the tracker lookup)."""
        return self._rfm_kernels

    # -- readable API (verifier, tests) ---------------------------------

    def tracker_for(self, bank: int) -> Tracker:
        """The per-bank tracker instance receiving this bank's records."""
        return self.trackers[bank]

    def tmro_cycles(self) -> Optional[int]:
        """Row-open-time limit the controller must enforce (ExPress only)."""
        return None

    def on_activate(self, bank: int, row: int, cycle: int) -> List[int]:
        """A row was activated; returns aggressors to mitigate now."""
        return self.tracker_for(bank).record(row, 1.0, cycle)

    def on_row_closed(
        self, bank: int, row: int, act_cycle: int, close_cycle: int
    ) -> List[int]:
        """A row finished its access (close_cycle is when PRE was issued)."""
        return []

    def on_rfm(self, bank: int, cycle: int) -> Optional[int]:
        """RFM arrived at the bank; in-DRAM trackers mitigate here."""
        return self.tracker_for(bank).on_rfm(cycle)

    def storage_bytes_per_bank(self) -> int:
        """Extra per-bank state the scheme itself needs (not the tracker)."""
        return 0


class NoRpScheme(MitigationScheme):
    """Row-Press-oblivious baseline: plain Rowhammer tracking."""

    name = "no-rp"


class ExpressScheme(MitigationScheme):
    """Explicit Row-Press mitigation (Luo et al.).

    The controller closes any row open for ``tmro`` cycles; the trackers
    passed in must already be provisioned for the reduced threshold
    T* = TRH / TCL(tMRO) — use :mod:`repro.trackers.sizing` and
    :mod:`repro.data.rowpress` to compute it.
    """

    name = "express"

    def __init__(
        self,
        trackers: Sequence[Tracker],
        timings: CycleTimings,
        tmro_cycles: int,
    ) -> None:
        super().__init__(trackers, timings)
        if tmro_cycles < timings.tRAS:
            raise ValueError("tMRO cannot be below tRAS")
        self._tmro = tmro_cycles

    def tmro_cycles(self) -> Optional[int]:
        """The tMRO row-open limit the controller enforces for ExPress."""
        return self._tmro


class ImpressNScheme(MitigationScheme):
    """ImPress-N: integer window accounting (Section V).

    Time is divided into global windows of tRC.  A row open across an
    entire window is treated as having caused one activation in that
    window.  The hardware mechanism (Fig 9) samples the Open-Row Address
    register at each window boundary and credits a row seen at two
    consecutive boundaries; a row only registers as open once its
    activation completes (tACT after the ACT command), which is exactly
    the hole the Fig-10 decoy pattern exploits: an ACT landing within
    the last tACT of a window is invisible at that boundary, so a row
    open for tRAS + tRC can evade all credits (Eq 5).

    Hardware-precision caveat: combining the tACT slack on the open
    side with a close just before a boundary lets an adversary stretch
    the credit-free open time slightly past tRAS + tRC (by up to
    tACT + tPRE).  Eq 5's "at most one tRC unmitigated" bound holds at
    the paper's one-window granularity; the exact per-round bound this
    implementation guarantees is 1 + alpha * (tRC + tACT + tPRE)/tRC.
    """

    name = "impress-n"

    def _build_close_kernels(self) -> List[CloseKernel]:
        """One window-credit kernel per bank, tRC/tACT folded in."""
        trc = self.timings.tRC
        tact = self.timings.tACT
        kernels: List[CloseKernel] = []
        for tracker in self.trackers:
            record_unit = tracker.record_unit

            def kernel(
                row: int,
                act_cycle: int,
                close_cycle: int,
                record_unit=record_unit,
                trc=trc,
                tact=tact,
            ) -> int:
                # One credit per full tRC window the row stayed open; a
                # row is only visible once its activation completes.
                first_boundary = -(-(act_cycle + tact) // trc)  # ceil div
                credits = close_cycle // trc - first_boundary
                fired = 0
                while credits > 0:
                    fired += record_unit(row)
                    credits -= 1
                return fired

            kernels.append(kernel)
        return kernels

    def on_row_closed(
        self, bank: int, row: int, act_cycle: int, close_cycle: int
    ) -> List[int]:
        """Credit one ACT per full tRC window the row stayed open (Fig 9)."""
        trc = self.timings.tRC
        visible_from = act_cycle + self.timings.tACT
        first_boundary = -(-visible_from // trc)  # ceil division
        credits = close_cycle // trc - first_boundary
        mitigations: List[int] = []
        tracker = self.tracker_for(bank)
        for _ in range(max(0, credits)):
            mitigations.extend(tracker.record(row, 1.0, close_cycle))
        return mitigations

    def storage_bytes_per_bank(self) -> int:
        """1-byte window timer + 3-byte Open-Row Address register."""
        return 4


class ImpressPScheme(MitigationScheme):
    """ImPress-P: precise EACT accounting (Section VI).

    A per-bank timer measures tON; on close the access's total time
    (tON + tPRE) is divided by tRC to get the Equivalent Activation
    Count, truncated to ``fraction_bits`` fractional bits, and recorded
    as the access's weight.  The plain ACT record is *not* also sent —
    EACT already includes the first activation's unit of damage
    (EACT >= 1 by construction).
    """

    name = "impress-p"

    def __init__(
        self,
        trackers: Sequence[Tracker],
        timings: CycleTimings,
        fraction_bits: int = 7,
    ) -> None:
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        # Set before super().__init__: kernel construction needs it.
        self.fraction_bits = fraction_bits
        super().__init__(trackers, timings)

    def _build_act_kernels(self) -> List[ActKernel]:
        """No-op: damage is recorded at close time, once tON is known."""
        return [None] * len(self.trackers)

    def _build_close_kernels(self) -> List[CloseKernel]:
        """One EACT kernel per bank.

        When the bank's tracker accepts raw fixed-point weights at the
        scheme's scale, the kernel quantizes straight to an integer:
        ``raw = int(eact * scale)``.  That equals
        ``int(quantize_eact(eact) * scale)`` exactly: ``scale`` is a
        power of two, so the multiply is a pure exponent shift, and for
        ``eact >= 1`` the truncation already yields ``raw >= scale`` —
        ``quantize_eact``'s ``max(..., 1.0)`` leg can never change it.
        Trackers without a raw kernel (e.g. the accounting tracker)
        fall back to :func:`quantize_eact` + ``record``.
        """
        scale = 1 << self.fraction_bits
        trc = self.timings.tRC
        tpre = self.timings.tPRE
        fraction_bits = self.fraction_bits
        kernels: List[CloseKernel] = []
        for tracker in self.trackers:
            raw_record = tracker.raw_kernel(scale)
            if raw_record is not None:

                def kernel(
                    row: int,
                    act_cycle: int,
                    close_cycle: int,
                    raw_record=raw_record,
                    scale=scale,
                    trc=trc,
                    tpre=tpre,
                ) -> int:
                    eact = (close_cycle - act_cycle + tpre) / trc
                    return raw_record(row, int(eact * scale))

            else:
                record = tracker.record

                def kernel(
                    row: int,
                    act_cycle: int,
                    close_cycle: int,
                    record=record,
                    fraction_bits=fraction_bits,
                    trc=trc,
                    tpre=tpre,
                ) -> int:
                    eact = quantize_eact(
                        (close_cycle - act_cycle + tpre) / trc, fraction_bits
                    )
                    return len(record(row, eact, close_cycle))

            kernels.append(kernel)
        return kernels

    def on_activate(self, bank: int, row: int, cycle: int) -> List[int]:
        """No-op: damage is recorded at close time, once tON is known."""
        return []

    def on_row_closed(
        self, bank: int, row: int, act_cycle: int, close_cycle: int
    ) -> List[int]:
        """Record the access's quantized EACT = (tON + tPRE)/tRC (Fig 11)."""
        total_cycles = close_cycle - act_cycle + self.timings.tPRE
        eact = quantize_eact(total_cycles / self.timings.tRC, self.fraction_bits)
        return self.tracker_for(bank).record(row, eact, close_cycle)

    def storage_bytes_per_bank(self) -> int:
        """A single 10-bit tON timer, rounded up to bytes."""
        return 2


SCHEME_NAMES = ("no-rp", "express", "impress-n", "impress-p")
