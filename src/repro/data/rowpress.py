"""Row-Press characterization datasets.

The ImPress paper derives its charge-loss model from the DDR4
characterization of Luo et al. (RowPress, ISCA 2023): Table 8 (short
duration, reproduced in Fig 4 and Fig 8) and Appendix B (long duration,
1 tREFI and 9 tREFI, 21 devices across three vendors, Fig 7).

Those raw datasets are not redistributable, so this module re-derives
them from the envelopes the ImPress paper itself publishes:

* T* drops to 0.62 at tMRO = 186 ns (Fig 4 anchor);
* the short-duration CLM cover is alpha = 0.35 (Fig 8);
* 1 tREFI of Row-Press is worth ~18x activations on average, 9 tREFI
  ~156x (Section II-D);
* the long-duration CLM cover across all 21 devices is alpha = 0.48,
  with the worst device just below that line (Fig 7).

Every point below satisfies those constraints; see DESIGN.md
(substitution #2).  Times are normalized to tRC (48 ns); the DDR4
conversions 1 tREFI = 162 tRC and 9 tREFI = 1462 tRC follow the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: DDR4 long-duration attack times in tRC units (paper, Section IV-D).
ONE_TREFI_TRC = 162.0
NINE_TREFI_TRC = 1462.0

#: Short-duration characterization: (total attack time in tRC, TCL).
#: The total time is tON + tPRE; the minimum (1 tRC) is a plain
#: Rowhammer activation with TCL = 1.  The secant slopes decrease with
#: time (charge loss is sub-linear), and the steepest slope — 0.35 at the
#: first point — is what the conservative fit must cover (Fig 8).
SHORT_DURATION_POINTS: Tuple[Tuple[float, float], ...] = (
    (1.0, 1.0),
    (1.5, 1.175),
    (2.0, 1.30),
    (3.0, 1.47),
    (4.125, 1.613),   # tMRO = 186 ns -> TCL = 1/0.62 (Fig 4 anchor)
    (5.0, 1.72),
    (7.0, 1.95),
    (8.0, 2.05),
)

#: Fig 4: relative tolerated threshold T* when the maximum row-open time
#: is limited to tMRO.  T* = 1 / TCL(round with tON = tMRO).
FIG4_TMRO_THRESHOLD: Tuple[Tuple[float, float], ...] = (
    (36.0, 1.000),
    (66.0, 0.826),
    (96.0, 0.745),
    (126.0, 0.690),
    (156.0, 0.650),
    (186.0, 0.620),
    (216.0, 0.595),
    (246.0, 0.570),
    (276.0, 0.555),
    (306.0, 0.540),
    (336.0, 0.523),
    (396.0, 0.497),
    (456.0, 0.474),
    (516.0, 0.455),
    (576.0, 0.441),
    (636.0, 0.430),
)


def relative_threshold_at_tmro(tmro_ns: float) -> float:
    """Interpolated Fig 4 value: relative T* for a given tMRO (ns)."""
    table = FIG4_TMRO_THRESHOLD
    if tmro_ns <= table[0][0]:
        return table[0][1]
    if tmro_ns >= table[-1][0]:
        return table[-1][1]
    for (x0, y0), (x1, y1) in zip(table, table[1:]):
        if x0 <= tmro_ns <= x1:
            frac = (tmro_ns - x0) / (x1 - x0)
            return y0 + frac * (y1 - y0)
    raise AssertionError("unreachable: table is sorted")


@dataclass(frozen=True)
class DeviceCharacterization:
    """Long-duration Row-Press leakage of one DDR4 device.

    ``leak_rate`` is the observed charge loss per tRC of open time at the
    1-tREFI point; the 9-tREFI point leaks slightly slower per unit time
    (sub-linearity), modeled by ``long_rate_factor``.
    """

    vendor: str
    device_id: int
    leak_rate: float
    long_rate_factor: float = 0.95

    def tcl_at(self, time_trc: float) -> float:
        """Total charge loss of one RP round lasting ``time_trc``."""
        rate = self.leak_rate
        if time_trc > ONE_TREFI_TRC:
            rate *= self.long_rate_factor
        return 1.0 + rate * (time_trc - 1.0)


#: Per-vendor leak rates (charge units per tRC).  The worst device
#: (Samsung #0 at 0.47) sits just below the alpha = 0.48 cover; the
#: population mean (~0.12) reproduces the paper's "18x at 1 tREFI /
#: ~156x at 9 tREFI" averages.
_VENDOR_LEAK_RATES: Dict[str, Tuple[float, ...]] = {
    "Samsung": (0.47, 0.22, 0.12, 0.09, 0.07, 0.06, 0.05, 0.045),
    "Hynix": (0.30, 0.15, 0.10, 0.07, 0.05, 0.04),
    "Micron": (0.38, 0.18, 0.11, 0.08, 0.06, 0.05, 0.04),
}


def long_duration_devices() -> List[DeviceCharacterization]:
    """The 21 characterized devices (8 Samsung, 6 Hynix, 7 Micron)."""
    devices: List[DeviceCharacterization] = []
    for vendor, rates in _VENDOR_LEAK_RATES.items():
        for device_id, rate in enumerate(rates):
            devices.append(
                DeviceCharacterization(
                    vendor=vendor, device_id=device_id, leak_rate=rate
                )
            )
    return devices


def long_duration_points(
    times_trc: Sequence[float] = (ONE_TREFI_TRC, NINE_TREFI_TRC),
) -> List[Tuple[float, float]]:
    """Flattened (time, TCL) points across all devices (Fig 7 scatter)."""
    return [
        (time, device.tcl_at(time))
        for device in long_duration_devices()
        for time in times_trc
    ]


def mean_tcl_at(time_trc: float) -> float:
    """Population-average TCL of one RP round lasting ``time_trc``."""
    devices = long_duration_devices()
    return sum(device.tcl_at(time_trc) for device in devices) / len(devices)
