"""Characterization datasets re-derived from published envelopes."""

from .rowpress import (
    FIG4_TMRO_THRESHOLD,
    NINE_TREFI_TRC,
    ONE_TREFI_TRC,
    SHORT_DURATION_POINTS,
    DeviceCharacterization,
    long_duration_devices,
    long_duration_points,
    mean_tcl_at,
    relative_threshold_at_tmro,
)

__all__ = [
    "FIG4_TMRO_THRESHOLD",
    "NINE_TREFI_TRC",
    "ONE_TREFI_TRC",
    "SHORT_DURATION_POINTS",
    "DeviceCharacterization",
    "long_duration_devices",
    "long_duration_points",
    "mean_tcl_at",
    "relative_threshold_at_tmro",
]
