"""The content-addressed result-artifact store.

* :mod:`~repro.results.store` — canonical-JSON hashing
  (:func:`~repro.results.store.content_key`), deduplicated blobs under
  ``objects/``, and the name → key ``index.json`` alias layer shared
  by scenario artifacts and the experiment orchestrator's cache.
* :mod:`~repro.results.report` — ``repro scenario report``: diff
  scenario metrics across two stores/commits the way
  ``tools/bench_compare.py --trajectory`` does for perf.
"""

from .report import compare_stores, render_report, resolve_store, run_report
from .store import (
    ResultStore,
    STORE_VERSION,
    canonical_json,
    content_key,
    git_sha,
    store_for,
)

__all__ = [
    "ResultStore",
    "STORE_VERSION",
    "canonical_json",
    "compare_stores",
    "content_key",
    "git_sha",
    "render_report",
    "resolve_store",
    "run_report",
    "store_for",
]
