"""Content-addressed result-artifact store.

Every run artifact in this repo — scenario runs, their victim-only
baseline legs, orchestrated experiment results — is a deterministic
function of an explicit *recipe*: the plain-data dict of everything
that can change the numbers (spec fields, topology, defense,
``n_requests``, ``seed``, ...).  The store keys blobs by a stable
canonical-JSON hash of that recipe:

* ``<root>/objects/<key>.json`` — one blob per distinct recipe,
  holding the recipe and the result payload.  Writing the same recipe
  twice stores one blob (dedup): N scenarios sharing one victim-only
  baseline leg share one baseline blob.
* ``<root>/index.json`` — the human layer: append-only entries mapping
  names to content keys, with a timestamp and the git SHA of the code
  that produced them.  Names are *aliases*, never identity — two runs
  of the same preset with different seeds are two blobs and two index
  entries, so neither overwrites the other.

The hashing contract (:func:`canonical_json` / :func:`content_key`)
is deliberately boring: sorted keys, no whitespace, finite floats
only.  It must never be derived from ``repr`` of a Python object —
cosmetic dataclass changes would silently invalidate every cache.
``tests/test_scenarios.py`` pins a golden hash so a contract change
cannot land unnoticed.

Corruption is handled by construction: a blob that fails to parse (or
whose embedded key disagrees with its filename) reads as a miss and is
rewritten on the next ``put``; a corrupt index reads as empty and is
rebuilt by the next alias write (blobs stay retrievable by key).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import subprocess
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Blob/index schema version; a bump makes every existing entry a miss
#: so stale layouts are never misread.
STORE_VERSION = 1


def _check_finite(value: Any, path: str = "$") -> None:
    """Reject non-finite floats anywhere in a payload, naming the path.

    ``Infinity``/``NaN`` are not valid JSON; a payload carrying one
    (e.g. a stalled victim's infinite slowdown) must be converted by
    the caller *before* the store sees it — see
    :meth:`repro.scenarios.run.ScenarioReport.to_json`.
    """
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"non-finite float at {path}: {value!r} is not storable JSON; "
            "serialize it as null (with an explanatory flag) instead"
        )
    if isinstance(value, Mapping):
        for key, child in value.items():
            _check_finite(child, f"{path}.{key}")
    elif isinstance(value, (list, tuple)):
        for i, child in enumerate(value):
            _check_finite(child, f"{path}[{i}]")


def canonical_json(value: Any) -> str:
    """The stable canonical serialization hashes and blobs are built on.

    Sorted keys, no whitespace, finite floats only — equal recipes
    always produce byte-identical text, independent of dict insertion
    order or dataclass ``repr`` cosmetics.
    """
    _check_finite(value)
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(recipe: Mapping[str, Any]) -> str:
    """The content address of a recipe: sha256 of its canonical JSON."""
    return hashlib.sha256(canonical_json(recipe).encode()).hexdigest()[:16]


_GIT_SHA: Optional[str] = None


def git_sha() -> str:
    """Short SHA of the source tree producing artifacts ("unknown" if
    git is unavailable); cached per process."""
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=Path(__file__).resolve().parent,
            )
            sha = proc.stdout.strip()
            _GIT_SHA = sha if proc.returncode == 0 and sha else "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


_TMP_COUNTER = itertools.count()


def _atomic_write(path: Path, text: str) -> None:
    """Write via a sibling temp file + rename, so a crash mid-write
    never leaves torn JSON behind (an interrupted index update would
    otherwise read back as an empty index).  The temp name is unique
    per process and call, so concurrent writers cannot race each
    other's rename."""
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    )
    tmp.write_text(text)
    os.replace(tmp, path)


class ResultStore:
    """One content-addressed store rooted at a directory.

    See the module docstring for the layout.  All read paths are
    tolerant: missing, corrupt, or version-skewed files read as misses,
    never as exceptions — the caller's contract is "recompute on miss".
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    @property
    def objects_dir(self) -> Path:
        """Where blobs live (``<root>/objects``)."""
        return self.root / "objects"

    @property
    def index_path(self) -> Path:
        """The name → key alias file (``<root>/index.json``)."""
        return self.root / "index.json"

    def blob_path(self, key: str) -> Path:
        """The on-disk path of the blob addressed by ``key``."""
        return self.objects_dir / f"{key}.json"

    # -- blobs -----------------------------------------------------------

    def put(
        self,
        recipe: Mapping[str, Any],
        payload: Mapping[str, Any],
        name: Optional[str] = None,
        kind: str = "result",
        meta: Optional[Mapping[str, Any]] = None,
        overwrite: bool = False,
    ) -> Tuple[str, Path, bool]:
        """Store ``payload`` under ``recipe``'s content key.

        Returns ``(key, blob_path, created)``.  An existing readable
        blob for the same key is left untouched (``created=False``) —
        that is the dedup guarantee — unless ``overwrite`` forces a
        rewrite (``--force`` re-runs).  A corrupt blob is always
        rewritten.  ``name`` additionally records an index alias with
        ``kind`` and optional ``meta`` fields.
        """
        key = content_key(recipe)
        blob = {
            "version": STORE_VERSION,
            "key": key,
            "kind": kind,
            "recipe": recipe,
            "payload": payload,
        }
        _check_finite(blob)
        path = self.blob_path(key)
        created = overwrite or self._load_blob(key) is None
        if created:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write(path, json.dumps(blob, indent=2, sort_keys=True,
                                           allow_nan=False) + "\n")
        if name is not None:
            self.alias(name, key, kind, meta)
        return key, path, created

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key`` (None on miss/corruption)."""
        blob = self._load_blob(key)
        return None if blob is None else blob.get("payload")

    def fetch(self, recipe: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The payload stored for ``recipe`` (None on miss/corruption)."""
        return self.get(content_key(recipe))

    def recipe(self, key: str) -> Optional[Dict[str, Any]]:
        """The recipe stored under ``key`` (None on miss/corruption).

        Blobs are self-describing: the recipe rides inside, so a
        consumer holding only a content key (a fuzz reproducer, a
        baseline reference) can rebuild the exact run that produced
        the payload.
        """
        blob = self._load_blob(key)
        return None if blob is None else blob.get("recipe")

    def _load_blob(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.blob_path(key)
        if not path.is_file():
            return None
        try:
            blob = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(blob, dict)
            or blob.get("version") != STORE_VERSION
            or blob.get("key") != key
        ):
            return None
        return blob

    # -- index -----------------------------------------------------------

    def entries(
        self, name: Optional[str] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Index entries, oldest first, optionally filtered."""
        entries = self._load_index()["entries"]
        if name is not None:
            entries = [e for e in entries if e.get("name") == name]
        if kind is not None:
            entries = [e for e in entries if e.get("kind") == kind]
        return entries

    def latest(self, name: str) -> Optional[Dict[str, Any]]:
        """The most recently recorded entry for ``name`` (None if none)."""
        entries = self.entries(name=name)
        return entries[-1] if entries else None

    def names(self, kind: Optional[str] = None) -> List[str]:
        """Distinct aliased names (of one ``kind``), first-seen order."""
        return list(dict.fromkeys(
            e["name"] for e in self.entries(kind=kind) if "name" in e
        ))

    def _load_index(self) -> Dict[str, Any]:
        try:
            data = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {"version": STORE_VERSION, "entries": []}
        if (
            not isinstance(data, dict)
            or data.get("version") != STORE_VERSION
            or not isinstance(data.get("entries"), list)
        ):
            return {"version": STORE_VERSION, "entries": []}
        return data

    def alias(
        self,
        name: str,
        key: str,
        kind: str,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a name → key entry (re-recording refreshes in place).

        Cache-hit paths call this too, so a lost or corrupt index is
        rebuilt incrementally by ordinary re-runs — blobs are the
        durable layer, the index is always reconstructible.
        """
        entry: Dict[str, Any] = {
            "name": name,
            "key": key,
            "kind": kind,
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "git_sha": git_sha(),
        }
        if meta:
            entry["meta"] = dict(meta)
        with self._index_lock():
            index = self._load_index()
            index["entries"] = [
                e for e in index["entries"]
                if not (e.get("name") == name and e.get("key") == key)
            ]
            index["entries"].append(entry)
            _atomic_write(
                self.index_path, json.dumps(index, indent=2) + "\n"
            )

    @contextmanager
    def _index_lock(self) -> Iterator[None]:
        """Serialize index read-modify-writes across processes.

        Concurrent writers into one results dir (``repro run`` next to
        ``repro scenario run``) would otherwise lose each other's
        alias entries.  POSIX advisory lock on a sidecar file; a no-op
        where ``fcntl`` is unavailable (blobs are unaffected either
        way, and a lost alias self-heals on the next re-run).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self.root / "index.lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)


def store_for(results_dir: Path) -> ResultStore:
    """The shared store under a results directory (``<dir>/store``).

    Scenario artifacts and the experiment orchestrator's cache live in
    this one store; their recipes carry distinct ``kind`` tags, so keys
    cannot collide across subsystems.
    """
    return ResultStore(Path(results_dir) / "store")
