"""Content-addressed result-artifact store.

Every run artifact in this repo — scenario runs, their victim-only
baseline legs, orchestrated experiment results — is a deterministic
function of an explicit *recipe*: the plain-data dict of everything
that can change the numbers (spec fields, topology, defense,
``n_requests``, ``seed``, ...).  The store keys blobs by a stable
canonical-JSON hash of that recipe:

* ``<root>/objects/<key>.json`` — one blob per distinct recipe,
  holding the recipe and the result payload.  Writing the same recipe
  twice stores one blob (dedup): N scenarios sharing one victim-only
  baseline leg share one baseline blob.
* ``<root>/index.json`` — the human layer: append-only entries mapping
  names to content keys, with a timestamp and the git SHA of the code
  that produced them.  Names are *aliases*, never identity — two runs
  of the same preset with different seeds are two blobs and two index
  entries, so neither overwrites the other.

The hashing contract (:func:`canonical_json` / :func:`content_key`)
is deliberately boring: sorted keys, no whitespace, finite floats
only.  It must never be derived from ``repr`` of a Python object —
cosmetic dataclass changes would silently invalidate every cache.
``tests/test_scenarios.py`` pins a golden hash so a contract change
cannot land unnoticed.

Corruption is handled by construction: a blob that fails to parse (or
whose embedded key disagrees with its filename) reads as a miss and is
rewritten on the next ``put``; a corrupt index reads as empty and is
rebuilt by the next alias write (blobs stay retrievable by key).

Crash debris is handled by :meth:`ResultStore.sweep_stale_tmp` (a
writer killed between the temp write and the rename leaves a ``*.tmp``
file behind forever — swept on the first write through a store instance
and by ``gc``) and :meth:`ResultStore.gc` (blobs no index entry or
indexed payload references — e.g. superseded checkpoint blobs from
retried distributed tasks — are deleted under the index lock, sparing
blobs younger than a grace age whose alias may still be in flight;
``dry_run`` only reports the reclaimable bytes).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import random
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Blob/index schema version; a bump makes every existing entry a miss
#: so stale layouts are never misread.
STORE_VERSION = 1

#: How long an orphaned ``*.tmp`` file whose writer pid cannot be
#: liveness-checked (another host, unparseable name) survives before
#: the stale sweep removes it.
STALE_TMP_GRACE_S = 3600.0

#: Default deadline for acquiring the index lock; a stalled (not dead)
#: holder must surface as an error, not an indefinite hang.
DEFAULT_LOCK_TIMEOUT_S = 10.0

#: How young an unreferenced blob must be for ``gc`` to leave it
#: alone: ``put`` writes the blob *before* recording its alias, so a
#: just-written blob is legitimately unreferenced for a moment — a
#: concurrent gc must not discard fresh work in that window.
DEFAULT_GC_BLOB_GRACE_S = 60.0


class StoreLockTimeout(TimeoutError):
    """The index lock could not be acquired before the deadline.

    Carries the lock path so the operator can find the stalled holder
    (``fuser <path>`` / the pid in any in-flight ``*.tmp`` names).
    """

    def __init__(self, lock_path: Path, timeout_s: float) -> None:
        self.lock_path = Path(lock_path)
        self.timeout_s = timeout_s
        super().__init__(
            f"could not acquire index lock {lock_path} within "
            f"{timeout_s:.1f}s; another process holds it (stalled "
            "writer?)"
        )


#: Bounds for :func:`with_lock_retry`'s jittered exponential backoff.
DEFAULT_LOCK_RETRY_ATTEMPTS = 5
DEFAULT_LOCK_RETRY_BASE_S = 0.05
DEFAULT_LOCK_RETRY_MAX_S = 1.0


def with_lock_retry(
    fn,
    attempts: int = DEFAULT_LOCK_RETRY_ATTEMPTS,
    base_s: float = DEFAULT_LOCK_RETRY_BASE_S,
    max_s: float = DEFAULT_LOCK_RETRY_MAX_S,
    rng: Optional[random.Random] = None,
    sleep=time.sleep,
):
    """Call ``fn``, retrying :class:`StoreLockTimeout` with backoff.

    One contended ``flock`` on the index must not poison a task: a
    worker's result-put or a coordinator's alias write that loses the
    lock race retries up to ``attempts`` times with jittered
    exponential delays (``base_s * 2**n``, capped at ``max_s``, scaled
    by a uniform 0.5–1.5 jitter so colliding writers decorrelate).
    The jitter never touches payload bytes — only *when* a write
    happens, never *what* is written — so determinism claims are
    unaffected.  The final attempt re-raises.
    """
    if rng is None:
        rng = random.Random()
    for attempt in range(attempts):
        try:
            return fn()
        except StoreLockTimeout:
            if attempt >= attempts - 1:
                raise
            delay = min(base_s * (2 ** attempt), max_s)
            sleep(delay * (0.5 + rng.random()))


def _check_finite(value: Any, path: str = "$") -> None:
    """Reject non-finite floats anywhere in a payload, naming the path.

    ``Infinity``/``NaN`` are not valid JSON; a payload carrying one
    (e.g. a stalled victim's infinite slowdown) must be converted by
    the caller *before* the store sees it — see
    :meth:`repro.scenarios.run.ScenarioReport.to_json`.
    """
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"non-finite float at {path}: {value!r} is not storable JSON; "
            "serialize it as null (with an explanatory flag) instead"
        )
    if isinstance(value, Mapping):
        for key, child in value.items():
            _check_finite(child, f"{path}.{key}")
    elif isinstance(value, (list, tuple)):
        for i, child in enumerate(value):
            _check_finite(child, f"{path}[{i}]")


def canonical_json(value: Any) -> str:
    """The stable canonical serialization hashes and blobs are built on.

    Sorted keys, no whitespace, finite floats only — equal recipes
    always produce byte-identical text, independent of dict insertion
    order or dataclass ``repr`` cosmetics.
    """
    _check_finite(value)
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(recipe: Mapping[str, Any]) -> str:
    """The content address of a recipe: sha256 of its canonical JSON."""
    return hashlib.sha256(canonical_json(recipe).encode()).hexdigest()[:16]


_GIT_SHA: Optional[str] = None


def git_sha() -> str:
    """Short SHA of the source tree producing artifacts ("unknown" if
    git is unavailable); cached per process."""
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=Path(__file__).resolve().parent,
            )
            sha = proc.stdout.strip()
            _GIT_SHA = sha if proc.returncode == 0 and sha else "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


_TMP_COUNTER = itertools.count()

#: Test-only crash hook: when set, called after the temp write and
#: before the rename in :func:`_atomic_write`.  The chaos harness
#: points it at ``os._exit`` to simulate a writer dying mid-``put`` —
#: the exact window that leaves an orphaned ``*.tmp`` behind.  Never
#: set in production code.
_CRASH_AFTER_TMP_WRITE = None


def atomic_write_text(path: Path, text: str) -> None:
    """Write via a sibling temp file + rename, so a crash mid-write
    never leaves torn JSON behind (an interrupted index update would
    otherwise read back as an empty index).  The temp name is unique
    per process and call, so concurrent writers cannot race each
    other's rename.

    This is the blessed durable-write helper the ``atomic-write-only``
    static rule funnels everything through (``repro check``); callers
    outside this module use this public name.
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    )
    tmp.write_text(text)
    if _CRASH_AFTER_TMP_WRITE is not None:
        _CRASH_AFTER_TMP_WRITE()
    os.replace(tmp, path)


#: Historical private name; the worker and crash tests still bind it.
_atomic_write = atomic_write_text


def _tmp_writer_pid(path: Path) -> Optional[int]:
    """The writer pid embedded in a ``*.tmp`` name, if parseable."""
    parts = path.name.split(".")
    # <original name>.<pid>.<counter>.tmp
    if len(parts) < 4 or parts[-1] != "tmp":
        return None
    try:
        return int(parts[-3])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned by someone else
    return True


class ResultStore:
    """One content-addressed store rooted at a directory.

    See the module docstring for the layout.  All read paths are
    tolerant: missing, corrupt, or version-skewed files read as misses,
    never as exceptions — the caller's contract is "recompute on miss".
    """

    def __init__(
        self,
        root: Path,
        lock_timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
    ) -> None:
        self.root = Path(root)
        self.lock_timeout_s = lock_timeout_s
        self._tmp_swept = False

    @property
    def objects_dir(self) -> Path:
        """Where blobs live (``<root>/objects``)."""
        return self.root / "objects"

    @property
    def index_path(self) -> Path:
        """The name → key alias file (``<root>/index.json``)."""
        return self.root / "index.json"

    def blob_path(self, key: str) -> Path:
        """The on-disk path of the blob addressed by ``key``."""
        return self.objects_dir / f"{key}.json"

    # -- blobs -----------------------------------------------------------

    def put(
        self,
        recipe: Mapping[str, Any],
        payload: Mapping[str, Any],
        name: Optional[str] = None,
        kind: str = "result",
        meta: Optional[Mapping[str, Any]] = None,
        overwrite: bool = False,
    ) -> Tuple[str, Path, bool]:
        """Store ``payload`` under ``recipe``'s content key.

        Returns ``(key, blob_path, created)``.  An existing readable
        blob for the same key is left untouched (``created=False``) —
        that is the dedup guarantee — unless ``overwrite`` forces a
        rewrite (``--force`` re-runs).  A corrupt blob is always
        rewritten.  ``name`` additionally records an index alias with
        ``kind`` and optional ``meta`` fields.
        """
        key = content_key(recipe)
        blob = {
            "version": STORE_VERSION,
            "key": key,
            "kind": kind,
            "recipe": recipe,
            "payload": payload,
        }
        _check_finite(blob)
        self._sweep_on_open()
        path = self.blob_path(key)
        created = overwrite or self._load_blob(key) is None
        if created:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write(path, json.dumps(blob, indent=2, sort_keys=True,
                                           allow_nan=False) + "\n")
        if name is not None:
            self.alias(name, key, kind, meta)
        return key, path, created

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key`` (None on miss/corruption)."""
        blob = self._load_blob(key)
        return None if blob is None else blob.get("payload")

    def fetch(self, recipe: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The payload stored for ``recipe`` (None on miss/corruption)."""
        return self.get(content_key(recipe))

    def recipe(self, key: str) -> Optional[Dict[str, Any]]:
        """The recipe stored under ``key`` (None on miss/corruption).

        Blobs are self-describing: the recipe rides inside, so a
        consumer holding only a content key (a fuzz reproducer, a
        baseline reference) can rebuild the exact run that produced
        the payload.
        """
        blob = self._load_blob(key)
        return None if blob is None else blob.get("recipe")

    def _load_blob(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.blob_path(key)
        if not path.is_file():
            return None
        try:
            blob = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(blob, dict)
            or blob.get("version") != STORE_VERSION
            or blob.get("key") != key
        ):
            return None
        return blob

    # -- index -----------------------------------------------------------

    def entries(
        self, name: Optional[str] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Index entries, oldest first, optionally filtered."""
        entries = self._load_index()["entries"]
        if name is not None:
            entries = [e for e in entries if e.get("name") == name]
        if kind is not None:
            entries = [e for e in entries if e.get("kind") == kind]
        return entries

    def latest(self, name: str) -> Optional[Dict[str, Any]]:
        """The most recently recorded entry for ``name`` (None if none)."""
        entries = self.entries(name=name)
        return entries[-1] if entries else None

    def names(self, kind: Optional[str] = None) -> List[str]:
        """Distinct aliased names (of one ``kind``), first-seen order."""
        return list(dict.fromkeys(
            e["name"] for e in self.entries(kind=kind) if "name" in e
        ))

    def _load_index(self) -> Dict[str, Any]:
        try:
            data = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {"version": STORE_VERSION, "entries": []}
        if (
            not isinstance(data, dict)
            or data.get("version") != STORE_VERSION
            or not isinstance(data.get("entries"), list)
        ):
            return {"version": STORE_VERSION, "entries": []}
        return data

    def alias(
        self,
        name: str,
        key: str,
        kind: str,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a name → key entry (re-recording refreshes in place).

        Cache-hit paths call this too, so a lost or corrupt index is
        rebuilt incrementally by ordinary re-runs — blobs are the
        durable layer, the index is always reconstructible.
        """
        entry: Dict[str, Any] = {
            "name": name,
            "key": key,
            "kind": kind,
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "git_sha": git_sha(),
        }
        if meta:
            entry["meta"] = dict(meta)
        with self._index_lock():
            index = self._load_index()
            index["entries"] = [
                e for e in index["entries"]
                if not (e.get("name") == name and e.get("key") == key)
            ]
            index["entries"].append(entry)
            _atomic_write(
                self.index_path, json.dumps(index, indent=2) + "\n"
            )

    def unalias(self, name: str) -> int:
        """Drop every index entry for ``name``; returns how many.

        The blob(s) stay on disk — they merely become unreferenced, so
        the next :meth:`gc` collects them.  This is how a distributed
        worker retires a task's checkpoint alias once the final result
        has landed: the superseded checkpoint blob turns into ordinary
        garbage instead of accumulating forever.
        """
        with self._index_lock():
            index = self._load_index()
            before = len(index["entries"])
            index["entries"] = [
                e for e in index["entries"] if e.get("name") != name
            ]
            removed = before - len(index["entries"])
            if removed:
                _atomic_write(
                    self.index_path, json.dumps(index, indent=2) + "\n"
                )
        return removed

    @contextmanager
    def _index_lock(self) -> Iterator[None]:
        """Serialize index read-modify-writes across processes.

        Concurrent writers into one results dir (``repro run`` next to
        ``repro scenario run``) would otherwise lose each other's
        alias entries.  POSIX advisory lock on a sidecar file; a no-op
        where ``fcntl`` is unavailable (blobs are unaffected either
        way, and a lost alias self-heals on the next re-run).

        The acquisition polls with a deadline
        (:attr:`lock_timeout_s`): a *stalled* holder — alive but stuck,
        so the lock never drops — surfaces as a
        :class:`StoreLockTimeout` naming the lock path instead of
        blocking every other writer indefinitely.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.root / "index.lock"
        with open(lock_path, "w") as handle:
            deadline = time.monotonic() + self.lock_timeout_s
            while True:
                try:
                    fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise StoreLockTimeout(
                            lock_path, self.lock_timeout_s
                        ) from None
                    time.sleep(0.02)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- introspection ---------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """A cheap census for monitors: blob count/bytes, index size.

        Consumed by the serve daemon's ``/status`` endpoint and usable
        by anything watching store growth; one directory scan plus one
        index read, no blob parsing.
        """
        blobs = 0
        blob_bytes = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*.json"):
                try:
                    blob_bytes += path.stat().st_size
                except OSError:
                    continue
                blobs += 1
        return {
            "blobs": blobs,
            "blob_bytes": blob_bytes,
            "index_entries": len(self._load_index()["entries"]),
        }

    # -- garbage collection ----------------------------------------------

    def _sweep_on_open(self) -> None:
        """Once per store instance, clear crash debris before writing."""
        if not self._tmp_swept:
            self._tmp_swept = True
            self.sweep_stale_tmp()

    def sweep_stale_tmp(
        self,
        grace_s: float = STALE_TMP_GRACE_S,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> List[Path]:
        """Find (and unless ``dry_run``, delete) orphaned temp files.

        A writer killed between the temp write and the rename in
        :func:`_atomic_write` leaves its ``*.tmp`` file behind forever.
        A temp file is stale when its embedded writer pid is dead on
        this host, or — when the pid cannot be judged (other host,
        foreign name) — when it is older than ``grace_s``.  Live
        writers are never swept: their pid probes alive and their files
        are seconds old.
        """
        if now is None:
            now = time.time()
        stale: List[Path] = []
        for directory in (self.root, self.objects_dir):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.tmp"):
                pid = _tmp_writer_pid(path)
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue  # already gone
                if pid is not None and not _pid_alive(pid):
                    stale.append(path)
                elif age > grace_s:
                    stale.append(path)
        if not dry_run:
            for path in stale:
                try:
                    path.unlink()
                except OSError:
                    pass
        return stale

    def referenced_keys(self) -> set:
        """Every content key reachable from the index.

        Index entries are the roots; payload fields ending in ``_key``
        (e.g. a scenario blob's ``baseline_key``) are followed
        transitively, so a blob referenced only from inside another
        indexed artifact still counts as live.  Callers that act on
        the answer (like :meth:`gc`) should hold :meth:`_index_lock`
        so the index cannot change between the scan and the action.
        """
        live: set = set()
        frontier = [
            e["key"] for e in self.entries() if isinstance(e.get("key"), str)
        ]
        while frontier:
            key = frontier.pop()
            if key in live:
                continue
            live.add(key)
            blob = self._load_blob(key)
            if blob is not None:
                frontier.extend(_payload_key_refs(blob.get("payload")))
        return live

    def gc(
        self,
        dry_run: bool = False,
        tmp_grace_s: float = STALE_TMP_GRACE_S,
        blob_grace_s: float = DEFAULT_GC_BLOB_GRACE_S,
        now: Optional[float] = None,
    ) -> "GCReport":
        """Delete blobs unreferenced by the index, plus stale temp files.

        Returns a :class:`GCReport`; with ``dry_run`` nothing is
        removed and the report shows what *would* be reclaimed.  Every
        index-referenced artifact (directly, or via a ``*_key`` payload
        reference) survives.  Typical garbage: checkpoint blobs whose
        alias a completing distributed task dropped, and result blobs
        whose alias history was pruned with :meth:`unalias`.

        Safe next to live writers: the index lock is held across the
        reference scan and the deletions, so no alias can land between
        "unreferenced" being decided and the blob being removed — and
        because ``put`` writes a blob *before* its alias (outside the
        lock), unreferenced blobs younger than ``blob_grace_s`` are
        kept, never mistaking an in-flight write for garbage.
        """
        if now is None:
            now = time.time()
        unreferenced: List[Tuple[str, int]] = []
        with self._index_lock():
            live = self.referenced_keys()
            if self.objects_dir.is_dir():
                for path in sorted(self.objects_dir.glob("*.json")):
                    key = path.stem
                    if key in live:
                        continue
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    if now - stat.st_mtime < blob_grace_s:
                        continue  # writer may not have aliased it yet
                    unreferenced.append((key, stat.st_size))
                    if not dry_run:
                        try:
                            path.unlink()
                        except OSError:
                            pass
        stale = self.sweep_stale_tmp(
            grace_s=tmp_grace_s, dry_run=True
        )
        stale_sized: List[Tuple[Path, int]] = []
        for path in stale:
            try:
                stale_sized.append((path, path.stat().st_size))
            except OSError:
                continue
        if not dry_run:
            for path, _size in stale_sized:
                try:
                    path.unlink()
                except OSError:
                    pass
        return GCReport(
            dry_run=dry_run,
            unreferenced_blobs=unreferenced,
            stale_tmp=stale_sized,
            live_blobs=len(live),
        )


_KEY_RE = None


def _payload_key_refs(payload: Any) -> List[str]:
    """Content keys referenced from inside a payload.

    Any mapping field whose name ends in ``_key`` and whose value looks
    like a content key (16 hex chars) is a reference — the convention
    :mod:`repro.scenarios.run` established with ``baseline_key``.
    Lists and nested mappings are walked; anything else is data.
    """
    global _KEY_RE
    if _KEY_RE is None:
        import re

        _KEY_RE = re.compile(r"^[0-9a-f]{16}$")
    refs: List[str] = []
    if isinstance(payload, Mapping):
        for field, value in payload.items():
            if (
                isinstance(field, str)
                and field.endswith("_key")
                and isinstance(value, str)
                and _KEY_RE.match(value)
            ):
                refs.append(value)
            else:
                refs.extend(_payload_key_refs(value))
    elif isinstance(payload, (list, tuple)):
        for value in payload:
            refs.extend(_payload_key_refs(value))
    return refs


@dataclass
class GCReport:
    """What one :meth:`ResultStore.gc` pass found (and maybe removed)."""

    dry_run: bool
    unreferenced_blobs: List[Tuple[str, int]]
    stale_tmp: List[Tuple[Path, int]]
    live_blobs: int

    @property
    def reclaimable_bytes(self) -> int:
        """Total size of unreferenced blobs plus stale temp files."""
        return sum(size for _key, size in self.unreferenced_blobs) + sum(
            size for _path, size in self.stale_tmp
        )

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable report for ``repro results gc --json``."""
        return {
            "dry_run": self.dry_run,
            "unreferenced_blobs": [
                {"key": key, "bytes": size}
                for key, size in self.unreferenced_blobs
            ],
            "stale_tmp": [
                {"path": path.name, "bytes": size}
                for path, size in self.stale_tmp
            ],
            "live_blobs": self.live_blobs,
            "reclaimable_bytes": self.reclaimable_bytes,
        }

    def summary_lines(self) -> List[str]:
        """Human-readable report for ``repro results gc``."""
        verb = "reclaimable" if self.dry_run else "reclaimed"
        lines = [
            f"{len(self.unreferenced_blobs)} unreferenced blob(s), "
            f"{len(self.stale_tmp)} stale temp file(s): "
            f"{self.reclaimable_bytes} bytes {verb} "
            f"({self.live_blobs} referenced blob(s) kept)"
        ]
        for key, size in self.unreferenced_blobs:
            lines.append(f"  blob {key} ({size} bytes)")
        for path, size in self.stale_tmp:
            lines.append(f"  tmp  {path.name} ({size} bytes)")
        return lines


def store_for(results_dir: Path) -> ResultStore:
    """The shared store under a results directory (``<dir>/store``).

    Scenario artifacts and the experiment orchestrator's cache live in
    this one store; their recipes carry distinct ``kind`` tags, so keys
    cannot collide across subsystems.
    """
    return ResultStore(Path(results_dir) / "store")
