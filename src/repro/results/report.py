"""Compare scenario artifacts across two result stores.

``repro scenario report A B`` (and the ``tools/scenario_report.py``
wrapper CI uses) diffs the latest run of every scenario name present in
both stores, metric by metric — the same comparison story
``tools/bench_compare.py --trajectory`` gives perf artifacts, applied
to security/performance metrics.  Each side may be a results directory
(the store lives at ``<dir>/store``) or a store root itself.

A ratio column (``B/A``) makes cross-commit drift obvious: check out
two commits, run the same presets into two results dirs, and report
them against each other.  Non-finite-free payloads are guaranteed by
the store, so the report never chokes on ``Infinity`` artifacts.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .store import ResultStore, store_for

#: Index kinds the report treats as scenario runs.
SCENARIO_KIND = "scenario"


def resolve_store(path: Path) -> ResultStore:
    """A store from a results dir or a store root.

    ``<path>/index.json`` or ``<path>/objects`` marks ``path`` as the
    store itself; otherwise the conventional ``<path>/store`` is used.
    """
    path = Path(path)
    if (path / "index.json").is_file() or (path / "objects").is_dir():
        return ResultStore(path)
    return store_for(path)


def latest_runs(store: ResultStore) -> Dict[str, Dict[str, Any]]:
    """Latest retrievable scenario payload per name in ``store``."""
    runs: Dict[str, Dict[str, Any]] = {}
    for entry in store.entries(kind=SCENARIO_KIND):
        payload = store.get(entry["key"])
        if payload is not None:
            runs[entry["name"]] = {"entry": entry, "payload": payload}
    return runs


def _numeric(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_stores(
    store_a: ResultStore, store_b: ResultStore
) -> Tuple[
    List[Dict[str, Any]], List[str], List[str], List[Dict[str, Any]]
]:
    """Metric rows for every scenario present in both stores.

    Returns ``(rows, only_a, only_b, mismatched)``.  A row carries
    ``a``/``b`` values (None when that side recorded null, e.g. a
    stalled victim's slowdown) and ``ratio`` (``b / a`` when both are
    finite and ``a`` is non-zero).  ``mismatched`` flags shared names
    whose two sides were run with different shapes (the index entries'
    ``meta``: ``n_requests``/``seed``) — their ratios mix run-shape
    differences with real drift, so the report calls them out.
    """
    runs_a, runs_b = latest_runs(store_a), latest_runs(store_b)
    shared = [name for name in runs_a if name in runs_b]
    only_a = [name for name in runs_a if name not in runs_b]
    only_b = [name for name in runs_b if name not in runs_a]
    rows: List[Dict[str, Any]] = []
    mismatched: List[Dict[str, Any]] = []
    for name in shared:
        meta_a = runs_a[name]["entry"].get("meta")
        meta_b = runs_b[name]["entry"].get("meta")
        if meta_a != meta_b:
            mismatched.append(
                {"scenario": name, "meta_a": meta_a, "meta_b": meta_b}
            )
        metrics_a = runs_a[name]["payload"].get("metrics", {})
        metrics_b = runs_b[name]["payload"].get("metrics", {})
        for metric in metrics_a:
            if metric not in metrics_b:
                continue
            a = _numeric(metrics_a[metric])
            b = _numeric(metrics_b[metric])
            if metrics_a[metric] is None and metrics_b[metric] is None:
                continue
            rows.append(
                {
                    "scenario": name,
                    "metric": metric,
                    "a": a,
                    "b": b,
                    "ratio": b / a if a not in (None, 0.0) and b is not None
                    else None,
                }
            )
    return rows, only_a, only_b, mismatched


def _fmt(value: Optional[float], width: int = 12) -> str:
    return f"{'—':>{width}}" if value is None else f"{value:>{width}.6g}"


def render_report(
    rows: List[Dict[str, Any]],
    only_a: List[str],
    only_b: List[str],
    label_a: str,
    label_b: str,
    mismatched: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """The human-readable diff table."""
    lines = [
        f"A: {label_a}",
        f"B: {label_b}",
    ]
    for mismatch in mismatched or []:
        lines.append(
            f"warning: {mismatch['scenario']} run shapes differ — "
            f"A {mismatch['meta_a']} vs B {mismatch['meta_b']}; "
            f"its ratios mix run-shape changes with real drift"
        )
    lines += [
        "",
        f"{'scenario':<26} {'metric':<30} {'A':>12} {'B':>12} "
        f"{'B/A':>8}",
    ]
    for row in rows:
        ratio = "" if row["ratio"] is None else f"{row['ratio']:8.3f}"
        lines.append(
            f"{row['scenario']:<26} {row['metric']:<30} "
            f"{_fmt(row['a'])} {_fmt(row['b'])} {ratio:>8}"
        )
    compared = len({row["scenario"] for row in rows})
    summary = f"({compared} scenario(s) compared"
    if only_a:
        summary += f"; only in A: {', '.join(only_a)}"
    if only_b:
        summary += f"; only in B: {', '.join(only_b)}"
    lines.append(summary + ")")
    return "\n".join(lines)


def run_report(dir_a: Path, dir_b: Path) -> int:
    """Print the diff of two stores; exit status for the CLI.

    Exits non-zero when nothing was comparable, so a broken store path
    or an empty run cannot silently pass a CI gate.
    """
    store_a, store_b = resolve_store(dir_a), resolve_store(dir_b)
    rows, only_a, only_b, mismatched = compare_stores(store_a, store_b)
    if not rows:
        print(
            f"no comparable scenario artifacts between "
            f"{store_a.root} and {store_b.root}"
        )
        return 2
    print(render_report(rows, only_a, only_b,
                        str(store_a.root), str(store_b.root),
                        mismatched=mismatched))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by ``repro scenario report`` and tools/."""
    parser = argparse.ArgumentParser(
        description="diff scenario metrics across two result stores"
    )
    parser.add_argument(
        "dir_a", help="results dir (or store root) of side A"
    )
    parser.add_argument(
        "dir_b", help="results dir (or store root) of side B"
    )
    args = parser.parse_args(argv)
    return run_report(Path(args.dir_a), Path(args.dir_b))
