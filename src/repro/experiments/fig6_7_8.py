"""Figures 6, 7 and 8: the charge-loss model curves.

* Fig 6 — Rowhammer is perfectly linear: K units of loss in K tRC.
* Fig 7 — long-duration Row-Press TCL of the 21 devices at 1 and 9
  tREFI, against the Rowhammer line and the alpha = 0.48 CLM cover.
* Fig 8 — short-duration Row-Press: measured points, least-squares
  power-law fit, and the conservative alpha = 0.35 CLM line.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.charge import (
    ALPHA_LONG,
    ALPHA_SHORT,
    ConservativeLinearModel,
    fit_clm,
    fit_power_law,
    rowhammer_tcl,
)
from ..data.rowpress import (
    NINE_TREFI_TRC,
    ONE_TREFI_TRC,
    SHORT_DURATION_POINTS,
    long_duration_points,
)


def fig6_series(max_acts: int = 10) -> List[Tuple[int, float]]:
    """The Rowhammer charge-loss staircase: (K, TCL)."""
    return [(k, rowhammer_tcl(k)) for k in range(1, max_acts + 1)]


def fig7_series(
    times_trc: Sequence[float] = (ONE_TREFI_TRC, NINE_TREFI_TRC),
) -> Dict[str, object]:
    """Device scatter plus the RH and CLM(0.48) reference lines."""
    clm = ConservativeLinearModel(alpha=ALPHA_LONG)
    points = long_duration_points(times_trc)
    return {
        "device_points": points,
        "rowhammer_line": [(t, float(int(t))) for t in times_trc],
        "clm_line": [(t, clm.tcl_of_attack_time(t)) for t in times_trc],
        "clm_alpha": ALPHA_LONG,
        "fitted_alpha": fit_clm(points).alpha,
    }


def fig8_series() -> Dict[str, object]:
    """Short-duration data, power-law fit and CLM(0.35)."""
    points = list(SHORT_DURATION_POINTS)
    clm = fit_clm(points)
    power = fit_power_law(points)
    times = [total for total, _tcl in points]
    return {
        "data_points": points,
        "clm_alpha": clm.alpha,
        "clm_line": [(t, clm.tcl_of_attack_time(t)) for t in times],
        "power_fit": (power.a, power.b),
        "power_line": [(t, power.tcl_of_attack_time(t)) for t in times],
        "rowhammer_line": [(t, t) for t in times],
        "paper_alpha": ALPHA_SHORT,
    }


def main() -> None:
    print("Fig 6 (K, TCL):", fig6_series(6))
    fig7 = fig7_series()
    print(
        f"Fig 7: {len(fig7['device_points'])} device points, "
        f"fitted alpha={fig7['fitted_alpha']:.3f} "
        f"(cover alpha={fig7['clm_alpha']})"
    )
    fig8 = fig8_series()
    print(
        f"Fig 8: CLM alpha={fig8['clm_alpha']:.3f} "
        f"(paper {fig8['paper_alpha']}), power fit a,b={fig8['power_fit']}"
    )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig6",
    title="Rowhammer charge loss is perfectly linear",
    paper_ref="Figure 6 (Eq 1)",
    tags=("figure", "analytic", "paper"),
    cost=0.1,
    summarize=lambda series: {"tcl_after_5_acts": dict(series)[5]},
    paper_values={"tcl_after_5_acts": 5.0},
)
def _fig6(ctx: RunContext):
    return fig6_series()


@register(
    name="fig7",
    title="Long-duration Row-Press TCL and the alpha=0.48 CLM cover",
    paper_ref="Figure 7 (Section IV-C)",
    tags=("figure", "analytic", "paper"),
    cost=0.1,
    summarize=lambda data: {
        "fitted_alpha": data["fitted_alpha"],
        "cover_alpha": data["clm_alpha"],
    },
    paper_values={"cover_alpha": 0.48},
)
def _fig7(ctx: RunContext):
    return fig7_series()


@register(
    name="fig8",
    title="Short-duration Row-Press: power-law fit vs alpha=0.35 CLM",
    paper_ref="Figure 8 (Section IV-C)",
    tags=("figure", "analytic", "paper"),
    cost=0.1,
    summarize=lambda data: {"clm_alpha": data["clm_alpha"]},
    paper_values={"clm_alpha": 0.35},
)
def _fig8(ctx: RunContext):
    return fig8_series()
