"""Figure 5: Graphene and PARA under ExPress as tMRO varies.

Each tMRO point runs ExPress with the tracker provisioned for the
measured T*(tMRO) from Fig 4 (more entries / higher probability at lower
T*), normalized to the tracker's own no-tMRO baseline.  Reported as
SPEC/STREAM geometric means like the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.analysis import express_relative_threshold_measured
from ..scenarios.grid import ScenarioGrid
from ..sim.config import DefenseConfig
from ..sim.metrics import geomean
from .common import SweepRunner, spec_of, stream_of, workload_set

TMRO_VALUES_NS: Sequence[float] = (36.0, 66.0, 96.0, 186.0, 336.0, 636.0)
TRACKERS = ("graphene", "para")


def run(
    runner: Optional[SweepRunner] = None,
    tmros_ns: Sequence[float] = TMRO_VALUES_NS,
    trh: float = 4000.0,
    quick: bool = True,
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """{tracker: {"SPEC"|"STREAM": {tmro or inf(no-tMRO): geomean perf}}}."""
    runner = runner or SweepRunner()
    names = workload_set(quick)
    # Build each grid config once; the scenario grid and the assembly
    # loop below share the same objects, so the fan-out and the cache
    # lookups can never drift apart.
    baselines = {
        tracker: DefenseConfig(tracker=tracker, scheme="no-rp", trh=trh)
        for tracker in TRACKERS
    }
    defenses = {
        (tracker, tmro): DefenseConfig(
            tracker=tracker,
            scheme="express",
            trh=trh,
            tmro_ns=tmro,
            target_scale=express_relative_threshold_measured(tmro),
        )
        for tracker in TRACKERS
        for tmro in tmros_ns
    }
    # The whole figure as one scenario grid: every workload crossed
    # with the paired (defense, tMRO) points — the tracker provisioned
    # for the measured T*(tMRO) runs *at* that tMRO, which is why the
    # defense axis is explicit pairs rather than a cross product.
    grid = ScenarioGrid(
        workloads=tuple(names),
        defense_points=tuple(
            (baselines[tracker], None) for tracker in TRACKERS
        ) + tuple(
            (defenses[tracker, tmro], tmro)
            for tracker in TRACKERS
            for tmro in tmros_ns
        ),
        system=runner.system,
        name="fig5",
    )
    runner.run_many(grid.expand())
    output: Dict[str, Dict[str, Dict[float, float]]] = {}
    for tracker in TRACKERS:
        baseline = baselines[tracker]
        spec_series: Dict[float, float] = {}
        stream_series: Dict[float, float] = {}
        points = list(tmros_ns) + [float("inf")]
        for tmro in points:
            if tmro == float("inf"):
                defense = baseline
                tmro_arg = None
            else:
                defense = defenses[tracker, tmro]
                tmro_arg = tmro
            per = {
                name: runner.speedup(name, defense, baseline, tmro_ns=tmro_arg)
                for name in names
            }
            spec_series[tmro] = geomean(
                [per[n] for n in spec_of(names)]
            )
            stream_series[tmro] = geomean(
                [per[n] for n in stream_of(names)]
            )
        output[tracker] = {"SPEC": spec_series, "STREAM": stream_series}
    return output


def main(quick: bool = True) -> None:
    data = run(quick=quick)
    for tracker, categories in data.items():
        for category, series in categories.items():
            cells = "  ".join(
                f"{('no-tMRO' if t == float('inf') else f'{t:.0f}ns')}:{v:.3f}"
                for t, v in series.items()
            )
            print(f"{tracker:>8} {category:>6}  {cells}")


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig5",
    title="Graphene and PARA under ExPress as tMRO varies",
    paper_ref="Figure 5",
    tags=("figure", "simulation", "paper"),
    cost=90.0,
    summarize=lambda data: {
        "graphene_stream_tmro36": data["graphene"]["STREAM"][36.0],
        "para_stream_tmro36": data["para"]["STREAM"][36.0],
    },
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
