"""Figure 13: scheme comparison per tracker at alpha = 1.

(a) Graphene and (b) PARA with ExPress / ImPress-N / ImPress-P, each
normalized to the tracker's own No-RP baseline; (c) the in-DRAM tracker
(MINT) with ImPress-N (RFM-40) and ImPress-P (RFM-80) against the
RFM-80 No-RP reference.  ExPress is omitted for MINT: it is
incompatible with in-DRAM trackers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..scenarios.grid import ScenarioGrid
from ..sim.config import DefenseConfig
from .common import SweepRunner, category_geomeans, workload_set

MC_TRACKERS = ("graphene", "para")
MC_SCHEMES = ("express", "impress-n", "impress-p")
IN_DRAM_SCHEMES = ("impress-n", "impress-p")


def run(
    runner: Optional[SweepRunner] = None,
    trh: float = 4000.0,
    alpha: float = 1.0,
    mint_trh: float = 1600.0,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """{tracker: {scheme: {workload/geomean: perf normalized to No-RP}}}."""
    runner = runner or SweepRunner()
    names = list(workloads) if workloads else workload_set(quick)
    # The whole grid: each tracker's No-RP baseline plus every scheme.
    grid: Dict[str, Dict[str, DefenseConfig]] = {}
    baselines: Dict[str, DefenseConfig] = {}
    for tracker in MC_TRACKERS:
        baselines[tracker] = DefenseConfig(
            tracker=tracker, scheme="no-rp", trh=trh
        )
        grid[tracker] = {
            scheme: DefenseConfig(
                tracker=tracker, scheme=scheme, trh=trh, alpha=alpha
            )
            for scheme in MC_SCHEMES
        }
    # In-DRAM (MINT): both schemes against the RFM-80 No-RP baseline.
    baselines["mint"] = DefenseConfig(
        tracker="mint", scheme="no-rp", trh=mint_trh
    )
    grid["mint"] = {
        scheme: DefenseConfig(
            tracker="mint", scheme=scheme, trh=mint_trh, alpha=alpha
        )
        for scheme in IN_DRAM_SCHEMES
    }
    # The whole figure as one scenario grid — every workload crossed
    # with every baseline and scheme config — fanned out through
    # run_many (process pool when the runner has jobs > 1); the
    # assembly below then reads every point back as a cache hit.
    scenario_grid = ScenarioGrid.cross(
        workloads=tuple(names),
        defenses=tuple(baselines.values()) + tuple(
            defense
            for schemes in grid.values()
            for defense in schemes.values()
        ),
        system=runner.system,
        name="fig13",
    )
    runner.run_many(scenario_grid.expand())
    output: Dict[str, Dict[str, Dict[str, float]]] = {}
    for tracker, schemes in grid.items():
        baseline = baselines[tracker]
        output[tracker] = {}
        for scheme, defense in schemes.items():
            per = {
                name: runner.speedup(name, defense, baseline)
                for name in names
            }
            output[tracker][scheme] = category_geomeans(per, names)
    return output


def main(quick: bool = True) -> None:
    data = run(quick=quick)
    for tracker, schemes in data.items():
        for scheme, rows in schemes.items():
            spec = rows.get("SPEC (GMean)", float("nan"))
            stream = rows.get("STREAM (GMean)", float("nan"))
            print(
                f"{tracker:>8} {scheme:>10}  "
                f"SPEC {spec:.3f}  STREAM {stream:.3f}"
            )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig13",
    title="Scheme comparison per tracker at alpha = 1",
    paper_ref="Figure 13 (Section VI-D)",
    tags=("figure", "simulation", "paper"),
    cost=65.0,
    summarize=lambda data: {
        "graphene_impress_p_spec": data["graphene"]["impress-p"]["SPEC (GMean)"],
        "graphene_impress_p_stream": (
            data["graphene"]["impress-p"]["STREAM (GMean)"]
        ),
        "graphene_express_stream": data["graphene"]["express"]["STREAM (GMean)"],
        "mint_impress_p_spec": data["mint"]["impress-p"]["SPEC (GMean)"],
    },
    paper_values={
        "graphene_impress_p_spec": 1.0,
        "graphene_impress_p_stream": 1.0,
        "mint_impress_p_spec": 1.0,
    },
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
