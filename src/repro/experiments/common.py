"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..cache import CacheStats
from ..sim.batch import batch_available, simulate_batch
from ..sim.config import DefenseConfig, SystemConfig
from ..sim.metrics import geomean, normalized_weighted_speedup
from ..sim.stats import SimResult
from ..sim.system import simulate_workload
from ..workloads.profiles import SPEC_NAMES, STREAM_NAMES

#: One sweep point: ``(workload, defense, tmro_ns)`` — the same triple
#: that keys the :class:`SweepRunner` cache.  The workload slot is a
#: rate-mode name *or* a heterogeneous per-core source tuple
#: (:data:`repro.workloads.sources.CoreSources`); both are hashable and
#: :func:`~repro.sim.system.simulate_workload` dispatches on the type.
SweepPoint = Tuple[object, Optional[DefenseConfig], Optional[float]]

#: What callers may pass to :meth:`SweepRunner.run_many`: a bare
#: workload name, a ``(workload, defense)`` pair, a full triple, or any
#: object with a ``sweep_point()`` method — notably
#: :class:`repro.scenarios.spec.ScenarioSpec`, so scenario grids feed
#: ``run_many`` directly.  A bare source tuple is *not* accepted (it is
#: indistinguishable from a point tuple); wrap it in a triple or a
#: ScenarioSpec.
SweepPointLike = Union[
    str,
    Tuple[str],
    Tuple[str, Optional[DefenseConfig]],
    SweepPoint,
]


def _normalize_point(point) -> SweepPoint:
    """Canonicalize a point spec into the cache-key triple."""
    sweep_point = getattr(point, "sweep_point", None)
    if sweep_point is not None:
        return sweep_point()
    if isinstance(point, str):
        return (point, None, None)
    workload, *rest = point
    defense = rest[0] if rest else None
    tmro_ns = rest[1] if len(rest) > 1 else None
    return (workload, defense, tmro_ns)


def _evaluate_point(
    payload: Tuple[SystemConfig, int, int, SweepPoint]
) -> Tuple[SweepPoint, SimResult]:
    """Pool-worker entry: simulate one sweep point.

    Runs in a persistent worker process; the process-local compiled-
    trace cache (:mod:`repro.workloads.compiled`) persists across the
    points a worker evaluates, so a sweep's defenses share one compiled
    trace set per workload exactly as they do in-process.
    """
    system, n_requests, seed, point = payload
    workload, defense, tmro_ns = point
    result = simulate_workload(
        workload,
        defense=defense,
        system=system,
        n_requests_per_core=n_requests,
        tmro_ns=tmro_ns,
        seed=seed,
    )
    return point, result

#: Default request budget per core for experiment-scale runs.  Small
#: enough for minutes-long sweeps, large enough for stable geomeans.
#: The synthetic streams contend hardest in their first few hundred
#: requests (cores start aligned and drift apart), which is the regime
#: closest to the paper's saturated STREAM workloads, so the default
#: stays in that window rather than diluting it with a long drifted
#: tail.
DEFAULT_REQUESTS = 800

#: A reduced workload set for the heavier sweeps (one per class plus the
#: extremes), used when ``quick=True``.
QUICK_SPEC = ("mcf", "gcc", "bwaves")
QUICK_STREAM = ("add", "copy", "triad")


def workload_set(quick: bool) -> List[str]:
    if quick:
        return list(QUICK_SPEC + QUICK_STREAM)
    return list(SPEC_NAMES + STREAM_NAMES)


def spec_of(names: Iterable[str]) -> List[str]:
    return [name for name in names if name in SPEC_NAMES]


def stream_of(names: Iterable[str]) -> List[str]:
    return [name for name in names if name in STREAM_NAMES]


@dataclass
class SweepRunner:
    """Caches simulation runs so each config sweep shares its references.

    **Cache key contract.**  A run is identified by
    ``(workload, defense, tmro_ns)``; the runner's own ``system``,
    ``n_requests`` and ``seed`` are fixed per instance and therefore not
    part of the key — never mutate them after the first ``run()``.
    ``workload`` is a rate-mode name or a frozen per-core source tuple
    (the scenario path), and ``defense`` a frozen dataclass (or None),
    so value-equal configs share an entry.  Scenario specs built on
    this runner's topology canonicalize named workloads to their plain
    strings, so scenario grids and legacy figure sweeps share entries.  :meth:`speedup` looks its baseline up through the
    same cache under ``(workload, baseline, None)``: the baseline leg
    always runs *without* a tMRO override, so a ``tmro_ns`` sweep shares
    one baseline entry per workload rather than one per point.

    The cache is unbounded by design — a full experiment sweep touches a
    few hundred configurations at most, and entries must stay alive for
    the whole sweep because later figures re-request earlier baselines.
    Long-lived callers (e.g. ``repro bench``) can inspect growth via
    :meth:`cache_stats` and drop everything with :meth:`clear_cache`.

    **Intra-experiment parallelism.**  :meth:`run_many` evaluates a
    batch of points through a persistent process pool (``jobs`` > 1)
    and merges the results into the same cache, so a figure can fan its
    whole grid out before its (unchanged) assembly loops read every
    point back as cache hits.  Results are bit-identical to serial runs:
    every simulation is a deterministic function of its point and the
    runner's fixed (system, n_requests, seed).
    """

    system: SystemConfig = field(default_factory=SystemConfig)
    n_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    #: Worker processes for :meth:`run_many` (1 = serial in-process).
    jobs: int = 1
    #: Route serial :meth:`run_many` batches through the NumPy batch
    #: engine tier (:func:`repro.sim.batch.simulate_batch`) when it is
    #: available.  Results are bit-identical to per-point runs; set
    #: False to force the per-point fast engine.
    use_batch: bool = True
    _cache: Dict[tuple, SimResult] = field(default_factory=dict)
    _hits: int = 0
    _misses: int = 0
    _pool: Optional[multiprocessing.pool.Pool] = field(
        default=None, repr=False, compare=False
    )
    _pool_size: int = field(default=0, repr=False, compare=False)

    def run(
        self,
        workload,
        defense: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
    ) -> SimResult:
        """One (possibly cached) simulation of a workload-key point."""
        key = (workload, defense, tmro_ns)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = simulate_workload(
            workload,
            defense=defense,
            system=self.system,
            n_requests_per_core=self.n_requests,
            tmro_ns=tmro_ns,
            seed=self.seed,
        )
        self._cache[key] = result
        return result

    def speedup(
        self,
        workload,
        defense: Optional[DefenseConfig],
        baseline: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
    ) -> float:
        result = self.run(workload, defense, tmro_ns)
        reference = self.run(workload, baseline)
        return normalized_weighted_speedup(result, reference)

    def run_many(
        self,
        points: Iterable[SweepPointLike],
        jobs: Optional[int] = None,
    ) -> List[SimResult]:
        """Batch-evaluate sweep points; returns results in input order.

        Points already in the cache are served from it (counted as
        hits); duplicates among the remaining points are computed once.
        With ``jobs`` > 1 (defaulting to the runner's ``jobs`` field)
        the uncached points are evaluated across a persistent process
        pool and merged into the cache, making every later ``run()`` /
        ``speedup()`` on the same point a hit.  Falls back to serial
        execution inside daemonic workers (e.g. when an orchestrator
        pool already owns the process), which cannot fork children.
        Serial in-process batches route through the batch engine tier
        when NumPy is available (see ``use_batch``), again with
        bit-identical results.
        """
        normalized = [_normalize_point(point) for point in points]
        needed: List[SweepPoint] = []
        seen = set()
        cache = self._cache
        for key in normalized:
            if key in cache:
                self._hits += 1
            elif key not in seen:
                seen.add(key)
                needed.append(key)
        if jobs is None:
            jobs = self.jobs
        if (
            len(needed) > 1
            and jobs > 1
            and not multiprocessing.current_process().daemon
        ):
            pool = self._ensure_pool(jobs)
            payloads = [
                (self.system, self.n_requests, self.seed, key)
                for key in needed
            ]
            for key, result in pool.imap_unordered(
                _evaluate_point, payloads
            ):
                cache[key] = result
                self._misses += 1
        elif self.use_batch and len(needed) > 1 and batch_available():
            # Serial in-process path: route the whole point group
            # through the batch engine tier, which replays compatible
            # lanes against one recorded leader run (bit-identical to
            # per-point runs; lanes it cannot prove safe are simulated
            # for real inside simulate_batch).
            for key, result in zip(
                needed,
                simulate_batch(
                    needed,
                    system=self.system,
                    n_requests_per_core=self.n_requests,
                    seed=self.seed,
                ),
            ):
                cache[key] = result
                self._misses += 1
        else:
            for key in needed:
                self.run(*key)
        return [cache[key] for key in normalized]

    def _ensure_pool(self, jobs: int) -> multiprocessing.pool.Pool:
        """The persistent worker pool, (re)built when ``jobs`` changes."""
        if self._pool is not None and self._pool_size != jobs:
            self.close_pool()
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=jobs)
            self._pool_size = jobs
        return self._pool

    def close_pool(self) -> None:
        """Shut the persistent pool down (idempotent; pool is rebuilt
        lazily by the next parallel :meth:`run_many`)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def cache_stats(self) -> CacheStats:
        """Current hit/miss counters and entry count of the run cache."""
        return CacheStats(
            hits=self._hits, misses=self._misses, size=len(self._cache)
        )

    def clear_cache(self) -> None:
        """Drop every cached run and reset the counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0


def category_geomeans(
    per_workload: Dict[str, float], names: Sequence[str]
) -> Dict[str, float]:
    """Append SPEC/STREAM geometric means the way the figures report."""
    spec = [per_workload[n] for n in spec_of(names) if n in per_workload]
    stream = [per_workload[n] for n in stream_of(names) if n in per_workload]
    out = dict(per_workload)
    if spec:
        out["SPEC (GMean)"] = geomean(spec)
    if stream:
        out["STREAM (GMean)"] = geomean(stream)
    return out
