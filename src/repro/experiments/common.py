"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..cache import CacheStats
from ..sim.config import DefenseConfig, SystemConfig
from ..sim.metrics import geomean, normalized_weighted_speedup
from ..sim.stats import SimResult
from ..sim.system import simulate_workload
from ..workloads.profiles import SPEC_NAMES, STREAM_NAMES

#: Default request budget per core for experiment-scale runs.  Small
#: enough for minutes-long sweeps, large enough for stable geomeans.
#: The synthetic streams contend hardest in their first few hundred
#: requests (cores start aligned and drift apart), which is the regime
#: closest to the paper's saturated STREAM workloads, so the default
#: stays in that window rather than diluting it with a long drifted
#: tail.
DEFAULT_REQUESTS = 800

#: A reduced workload set for the heavier sweeps (one per class plus the
#: extremes), used when ``quick=True``.
QUICK_SPEC = ("mcf", "gcc", "bwaves")
QUICK_STREAM = ("add", "copy", "triad")


def workload_set(quick: bool) -> List[str]:
    if quick:
        return list(QUICK_SPEC + QUICK_STREAM)
    return list(SPEC_NAMES + STREAM_NAMES)


def spec_of(names: Iterable[str]) -> List[str]:
    return [name for name in names if name in SPEC_NAMES]


def stream_of(names: Iterable[str]) -> List[str]:
    return [name for name in names if name in STREAM_NAMES]


@dataclass
class SweepRunner:
    """Caches simulation runs so each config sweep shares its references.

    **Cache key contract.**  A run is identified by
    ``(workload, defense, tmro_ns)``; the runner's own ``system``,
    ``n_requests`` and ``seed`` are fixed per instance and therefore not
    part of the key — never mutate them after the first ``run()``.
    ``defense`` is a frozen dataclass (or None), so value-equal configs
    share an entry.  :meth:`speedup` looks its baseline up through the
    same cache under ``(workload, baseline, None)``: the baseline leg
    always runs *without* a tMRO override, so a ``tmro_ns`` sweep shares
    one baseline entry per workload rather than one per point.

    The cache is unbounded by design — a full experiment sweep touches a
    few hundred configurations at most, and entries must stay alive for
    the whole sweep because later figures re-request earlier baselines.
    Long-lived callers (e.g. ``repro bench``) can inspect growth via
    :meth:`cache_stats` and drop everything with :meth:`clear_cache`.
    """

    system: SystemConfig = field(default_factory=SystemConfig)
    n_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    _cache: Dict[tuple, SimResult] = field(default_factory=dict)
    _hits: int = 0
    _misses: int = 0

    def run(
        self,
        workload: str,
        defense: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
    ) -> SimResult:
        key = (workload, defense, tmro_ns)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = simulate_workload(
            workload,
            defense=defense,
            system=self.system,
            n_requests_per_core=self.n_requests,
            tmro_ns=tmro_ns,
            seed=self.seed,
        )
        self._cache[key] = result
        return result

    def speedup(
        self,
        workload: str,
        defense: Optional[DefenseConfig],
        baseline: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
    ) -> float:
        result = self.run(workload, defense, tmro_ns)
        reference = self.run(workload, baseline)
        return normalized_weighted_speedup(result, reference)

    def cache_stats(self) -> CacheStats:
        """Current hit/miss counters and entry count of the run cache."""
        return CacheStats(
            hits=self._hits, misses=self._misses, size=len(self._cache)
        )

    def clear_cache(self) -> None:
        """Drop every cached run and reset the counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0


def category_geomeans(
    per_workload: Dict[str, float], names: Sequence[str]
) -> Dict[str, float]:
    """Append SPEC/STREAM geometric means the way the figures report."""
    spec = [per_workload[n] for n in spec_of(names) if n in per_workload]
    stream = [per_workload[n] for n in stream_of(names) if n in per_workload]
    out = dict(per_workload)
    if spec:
        out["SPEC (GMean)"] = geomean(spec)
    if stream:
        out["STREAM (GMean)"] = geomean(stream)
    return out
