"""Figure 4: reduction in tolerated threshold (T*) vs tMRO.

Reports the measured characterization (re-derived from Luo et al.'s
Table 8) next to the Conservative Linear Model's prediction; the CLM
must always be at or below the measured T* (it never under-estimates
damage).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.analysis import (
    express_relative_threshold_clm,
    express_relative_threshold_measured,
)
from ..core.charge import ALPHA_SHORT
from ..data.rowpress import FIG4_TMRO_THRESHOLD


def run(
    tmros_ns: Sequence[float] | None = None, alpha: float = ALPHA_SHORT
) -> List[Dict[str, float]]:
    """Rows of (tMRO, measured T*, CLM T*)."""
    if tmros_ns is None:
        tmros_ns = [point[0] for point in FIG4_TMRO_THRESHOLD]
    rows = []
    for tmro in tmros_ns:
        rows.append(
            {
                "tmro_ns": tmro,
                "relative_threshold_measured": (
                    express_relative_threshold_measured(tmro)
                ),
                "relative_threshold_clm": express_relative_threshold_clm(
                    tmro, alpha
                ),
            }
        )
    return rows


def main() -> None:
    print("tMRO(ns)  T*(measured)  T*(CLM a=0.35)")
    for row in run():
        print(
            f"{row['tmro_ns']:8.0f}  "
            f"{row['relative_threshold_measured']:12.3f}  "
            f"{row['relative_threshold_clm']:14.3f}"
        )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


def _summarize(rows):
    by_tmro = {row["tmro_ns"]: row for row in rows}
    return {
        "t_star_ratio_tmro36": by_tmro[36.0]["relative_threshold_measured"],
        "clm_t_star_ratio_tmro36": by_tmro[36.0]["relative_threshold_clm"],
    }


@register(
    name="fig4",
    title="Reduction in tolerated threshold (T*) vs tMRO",
    paper_ref="Figure 4",
    tags=("figure", "analytic", "paper"),
    cost=0.1,
    summarize=_summarize,
)
def _experiment(ctx: RunContext):
    return run()
