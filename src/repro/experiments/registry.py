"""Experiment registry: every figure/table experiment self-registers.

Each experiment module declares its experiments with the
:func:`register` decorator::

    @register(
        name="fig13",
        title="Scheme comparison per tracker at alpha = 1",
        paper_ref="Section VI-D, Figure 13",
        tags=("figure", "simulation", "paper"),
        cost=40.0,
    )
    def _fig13(ctx: RunContext):
        return run(ctx.sweep_runner(), quick=ctx.quick)

The registry is the single source of truth that
:mod:`repro.experiments.runner`, :mod:`repro.experiments.orchestrator`
and the ``repro run`` / ``repro list-experiments`` CLI commands all
derive their experiment lists from, so ordering can never drift between
them.

``cost`` is a relative wall-clock estimate (arbitrary units; analytic
experiments ~0, full workload sweeps ~100).  The orchestrator schedules
costliest-first so the longest experiments never end up serialized at
the tail of a parallel run.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, fields
from types import ModuleType
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .common import DEFAULT_REQUESTS, SweepRunner

#: Tag carried by every experiment that belongs to the paper's
#: evaluation proper (``run_all`` runs exactly these); ablations carry
#: the ``ablation`` tag instead.
PAPER_TAG = "paper"


@dataclass
class RunContext:
    """Options shared by every experiment in one orchestrated run.

    The context is cheap, picklable state (``quick``, ``n_requests``,
    ``seed``); the :class:`~repro.experiments.common.SweepRunner` it
    hands out is created lazily and shared by every experiment executed
    against the same context, so serial runs reuse cached baselines
    exactly like the original ``run_all`` did.
    """

    quick: bool = True
    n_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    #: Worker processes for intra-experiment sweep fan-out
    #: (:meth:`~repro.experiments.common.SweepRunner.run_many`).  Not
    #: part of :meth:`options` — parallelism never changes results, so
    #: it must not change cache keys; it is also dropped on pickling
    #: because orchestrator pool workers are daemonic and cannot fork
    #: their own sweep pools.
    sim_jobs: int = 1
    _runner: Optional[SweepRunner] = field(
        default=None, repr=False, compare=False
    )

    def sweep_runner(self) -> SweepRunner:
        """The shared (lazily created) simulation sweep runner."""
        if self._runner is None:
            self._runner = SweepRunner(
                n_requests=self.n_requests,
                seed=self.seed,
                jobs=self.sim_jobs,
            )
        return self._runner

    def options(self) -> Dict[str, Any]:
        """The picklable option dict this context was built from."""
        return {
            "quick": self.quick,
            "n_requests": self.n_requests,
            "seed": self.seed,
        }

    def __getstate__(self) -> Dict[str, Any]:
        return self.options()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        allowed = {f.name for f in fields(self)}
        for key, value in state.items():
            if key in allowed:
                setattr(self, key, value)
        # Worker-side fan-out stays serial: pool workers are daemonic.
        self.sim_jobs = 1
        self._runner = None


@dataclass(frozen=True)
class Experiment:
    """One registered figure/table experiment."""

    name: str
    fn: Callable[[RunContext], Any]
    title: str
    paper_ref: str
    tags: Tuple[str, ...]
    #: Relative wall-clock estimate used for costliest-first scheduling.
    cost: float
    #: Dotted module the experiment lives in (``repro.experiments.fig13``).
    module: str
    #: Optional reduction of the raw result to headline scalar metrics.
    summarize: Optional[Callable[[Any], Dict[str, float]]] = None
    #: Paper-quoted values for (a subset of) the summarized metrics,
    #: used by the orchestrator's paper-vs-measured report.
    paper_values: Mapping[str, float] = field(default_factory=dict)

    def run(self, ctx: RunContext) -> Any:
        return self.fn(ctx)

    def summary_of(self, result: Any) -> Dict[str, float]:
        """Headline metrics of ``result`` ({} when none are defined)."""
        if self.summarize is None:
            return {}
        return {key: float(value)
                for key, value in self.summarize(result).items()}


_REGISTRY: Dict[str, Experiment] = {}


def register(
    name: str,
    title: str,
    paper_ref: str,
    tags: Sequence[str] = (),
    cost: float = 1.0,
    summarize: Optional[Callable[[Any], Dict[str, float]]] = None,
    paper_values: Optional[Mapping[str, float]] = None,
) -> Callable[[Callable[[RunContext], Any]], Callable[[RunContext], Any]]:
    """Decorator registering ``fn`` as the experiment ``name``.

    Registration happens at import time of the experiment module, so
    importing :mod:`repro.experiments` populates the whole registry in a
    deterministic order.  Duplicate names are a programming error.
    """

    def decorator(fn: Callable[[RunContext], Any]) -> Callable[[RunContext], Any]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = Experiment(
            name=name,
            fn=fn,
            title=title,
            paper_ref=paper_ref,
            tags=tuple(tags),
            cost=float(cost),
            module=fn.__module__,
            summarize=summarize,
            paper_values=dict(paper_values or {}),
        )
        return fn

    return decorator


def ensure_loaded() -> None:
    """Import the experiment package so every module has registered.

    Safe to call repeatedly; needed by worker processes under spawn
    start methods and by callers that import :mod:`registry` directly.
    """
    importlib.import_module("repro.experiments")


def all_experiments() -> List[Experiment]:
    """Every registered experiment, in registration order."""
    ensure_loaded()
    return list(_REGISTRY.values())


def names() -> List[str]:
    """Registered experiment names, in registration order."""
    return [exp.name for exp in all_experiments()]


def get(name: str) -> Experiment:
    """Look up one experiment; raises KeyError with the known names."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {name!r}; choose from: {known}"
        ) from None


def select(
    only: Optional[Iterable[str]] = None,
    tags: Optional[Iterable[str]] = None,
) -> List[Experiment]:
    """Experiments filtered by name and/or tag, registration order.

    ``only`` entries may be experiment names *or* tags (so
    ``--only simulation`` selects every simulation experiment); unknown
    entries raise KeyError.  ``tags`` keeps experiments carrying at
    least one of the given tags.
    """
    experiments = all_experiments()
    if tags is not None:
        wanted = set(tags)
        experiments = [e for e in experiments if wanted & set(e.tags)]
    if only is None:
        return experiments
    requested = list(only)
    known_names = {e.name for e in experiments}
    known_tags = {tag for e in experiments for tag in e.tags}
    for entry in requested:
        if entry not in known_names and entry not in known_tags:
            known = ", ".join(sorted(known_names | known_tags))
            raise KeyError(
                f"unknown experiment or tag {entry!r}; "
                f"choose from: {known}"
            )
    chosen = set(requested)
    return [
        e for e in experiments
        if e.name in chosen or chosen & set(e.tags)
    ]


def modules(experiments: Optional[Sequence[Experiment]] = None) -> List[ModuleType]:
    """Unique experiment modules, in registry order.

    This is what ``runner.main`` iterates, so its printed module order
    is derived from — and can never drift from — ``run_all``'s order.
    """
    if experiments is None:
        experiments = all_experiments()
    seen: Dict[str, ModuleType] = {}
    for exp in experiments:
        if exp.module not in seen:
            seen[exp.module] = importlib.import_module(exp.module)
    return list(seen.values())
