"""Figure 14: relative activations, demand vs mitigative.

Averages over the workload set, normalized to the unprotected baseline's
total activations — the paper's breakdown showing ExPress's +56% demand
activations against ImPress-P's near-zero overhead.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.config import DefenseConfig
from ..sim.metrics import relative_acts
from .common import SweepRunner, workload_set

TRACKERS = ("graphene", "para")
SCHEMES = ("no-rp", "express", "impress-p")


def run(
    runner: Optional[SweepRunner] = None,
    trh: float = 4000.0,
    alpha: float = 1.0,
    quick: bool = True,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """{tracker: {scheme: {"demand"|"mitigative": mean relative ACTs}}}."""
    runner = runner or SweepRunner()
    names = workload_set(quick)
    defenses = {
        (tracker, scheme): DefenseConfig(
            tracker=tracker, scheme=scheme, trh=trh, alpha=alpha
        )
        for tracker in TRACKERS
        for scheme in SCHEMES
    }
    # Batch the whole (workload x defense) grid plus the shared
    # unprotected baseline; the loops below only see cache hits.
    runner.run_many(
        [(name, None) for name in names]
        + [(name, defense) for name in names
           for defense in defenses.values()]
    )
    output: Dict[str, Dict[str, Dict[str, float]]] = {}
    for tracker in TRACKERS:
        output[tracker] = {}
        for scheme in SCHEMES:
            defense = defenses[tracker, scheme]
            demand_total = 0.0
            mitigative_total = 0.0
            for name in names:
                unprotected = runner.run(name, None)
                ratios = relative_acts(runner.run(name, defense), unprotected)
                demand_total += ratios["demand"]
                mitigative_total += ratios["mitigative"]
            output[tracker][scheme] = {
                "demand": demand_total / len(names),
                "mitigative": mitigative_total / len(names),
            }
    return output


def main(quick: bool = True) -> None:
    data = run(quick=quick)
    for tracker, schemes in data.items():
        for scheme, acts in schemes.items():
            print(
                f"{tracker:>8} {scheme:>10}  demand {acts['demand']:.3f}  "
                f"mitigative {acts['mitigative']:.3f}"
            )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig14",
    title="Relative activations: demand vs mitigative",
    paper_ref="Figure 14 (Section VI-D)",
    tags=("figure", "simulation", "paper"),
    cost=40.0,
    summarize=lambda data: {
        "graphene_express_demand": data["graphene"]["express"]["demand"],
        "graphene_impress_p_demand": data["graphene"]["impress-p"]["demand"],
    },
    paper_values={
        "graphene_express_demand": 1.56,
        "graphene_impress_p_demand": 1.0,
    },
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
