"""Ablation studies for the design choices DESIGN.md calls out.

* CLM alpha: how the conservativeness knob trades threshold for entries.
* RFMTH: Mithril entry count and MINT tolerated threshold vs RFM rate.
* MOP burst length: STREAM's tMRO sensitivity vs lines-per-row-group.
* Page policy: the idle-precharge timer's effect on the tMRO sweep.
* DSAC weighting: underestimation factor vs row-open time (Section VII).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.analysis import impress_n_effective_threshold
from ..sim.config import SystemConfig
from ..sim.metrics import normalized_weighted_speedup
from ..sim.system import simulate_workload
from ..trackers.dsac import underestimation_factor
from ..trackers.mint import mint_tolerated_threshold
from ..trackers.sizing import graphene_storage, mithril_entries
from .common import SweepRunner

ALPHAS: Sequence[float] = (0.35, 0.48, 0.7, 1.0)
RFMTHS: Sequence[int] = (40, 60, 80, 120)
MOP_BURSTS: Sequence[int] = (4, 8, 16)


def alpha_ablation(trh: float = 4000.0) -> List[Dict[str, float]]:
    """Threshold and storage cost of ExPress/ImPress-N as alpha varies."""
    rows = []
    for alpha in ALPHAS:
        storage = graphene_storage(trh, 1.0 + alpha)
        rows.append(
            {
                "alpha": alpha,
                "relative_threshold": (
                    impress_n_effective_threshold(trh, alpha) / trh
                ),
                "graphene_entries": storage.entries_per_bank,
                "graphene_kib": storage.kib_per_channel,
            }
        )
    return rows


def rfmth_ablation(trh: float = 4000.0) -> List[Dict[str, float]]:
    """In-DRAM tracker provisioning vs RFM rate."""
    rows = []
    for rfmth in RFMTHS:
        rows.append(
            {
                "rfmth": rfmth,
                "mithril_entries": mithril_entries(trh, rfmth),
                "mint_tolerated_trh": mint_tolerated_threshold(rfmth),
            }
        )
    return rows


def mop_burst_ablation(
    n_requests: int = 800,
    tmro_ns: float = 66.0,
    workload: str = "copy",
) -> List[Dict[str, float]]:
    """STREAM's tMRO sensitivity as MOP lines-per-row-group varies.

    Longer bursts mean more row-buffer hits to lose, so the slowdown at
    a fixed low tMRO grows with the burst length.
    """
    rows = []
    for burst in MOP_BURSTS:
        system = SystemConfig(
            lines_per_row_group=burst, mop_burst_lines=burst
        )
        base = simulate_workload(
            workload, system=system, n_requests_per_core=n_requests
        )
        limited = simulate_workload(
            workload, system=system, n_requests_per_core=n_requests,
            tmro_ns=tmro_ns,
        )
        rows.append(
            {
                "lines_per_group": burst,
                "baseline_hit_rate": base.hit_rate,
                "perf_at_tmro": normalized_weighted_speedup(limited, base),
            }
        )
    return rows


def page_policy_ablation(
    n_requests: int = 800, workload: str = "mcf"
) -> List[Dict[str, float]]:
    """Idle-precharge timer vs conflict rate and tMRO benefit."""
    rows = []
    for idle_close in (None, 150, 400):
        system = SystemConfig(idle_close_cycles=idle_close)
        base = simulate_workload(
            workload, system=system, n_requests_per_core=n_requests
        )
        limited = simulate_workload(
            workload, system=system, n_requests_per_core=n_requests,
            tmro_ns=36.0,
        )
        total = base.row_hits + base.row_misses + base.row_conflicts
        rows.append(
            {
                "idle_close_cycles": -1 if idle_close is None else idle_close,
                "conflict_rate": base.row_conflicts / total,
                "perf_at_tmro36": normalized_weighted_speedup(limited, base),
            }
        )
    return rows


def dsac_ablation(
    tons_trc: Sequence[float] = (8.0, 32.0, 128.0, 256.0, 1024.0),
) -> List[Dict[str, float]]:
    """Section VII: DSAC's underestimation grows with row-open time."""
    return [
        {"ton_trc": ton, "underestimation": underestimation_factor(ton)}
        for ton in tons_trc
    ]


def run(
    runner: Optional[SweepRunner] = None, quick: bool = True
) -> Dict[str, List[Dict[str, float]]]:
    n_requests = 600 if quick else 1500
    return {
        "alpha": alpha_ablation(),
        "rfmth": rfmth_ablation(),
        "mop_burst": mop_burst_ablation(n_requests=n_requests),
        "page_policy": page_policy_ablation(n_requests=n_requests),
        "dsac": dsac_ablation(),
    }


def main(quick: bool = True) -> None:
    results = run(quick=quick)
    for study, rows in results.items():
        print(f"[{study}]")
        for row in rows:
            print("  " + "  ".join(f"{k}={v:.3f}" if isinstance(v, float)
                                   else f"{k}={v}" for k, v in row.items()))


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="ablation",
    title="Design-choice ablations (alpha, RFMTH, MOP, page policy, DSAC)",
    paper_ref="Sections V-VII",
    tags=("simulation", "ablation"),
    cost=10.0,
    summarize=lambda data: {
        "dsac_underestimation_ton256": next(
            row["underestimation"]
            for row in data["dsac"] if row["ton_trc"] == 256.0
        ),
    },
)
def _experiment(ctx: RunContext):
    return run(quick=ctx.quick)
