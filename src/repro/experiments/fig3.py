"""Figure 3: performance impact of limiting row-open time to tMRO.

Sweeps tMRO over the paper's values for every SPEC and STREAM workload
(no tracker — this isolates the page-policy effect) and reports
performance normalized to the unlimited baseline.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .common import SweepRunner, category_geomeans, workload_set

TMRO_VALUES_NS: Sequence[float] = (36.0, 66.0, 96.0, 186.0, 336.0, 636.0)


def run(
    runner: Optional[SweepRunner] = None,
    tmros_ns: Sequence[float] = TMRO_VALUES_NS,
    quick: bool = False,
) -> Dict[float, Dict[str, float]]:
    """Returns {tmro_ns: {workload or geomean row: normalized perf}}."""
    runner = runner or SweepRunner()
    names = workload_set(quick)
    # Fan out every (workload, tmro) point plus the shared unlimited
    # baseline each speedup() divides by.
    runner.run_many(
        [(name, None, None) for name in names]
        + [(name, None, tmro) for tmro in tmros_ns for name in names]
    )
    series: Dict[float, Dict[str, float]] = {}
    for tmro in tmros_ns:
        per_workload = {
            name: runner.speedup(name, None, tmro_ns=tmro) for name in names
        }
        series[tmro] = category_geomeans(per_workload, names)
    return series


def main(quick: bool = True) -> None:
    series = run(quick=quick)
    workloads = list(next(iter(series.values())))
    header = ["workload"] + [f"tMRO={t:.0f}ns" for t in series]
    print("  ".join(header))
    for name in workloads:
        row = [f"{series[t][name]:.3f}" for t in series]
        print(f"{name:>16}  " + "  ".join(row))


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig3",
    title="Performance impact of limiting row-open time to tMRO",
    paper_ref="Figure 3",
    tags=("figure", "simulation", "paper"),
    cost=40.0,
    summarize=lambda series: {
        "spec_gmean_tmro36": series[36.0]["SPEC (GMean)"],
        "stream_gmean_tmro36": series[36.0]["STREAM (GMean)"],
        "stream_gmean_tmro636": series[636.0]["STREAM (GMean)"],
    },
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
