"""Figure 16 (Appendix A): ExPress vs ImPress-N at alpha = 0.35 and 1.

(a) Graphene and (b) PARA with both schemes at both alphas, normalized
to the tracker's No-RP baseline; (c) MINT with ImPress-N at RFM-60
(alpha = 0.35) and RFM-40 (alpha = 1) against the RFM-80 reference.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..scenarios.grid import ScenarioGrid
from ..sim.config import DefenseConfig
from .common import SweepRunner, category_geomeans, workload_set

MC_TRACKERS = ("graphene", "para")
ALPHAS: Sequence[float] = (0.35, 1.0)


def run(
    runner: Optional[SweepRunner] = None,
    trh: float = 4000.0,
    mint_trh: float = 1600.0,
    quick: bool = True,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """{tracker: {"scheme a=x": {workload/geomean: perf vs No-RP}}}."""
    runner = runner or SweepRunner()
    names = workload_set(quick)
    # Build each grid config once; the run_many batch and the assembly
    # loops below share the same objects, so the fan-out and the cache
    # lookups can never drift apart.
    baselines = {
        tracker: DefenseConfig(tracker=tracker, scheme="no-rp", trh=trh)
        for tracker in MC_TRACKERS
    }
    baselines["mint"] = DefenseConfig(
        tracker="mint", scheme="no-rp", trh=mint_trh
    )
    mc_defenses = {
        (tracker, scheme, alpha): DefenseConfig(
            tracker=tracker, scheme=scheme, trh=trh, alpha=alpha
        )
        for tracker in MC_TRACKERS
        for scheme in ("express", "impress-n")
        for alpha in ALPHAS
    }
    mint_defenses = {
        alpha: DefenseConfig(
            tracker="mint", scheme="impress-n", trh=mint_trh, alpha=alpha
        )
        for alpha in ALPHAS
    }
    # One scenario grid covers the figure: every workload crossed with
    # every baseline, MC-tracker, and MINT defense configuration.
    scenario_grid = ScenarioGrid.cross(
        workloads=tuple(names),
        defenses=tuple(baselines.values())
        + tuple(mc_defenses.values())
        + tuple(mint_defenses.values()),
        system=runner.system,
        name="fig16",
    )
    runner.run_many(scenario_grid.expand())
    output: Dict[str, Dict[str, Dict[str, float]]] = {}
    for tracker in MC_TRACKERS:
        baseline = baselines[tracker]
        output[tracker] = {}
        for scheme in ("express", "impress-n"):
            for alpha in ALPHAS:
                defense = mc_defenses[tracker, scheme, alpha]
                per = {
                    name: runner.speedup(name, defense, baseline)
                    for name in names
                }
                label = f"{scheme} a={alpha}"
                output[tracker][label] = category_geomeans(per, names)
    baseline = baselines["mint"]
    output["mint"] = {}
    for alpha in ALPHAS:
        defense = mint_defenses[alpha]
        rfmth = defense.effective_rfmth()
        per = {
            name: runner.speedup(name, defense, baseline) for name in names
        }
        output["mint"][f"impress-n a={alpha} (RFM-{rfmth})"] = (
            category_geomeans(per, names)
        )
    return output


def main(quick: bool = True) -> None:
    data = run(quick=quick)
    for tracker, variants in data.items():
        for label, rows in variants.items():
            spec = rows.get("SPEC (GMean)", float("nan"))
            stream = rows.get("STREAM (GMean)", float("nan"))
            print(
                f"{tracker:>8} {label:>28}  SPEC {spec:.3f}  "
                f"STREAM {stream:.3f}"
            )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig16",
    title="ExPress vs ImPress-N at alpha = 0.35 and 1",
    paper_ref="Figure 16 (Appendix A)",
    tags=("figure", "simulation", "paper"),
    cost=70.0,
    summarize=lambda data: {
        "graphene_impress_n_a1_stream": (
            data["graphene"]["impress-n a=1.0"]["STREAM (GMean)"]
        ),
        "graphene_express_a1_stream": (
            data["graphene"]["express a=1.0"]["STREAM (GMean)"]
        ),
    },
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
