"""Figure 12: ImPress-P effective threshold vs fractional counter bits.

Two independent routes to the same curve:

* the closed-form loss 1 - 2**-b (0.5 at b = 0, Section VI-B);
* the security verifier, which searches adversarial tON values for the
  worst truncation loss of a b-bit counter.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.analysis import impress_p_relative_threshold
from ..dram.timing import default_cycle_timings
from ..security.verifier import effective_threshold


def run(trh: float = 4000.0, max_bits: int = 7) -> List[Dict[str, float]]:
    """Rows of (bits, analytic T*, verifier-measured T*)."""
    timings = default_cycle_timings()
    rows = []
    for bits in range(max_bits + 1):
        report = effective_threshold(
            "impress-p", trh, alpha=1.0, timings=timings, fraction_bits=bits
        )
        rows.append(
            {
                "fraction_bits": bits,
                "relative_threshold_analytic": (
                    impress_p_relative_threshold(bits)
                ),
                "relative_threshold_verified": report.relative_threshold,
            }
        )
    return rows


def main() -> None:
    print("bits  T*(analytic)  T*(verified)")
    for row in run():
        print(
            f"{row['fraction_bits']:4d}  "
            f"{row['relative_threshold_analytic']:12.4f}  "
            f"{row['relative_threshold_verified']:12.4f}"
        )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


def _summarize(rows):
    by_bits = {row["fraction_bits"]: row for row in rows}
    return {
        "t_star_ratio_b0": by_bits[0]["relative_threshold_verified"],
        "t_star_ratio_b7": by_bits[7]["relative_threshold_verified"],
    }


@register(
    name="fig12",
    title="ImPress-P effective threshold vs fractional counter bits",
    paper_ref="Figure 12 (Section VI-B)",
    tags=("figure", "analytic", "paper"),
    cost=1.0,
    summarize=_summarize,
    paper_values={"t_star_ratio_b0": 0.5, "t_star_ratio_b7": 1.0},
)
def _experiment(ctx: RunContext):
    return run()
