"""Parallel experiment orchestration over the registry.

The :class:`Orchestrator` takes the registered experiments (see
:mod:`repro.experiments.registry`), schedules them costliest-first
across a :mod:`multiprocessing` pool, streams per-experiment progress,
and writes three kinds of artifacts under a results directory:

* ``<name>.json`` — one artifact per experiment: config, raw result
  (JSON-converted) and headline summary metrics;
* ``summary.json`` — the whole run: options, per-experiment status and
  timings, and the paper-vs-measured rows;
* ``REPORT.md`` — the human-readable paper-vs-measured report.

Results are also cached in the content-addressed
:class:`~repro.results.store.ResultStore` shared with the scenario
artifacts (``<results-dir>/store/``): each experiment's outcome is a
blob keyed by :func:`experiment_recipe` — the experiment name plus the
full option dict — with the experiment name as an index alias, so
re-runs with the same options skip completed work and runs with
different options coexist instead of overwriting.  ``force=True``
bypasses (and refreshes) the cache.

Every experiment in this codebase is a deterministic function of its
options (all randomness is seeded per bank from ``seed``), so a
parallel run produces identical ``result`` and ``summary`` fields to a
serial one — the pool only changes wall-clock time (and the timing
metadata recorded alongside), never results.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from . import registry
from .registry import Experiment, RunContext
from ..results.store import (
    ResultStore,
    atomic_write_text,
    content_key,
    store_for,
)

#: Schema version embedded in artifacts and cache recipes; bump when
#: the layout changes so stale cache entries are never misread (the
#: version is part of the cache recipe, so a bump changes every key).
ARTIFACT_VERSION = 1


def experiment_recipe(
    name: str, options: Mapping[str, Any]
) -> Dict[str, Any]:
    """The explicit dict one experiment outcome is content-addressed by."""
    return {
        "kind": "experiment",
        "artifact_version": ARTIFACT_VERSION,
        "experiment": name,
        "options": dict(options),
    }


def jsonify(obj: Any) -> Any:
    """Convert an experiment result into JSON-serializable form.

    Experiment results are nested dicts/lists/tuples of numbers whose
    *keys* are sometimes floats (tMRO values, thresholds) or even
    ``inf`` (fig 5's no-tMRO point), which JSON cannot represent as
    keys.  All keys become strings; non-finite floats become strings so
    the output is strict JSON.  The conversion is deterministic, so
    equality of jsonified results is equality of experiments.
    """
    if isinstance(obj, Mapping):
        return {str(key): jsonify(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(value) for value in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return str(obj)
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    return str(obj)


@dataclass
class Outcome:
    """What happened to one scheduled experiment."""

    name: str
    cached: bool
    duration_s: float
    summary: Dict[str, float]
    result: Any
    config_hash: str

    def artifact(self, options: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            "version": ARTIFACT_VERSION,
            "experiment": self.name,
            "config": dict(options),
            "config_hash": self.config_hash,
            "cached": self.cached,
            "duration_s": round(self.duration_s, 4),
            "summary": self.summary,
            "result": self.result,
        }


@dataclass
class RunReport:
    """Aggregate outcome of one orchestrated run."""

    options: Dict[str, Any]
    jobs: int
    outcomes: List[Outcome]
    wall_s: float
    results_dir: Path

    @property
    def by_name(self) -> Dict[str, Outcome]:
        return {outcome.name: outcome for outcome in self.outcomes}

    def comparison_rows(self) -> List[Dict[str, Any]]:
        """Paper-vs-measured rows for every summarized metric."""
        rows: List[Dict[str, Any]] = []
        for outcome in self.outcomes:
            paper_values = registry.get(outcome.name).paper_values
            for metric, measured in outcome.summary.items():
                paper = paper_values.get(metric)
                rows.append(
                    {
                        "experiment": outcome.name,
                        "metric": metric,
                        "paper": paper,
                        "measured": measured,
                        "ratio": (
                            measured / paper
                            if paper not in (None, 0) else None
                        ),
                    }
                )
        return rows

    def to_markdown(self) -> str:
        """The REPORT.md body."""
        ran = sum(1 for o in self.outcomes if not o.cached)
        lines = [
            "# Experiment run report",
            "",
            f"- experiments: {len(self.outcomes)} "
            f"({ran} executed, {len(self.outcomes) - ran} from cache)",
            f"- jobs: {self.jobs}",
            f"- options: `{json.dumps(self.options, sort_keys=True)}`",
            f"- wall clock: {self.wall_s:.1f} s",
            "",
            "## Paper vs measured",
            "",
            "| experiment | metric | paper | measured | measured/paper |",
            "|---|---|---:|---:|---:|",
        ]
        for row in self.comparison_rows():
            paper = "—" if row["paper"] is None else f"{row['paper']:.4g}"
            ratio = "—" if row["ratio"] is None else f"{row['ratio']:.3f}"
            lines.append(
                f"| {row['experiment']} | {row['metric']} "
                f"| {paper} | {row['measured']:.4g} | {ratio} |"
            )
        lines += [
            "",
            "## Timings",
            "",
            "| experiment | source | seconds |",
            "|---|---|---:|",
        ]
        for outcome in sorted(
            self.outcomes, key=lambda o: o.duration_s, reverse=True
        ):
            source = "cache" if outcome.cached else "run"
            lines.append(
                f"| {outcome.name} | {source} | {outcome.duration_s:.2f} |"
            )
        return "\n".join(lines) + "\n"


class OrchestratorError(RuntimeError):
    """One or more experiments failed; carries their tracebacks."""


#: Per-worker-process RunContext cache so experiments executed in the
#: same worker share one SweepRunner (and therefore cached baseline
#: simulations), mirroring what the serial path does.
_WORKER_CONTEXTS: Dict[Tuple[Tuple[str, Any], ...], RunContext] = {}


def _context_for(options: Mapping[str, Any]) -> RunContext:
    key = tuple(sorted(options.items()))
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        ctx = RunContext(**dict(options))
        _WORKER_CONTEXTS[key] = ctx
    return ctx


def _execute(
    payload: Tuple[str, Dict[str, Any]],
    ctx: Optional[RunContext] = None,
) -> Dict[str, Any]:
    """Run one experiment in the current process (pool worker entry).

    Pool workers pass no ``ctx`` and share one per-process context via
    :data:`_WORKER_CONTEXTS`; the serial path passes a local context so
    nothing outlives the run.  Returns a plain dict (never raises) so
    pool communication stays picklable even when the experiment itself
    fails.
    """
    name, options = payload
    registry.ensure_loaded()
    try:
        experiment = registry.get(name)
        started = time.perf_counter()
        result = experiment.run(
            ctx if ctx is not None else _context_for(options)
        )
        duration = time.perf_counter() - started
        return {
            "name": name,
            "duration_s": duration,
            "summary": experiment.summary_of(result),
            "result": jsonify(result),
        }
    except Exception:
        return {"name": name, "error": traceback.format_exc()}


@dataclass
class Orchestrator:
    """Schedules registered experiments across a process pool.

    Parameters mirror the ``repro run`` CLI: ``jobs`` processes
    (1 = in-process serial), ``force`` bypasses the result cache, and
    ``options`` (quick/n_requests/seed) defines the run configuration
    every experiment receives — and therefore the cache key.
    """

    results_dir: Path = Path("results")
    jobs: int = 1
    force: bool = False
    quick: bool = True
    n_requests: int = 800
    seed: int = 0
    #: Worker processes each experiment may use for intra-experiment
    #: sweep fan-out (``SweepRunner.run_many``).  Only effective on the
    #: serial (``jobs == 1``) path: orchestrator pool workers are
    #: daemonic, so their sweep runners always fall back to serial.
    #: Not part of :meth:`options` — parallelism never changes results,
    #: so it must not change cache keys.
    sim_jobs: int = 1
    progress: Optional[Callable[[str], None]] = None
    #: Outcomes of the last ``run`` call, for programmatic access.
    last_report: Optional[RunReport] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be positive")
        if self.sim_jobs < 1:
            raise ValueError("sim_jobs must be positive")
        self.results_dir = Path(self.results_dir)

    # -- paths and cache -------------------------------------------------

    @property
    def store(self) -> ResultStore:
        """The content-addressed cache (shared with scenario artifacts)."""
        return store_for(self.results_dir)

    def options(self) -> Dict[str, Any]:
        return {
            "quick": self.quick,
            "n_requests": self.n_requests,
            "seed": self.seed,
        }

    def _load_cached(self, experiment: Experiment) -> Optional[Outcome]:
        data = self.store.fetch(
            experiment_recipe(experiment.name, self.options())
        )
        if data is None:
            return None
        config_hash = data.get("config_hash")
        if config_hash is None:
            return None
        return Outcome(
            name=experiment.name,
            cached=True,
            duration_s=float(data.get("duration_s", 0.0)),
            summary=dict(data.get("summary", {})),
            result=data.get("result"),
            config_hash=config_hash,
        )

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # -- execution -------------------------------------------------------

    def run(self, only: Optional[Iterable[str]] = None) -> RunReport:
        """Run the selected experiments; returns the aggregate report.

        ``only`` accepts experiment names and/or tags (``None`` runs
        everything registered).  Scheduling is costliest-first so the
        longest sweeps start immediately and short analytic experiments
        fill the remaining pool slots.
        """
        selected = registry.select(only=only)
        if not selected:
            raise ValueError("no experiments selected")
        scheduled = sorted(selected, key=lambda e: e.cost, reverse=True)
        started = time.perf_counter()

        outcomes: Dict[str, Outcome] = {}
        to_run: List[Experiment] = []
        for experiment in scheduled:
            cached = None if self.force else self._load_cached(experiment)
            if cached is not None:
                outcomes[experiment.name] = cached
                self._emit(f"[cache] {experiment.name}")
            else:
                to_run.append(experiment)

        failures: Dict[str, str] = {}
        payloads = [(e.name, self.options()) for e in to_run]
        for raw in self._execute_all(payloads):
            name = raw["name"]
            if "error" in raw:
                failures[name] = raw["error"]
                self._emit(f"[fail]  {name}")
                continue
            outcomes[name] = Outcome(
                name=name,
                cached=False,
                duration_s=raw["duration_s"],
                summary=raw["summary"],
                result=raw["result"],
                # One hashing scheme throughout: the artifact's
                # config_hash IS its store content key.
                config_hash=content_key(
                    experiment_recipe(name, self.options())
                ),
            )
            self._emit(f"[done]  {name}  {raw['duration_s']:.2f}s")

        if failures:
            # Don't throw away what did complete: cache the successes
            # so the retry only recomputes the failed experiments.
            for outcome in outcomes.values():
                self._write_cache_entry(outcome, self.options())
            details = "\n\n".join(
                f"--- {name} ---\n{tb}" for name, tb in failures.items()
            )
            raise OrchestratorError(
                f"{len(failures)} experiment(s) failed: "
                f"{', '.join(sorted(failures))}\n{details}"
            )

        # Report experiments in registry order regardless of scheduling.
        ordered = [outcomes[e.name] for e in selected]
        report = RunReport(
            options=self.options(),
            jobs=self.jobs,
            outcomes=ordered,
            wall_s=time.perf_counter() - started,
            results_dir=self.results_dir,
        )
        self._write_artifacts(report)
        self.last_report = report
        return report

    def _execute_all(
        self, payloads: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> Iterable[Dict[str, Any]]:
        """Yield raw execution results as they complete."""
        if not payloads:
            return
        if self.jobs == 1 or len(payloads) == 1:
            # All payloads of a run share one option dict; a run-local
            # context gives them the serial baseline sharing of the old
            # run_all without pinning anything in module globals.
            ctx = RunContext(sim_jobs=self.sim_jobs, **payloads[0][1])
            try:
                for payload in payloads:
                    self._emit(f"[start] {payload[0]}")
                    yield _execute(payload, ctx)
            finally:
                if ctx._runner is not None:
                    ctx._runner.close_pool()
            return
        # Workers pick payloads up asynchronously, so "[start]" would
        # misstate what is actually running; report the schedule order
        # instead and let "[done]"/"[fail]" carry the real timing.
        for name, _ in payloads:
            self._emit(f"[queued] {name}")
        processes = min(self.jobs, len(payloads))
        with multiprocessing.Pool(processes=processes) as pool:
            for raw in pool.imap_unordered(_execute, payloads):
                yield raw

    # -- artifacts -------------------------------------------------------

    def _write_cache_entry(
        self, outcome: Outcome, options: Mapping[str, Any]
    ) -> None:
        # A fresh outcome overwrites any stale blob (the --force path);
        # a cache-sourced outcome only dedups against the existing one.
        self.store.put(
            experiment_recipe(outcome.name, options),
            outcome.artifact(options),
            name=outcome.name,
            kind="experiment",
            overwrite=not outcome.cached,
        )

    def _write_artifacts(self, report: RunReport) -> None:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        for outcome in report.outcomes:
            artifact = outcome.artifact(report.options)
            artifact_path = self.results_dir / f"{outcome.name}.json"
            atomic_write_text(artifact_path, json.dumps(artifact, indent=2))
            self._write_cache_entry(outcome, report.options)
        summary = {
            "version": ARTIFACT_VERSION,
            "options": report.options,
            "jobs": report.jobs,
            "wall_s": round(report.wall_s, 3),
            "experiments": {
                outcome.name: {
                    "cached": outcome.cached,
                    "duration_s": round(outcome.duration_s, 4),
                    "summary": outcome.summary,
                }
                for outcome in report.outcomes
            },
            "comparison": report.comparison_rows(),
        }
        atomic_write_text(
            self.results_dir / "summary.json", json.dumps(summary, indent=2)
        )
        atomic_write_text(
            self.results_dir / "REPORT.md", report.to_markdown()
        )
