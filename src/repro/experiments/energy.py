"""Section VI-E: activation and DRAM energy overheads.

Reports relative DRAM energy of ExPress and ImPress-P against No-RP for
Graphene and PARA, plus the baseline's activation share of total energy
(~11% in the paper's model).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.config import DefenseConfig
from .common import SweepRunner, workload_set

TRACKERS = ("graphene", "para")
SCHEMES = ("no-rp", "express", "impress-p")


def run(
    runner: Optional[SweepRunner] = None,
    trh: float = 4000.0,
    alpha: float = 1.0,
    quick: bool = True,
) -> Dict[str, Dict[str, float]]:
    """{tracker: {scheme: mean relative DRAM energy vs unprotected}}
    plus an ``activation_share`` entry for the unprotected baseline."""
    runner = runner or SweepRunner()
    names = workload_set(quick)
    # Batch the (tracker x scheme) grid and the unprotected baseline.
    runner.run_many(
        [(name, None) for name in names]
        + [
            (
                name,
                DefenseConfig(
                    tracker=tracker, scheme=scheme, trh=trh, alpha=alpha
                ),
            )
            for tracker in TRACKERS
            for scheme in SCHEMES
            for name in names
        ]
    )
    output: Dict[str, Dict[str, float]] = {}
    shares = []
    for name in names:
        baseline = runner.run(name, None)
        shares.append(baseline.energy().activation_share)
    output["baseline"] = {
        "activation_share": sum(shares) / len(shares)
    }
    for tracker in TRACKERS:
        output[tracker] = {}
        for scheme in SCHEMES:
            defense = DefenseConfig(
                tracker=tracker, scheme=scheme, trh=trh, alpha=alpha
            )
            ratios = []
            for name in names:
                unprotected = runner.run(name, None)
                protected = runner.run(name, defense)
                ratios.append(
                    protected.energy().total / unprotected.energy().total
                )
            output[tracker][scheme] = sum(ratios) / len(ratios)
    return output


def main(quick: bool = True) -> None:
    data = run(quick=quick)
    print(
        "baseline activation share: "
        f"{data['baseline']['activation_share']:.3f}"
    )
    for tracker in TRACKERS:
        for scheme, ratio in data[tracker].items():
            print(f"{tracker:>8} {scheme:>10}  energy x{ratio:.3f}")


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="energy",
    title="Activation and DRAM energy overheads",
    paper_ref="Section VI-E",
    tags=("simulation", "paper"),
    cost=40.0,
    summarize=lambda data: {
        "activation_share": data["baseline"]["activation_share"],
        "graphene_express_energy": data["graphene"]["express"],
        "graphene_impress_p_energy": data["graphene"]["impress-p"],
    },
    paper_values={"activation_share": 0.11},
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
