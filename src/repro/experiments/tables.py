"""Tables I, II and III, plus the Section VI-C storage comparison."""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List

from ..core.analysis import (
    impress_n_effective_threshold,
    impress_p_relative_threshold,
)
from ..dram.timing import ddr5_timings
from ..sim.config import SystemConfig
from ..trackers.sizing import (
    graphene_storage,
    impress_n_storage_bytes,
    impress_p_timer_bits,
    mint_storage_bytes,
    mithril_entries,
    mithril_storage,
)


def table1() -> Dict[str, float]:
    """DRAM timing parameters (nanoseconds)."""
    params = ddr5_timings()
    return {
        "tACT": params.tACT,
        "tPRE": params.tPRE,
        "tRAS": params.tRAS,
        "tRC": params.tRC,
        "tREFW": params.tREFW,
        "tREFI": params.tREFI,
        "tRFC": params.tRFC,
        "tONMax": params.tONMAX,
    }


def table2() -> Dict[str, object]:
    """Baseline system configuration."""
    config = SystemConfig()
    return {
        "cores": config.n_cores,
        "mlp": config.mlp,
        "channels_simulated": config.channels,
        "banks_per_channel": config.banks_per_channel,
        "memory_mapping": (
            f"Minimalist Open Page ({config.lines_per_row_group} lines)"
        ),
    }


def table3(trh: float = 4000.0) -> List[Dict[str, object]]:
    """Qualitative + quantitative comparison of the three schemes.

    The threshold and storage columns are computed from the library's
    own models rather than restated, so the table doubles as a
    consistency check of Eq 5, Fig 12 and the sizing rules.
    """
    rows = []
    for scheme, alpha in (("express", 1.0), ("impress-n", 1.0),
                          ("impress-p", None)):
        if scheme == "impress-p":
            relative_threshold = impress_p_relative_threshold(7)
            entries_factor = 1.0
            storage = graphene_storage(trh, 1.0, fraction_bits=7)
            wider = True
            tmro_limit = False
            in_dram_ok = True
            device_dependent = False
        else:
            relative_threshold = (
                impress_n_effective_threshold(trh, alpha) / trh
            )
            entries_factor = 1.0 + alpha
            storage = graphene_storage(trh, entries_factor, fraction_bits=0)
            wider = False
            tmro_limit = scheme == "express"
            in_dram_ok = scheme != "express"
            device_dependent = True
        baseline = graphene_storage(trh, 1.0, fraction_bits=0)
        rows.append(
            {
                "scheme": scheme,
                "limits_ton": tmro_limit,
                "relative_threshold": relative_threshold,
                "entries_factor": entries_factor,
                "wider_entries": wider,
                "in_dram_compatible": in_dram_ok,
                "device_dependent": device_dependent,
                "graphene_storage_factor": (
                    storage.total_bits_per_channel
                    / baseline.total_bits_per_channel
                ),
            }
        )
    return rows


def storage_comparison(trh: float = 4000.0, rfmth: int = 80) -> Dict[str, object]:
    """Section VI-C / Appendix A storage numbers."""
    graphene_base = graphene_storage(trh, 1.0)
    return {
        "graphene_entries": {
            "no-rp": graphene_storage(trh, 1.0).entries_per_bank,
            "express_a1": graphene_storage(trh, 2.0).entries_per_bank,
            "impress-n_a035": graphene_storage(trh, 1.35).entries_per_bank,
            "impress-n_a1": graphene_storage(trh, 2.0).entries_per_bank,
            "impress-p": graphene_storage(
                trh, 1.0, fraction_bits=7
            ).entries_per_bank,
        },
        "graphene_kib_per_channel": {
            "no-rp": graphene_base.kib_per_channel,
            "impress-n_a1": graphene_storage(trh, 2.0).kib_per_channel,
            "impress-p": graphene_storage(trh, 1.0, 7).kib_per_channel,
        },
        "graphene_impress_p_storage_factor": (
            graphene_storage(trh, 1.0, 7).total_bits_per_channel
            / graphene_base.total_bits_per_channel
        ),
        "mithril_entries": {
            "no-rp": mithril_entries(trh, rfmth),
            "impress-n_a035": mithril_entries(trh / 1.35, rfmth),
            "impress-n_a1": mithril_entries(trh / 2.0, rfmth),
            "impress-p": mithril_storage(trh, rfmth, 1.0, 7).entries_per_bank,
        },
        "mint_bytes": {
            "no-rp": mint_storage_bytes(0),
            "impress-p": mint_storage_bytes(7),
        },
        "impress_n_bytes_per_bank": impress_n_storage_bytes(),
        "impress_p_timer_bits": impress_p_timer_bits(),
    }


def main() -> None:
    print("Table I:", table1())
    print("Table II:", table2())
    for row in table3():
        print("Table III:", row)
    print("Storage:", storage_comparison())


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="table1",
    title="DRAM timing parameters",
    paper_ref="Table I",
    tags=("table", "analytic", "paper"),
    cost=0.1,
    summarize=lambda data: {"tRC_ns": data["tRC"], "tRAS_ns": data["tRAS"]},
    paper_values={"tRC_ns": 48.0, "tRAS_ns": 36.0},
)
def _table1(ctx: RunContext):
    return table1()


@register(
    name="table2",
    title="Baseline system configuration",
    paper_ref="Table II",
    tags=("table", "analytic", "paper"),
    cost=0.1,
    summarize=lambda data: {"cores": data["cores"]},
    paper_values={"cores": 8},
)
def _table2(ctx: RunContext):
    return table2()


@register(
    name="table3",
    title="Qualitative + quantitative comparison of the three schemes",
    paper_ref="Table III",
    tags=("table", "analytic", "paper"),
    cost=0.1,
    summarize=lambda rows: {
        "impress_p_relative_t_star": next(
            row["relative_threshold"]
            for row in rows if row["scheme"] == "impress-p"
        ),
        "impress_p_storage_factor": next(
            row["graphene_storage_factor"]
            for row in rows if row["scheme"] == "impress-p"
        ),
    },
    paper_values={
        "impress_p_relative_t_star": 1.0,
        "impress_p_storage_factor": 1.25,
    },
)
def _table3(ctx: RunContext):
    return table3()


@register(
    name="storage",
    title="Tracker storage comparison",
    paper_ref="Section VI-C / Appendix A",
    tags=("table", "analytic", "paper"),
    cost=0.1,
    summarize=lambda data: {
        "graphene_entries_no_rp": data["graphene_entries"]["no-rp"],
        "mithril_entries_no_rp": data["mithril_entries"]["no-rp"],
    },
    paper_values={
        "graphene_entries_no_rp": 448,
        "mithril_entries_no_rp": 383,
    },
)
def _storage(ctx: RunContext):
    return storage_comparison()
