"""Run every experiment and print the paper-vs-measured summary."""

from __future__ import annotations

from typing import Dict

from . import (
    energy,
    fig3,
    fig4,
    fig5,
    fig6_7_8,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig18_19,
    tables,
)
from .common import SweepRunner


def run_all(quick: bool = True, n_requests: int = 1200) -> Dict[str, object]:
    """Execute every table/figure experiment; returns raw results."""
    runner = SweepRunner(n_requests=n_requests)
    results: Dict[str, object] = {}
    results["table1"] = tables.table1()
    results["table2"] = tables.table2()
    results["table3"] = tables.table3()
    results["storage"] = tables.storage_comparison()
    results["fig4"] = fig4.run()
    results["fig6"] = fig6_7_8.fig6_series()
    results["fig7"] = fig6_7_8.fig7_series()
    results["fig8"] = fig6_7_8.fig8_series()
    results["fig12"] = fig12.run()
    results["fig18"] = fig18_19.fig18_series()
    results["fig19"] = fig18_19.fig19_series()
    results["fig3"] = fig3.run(runner, quick=quick)
    results["fig5"] = fig5.run(runner, quick=quick)
    results["fig13"] = fig13.run(runner, quick=quick)
    results["fig14"] = fig14.run(runner, quick=quick)
    results["fig15"] = fig15.run(runner, quick=quick)
    results["fig16"] = fig16.run(runner, quick=quick)
    results["energy"] = energy.run(runner, quick=quick)
    return results


def main() -> None:
    for module in (
        tables, fig4, fig6_7_8, fig12, fig18_19,
        fig3, fig5, fig13, fig14, fig15, fig16, energy,
    ):
        print(f"== {module.__name__.rsplit('.', 1)[-1]} ==")
        module.main()
        print()


if __name__ == "__main__":
    main()
