"""Thin shim over the experiment registry.

Both :func:`run_all` and :func:`main` derive their experiment list from
:mod:`repro.experiments.registry`, so the set and order of experiments
can never drift between the two (the old hand-maintained module lists
did).  For parallel execution, caching and artifacts use
:class:`repro.experiments.orchestrator.Orchestrator` (or the
``repro run`` CLI) instead.
"""

from __future__ import annotations

from typing import Dict

from . import registry
from .registry import PAPER_TAG, RunContext


def run_all(quick: bool = True, n_requests: int = 1200) -> Dict[str, object]:
    """Execute every paper experiment serially; returns raw results.

    Results are keyed by registry name (``table1`` ... ``fig19``) in
    registry order; the shared :class:`RunContext` reuses baseline
    simulations across experiments exactly like the orchestrator's
    serial path.
    """
    ctx = RunContext(quick=quick, n_requests=n_requests)
    return {
        exp.name: exp.run(ctx)
        for exp in registry.select(tags=(PAPER_TAG,))
    }


def main() -> None:
    """Print every paper experiment module's report, registry order."""
    for module in registry.modules(registry.select(tags=(PAPER_TAG,))):
        print(f"== {module.__name__.rsplit('.', 1)[-1]} ==")
        module.main()
        print()


if __name__ == "__main__":
    main()
