"""Figure 15: scalability to lower Rowhammer thresholds.

Graphene and PARA at TRH = 4K / 2K / 1K for No-RP, ExPress and
ImPress-P, normalized to the unprotected baseline (geomean over the
workload set).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.config import DefenseConfig
from ..sim.metrics import geomean
from .common import SweepRunner, workload_set

TRACKERS = ("graphene", "para")
SCHEMES = ("no-rp", "express", "impress-p")
THRESHOLDS: Sequence[float] = (4000.0, 2000.0, 1000.0)


def run(
    runner: Optional[SweepRunner] = None,
    alpha: float = 1.0,
    quick: bool = True,
    thresholds: Sequence[float] = THRESHOLDS,
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """{tracker: {scheme: {trh: geomean perf vs unprotected}}}."""
    runner = runner or SweepRunner()
    names = workload_set(quick)
    defenses = {
        (tracker, scheme, trh): DefenseConfig(
            tracker=tracker, scheme=scheme, trh=trh, alpha=alpha
        )
        for tracker in TRACKERS
        for scheme in SCHEMES
        for trh in thresholds
    }
    # Fan out the full threshold grid plus the unprotected baseline.
    runner.run_many(
        [(name, None) for name in names]
        + [(name, defense) for name in names
           for defense in defenses.values()]
    )
    output: Dict[str, Dict[str, Dict[float, float]]] = {}
    for tracker in TRACKERS:
        output[tracker] = {}
        for scheme in SCHEMES:
            series: Dict[float, float] = {}
            for trh in thresholds:
                defense = defenses[tracker, scheme, trh]
                series[trh] = geomean(
                    [runner.speedup(name, defense, None) for name in names]
                )
            output[tracker][scheme] = series
    return output


def main(quick: bool = True) -> None:
    data = run(quick=quick)
    for tracker, schemes in data.items():
        for scheme, series in schemes.items():
            cells = "  ".join(
                f"TRH={int(t)}:{v:.3f}" for t, v in series.items()
            )
            print(f"{tracker:>8} {scheme:>10}  {cells}")


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig15",
    title="Scalability to lower Rowhammer thresholds",
    paper_ref="Figure 15 (Section VI-D)",
    tags=("figure", "simulation", "paper"),
    cost=100.0,
    summarize=lambda data: {
        "graphene_impress_p_trh1000": data["graphene"]["impress-p"][1000.0],
        "graphene_no_rp_trh1000": data["graphene"]["no-rp"][1000.0],
    },
)
def _experiment(ctx: RunContext):
    return run(ctx.sweep_runner(), quick=ctx.quick)
