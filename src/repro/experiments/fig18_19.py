"""Figures 18 and 19 (Appendix B): slowdown under the K-pattern attack.

Analytic curves for ImPress-P with Graphene (flat 8/TRH regardless of
the Row-Press amount K, Eq 6-9) and PARA (Eq 10, whose overhead falls
once p*(K+1) saturates at 1), for TRH in {1000, 2000, 4000}.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.analysis import graphene_attack_slowdown, para_attack_slowdown

THRESHOLDS: Sequence[float] = (1000.0, 2000.0, 4000.0)
K_VALUES: Sequence[int] = tuple(range(0, 101, 5))


def fig18_series(
    thresholds: Sequence[float] = THRESHOLDS,
    k_values: Sequence[int] = K_VALUES,
) -> Dict[float, List[Dict[str, float]]]:
    """Graphene slowdown (percent) vs K for each threshold."""
    return {
        trh: [
            {"k": float(k),
             "slowdown_pct": 100.0 * graphene_attack_slowdown(trh, k)}
            for k in k_values
        ]
        for trh in thresholds
    }


def fig19_series(
    thresholds: Sequence[float] = THRESHOLDS,
    k_values: Sequence[int] = K_VALUES,
) -> Dict[float, List[Dict[str, float]]]:
    """PARA slowdown (percent) vs K for each threshold."""
    return {
        trh: [
            {"k": float(k),
             "slowdown_pct": 100.0 * para_attack_slowdown(trh, k)}
            for k in k_values
        ]
        for trh in thresholds
    }


def main() -> None:
    fig18 = fig18_series()
    for trh, rows in fig18.items():
        print(
            f"Fig18 Graphene TRH={int(trh)}: "
            f"{rows[0]['slowdown_pct']:.2f}% flat over K"
        )
    fig19 = fig19_series()
    for trh, rows in fig19.items():
        peak = max(row["slowdown_pct"] for row in rows)
        tail = rows[-1]["slowdown_pct"]
        print(
            f"Fig19 PARA TRH={int(trh)}: peak {peak:.2f}%, "
            f"K=100 tail {tail:.2f}%"
        )


if __name__ == "__main__":
    main()

# -- registry ----------------------------------------------------------

from .registry import RunContext, register  # noqa: E402


@register(
    name="fig18",
    title="Graphene slowdown under the K-pattern attack",
    paper_ref="Figure 18 (Appendix B, Eq 6-9)",
    tags=("figure", "analytic", "paper"),
    cost=0.1,
    summarize=lambda series: {
        "slowdown_pct_trh4000": series[4000.0][0]["slowdown_pct"],
    },
    paper_values={"slowdown_pct_trh4000": 0.2},
)
def _fig18(ctx: RunContext):
    return fig18_series()


@register(
    name="fig19",
    title="PARA slowdown under the K-pattern attack",
    paper_ref="Figure 19 (Appendix B, Eq 10)",
    tags=("figure", "analytic", "paper"),
    cost=0.1,
    summarize=lambda series: {
        "peak_slowdown_pct_trh1000": max(
            row["slowdown_pct"] for row in series[1000.0]
        ),
    },
    paper_values={"peak_slowdown_pct_trh1000": 400.0 / 21.0},
)
def _fig19(ctx: RunContext):
    return fig19_series()
