"""One module per table/figure of the paper's evaluation.

Each module exposes ``run(...)`` returning the figure's data series and
``main()`` printing them, and registers its experiments with
:mod:`repro.experiments.registry` (name, tags, cost estimate).  The
registry is what :mod:`repro.experiments.runner` (serial) and
:mod:`repro.experiments.orchestrator` (parallel, cached, artifact-
writing) drive; see ``docs/adding_an_experiment.md`` for the API.
"""

from . import (  # noqa: F401
    ablation,
    common,
    energy,
    fig3,
    fig4,
    fig5,
    fig6_7_8,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig18_19,
    orchestrator,
    registry,
    runner,
    tables,
)

__all__ = [
    "ablation",
    "common",
    "energy",
    "fig3",
    "fig4",
    "fig5",
    "fig6_7_8",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig18_19",
    "orchestrator",
    "registry",
    "runner",
    "tables",
]
