"""One module per table/figure of the paper's evaluation.

See DESIGN.md's experiment index for the full mapping.  Each module
exposes ``run(...)`` returning the figure's data series and ``main()``
printing them; :mod:`repro.experiments.runner` drives them all.
"""

from . import (  # noqa: F401
    ablation,
    common,
    energy,
    fig3,
    fig4,
    fig5,
    fig6_7_8,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig18_19,
    runner,
    tables,
)

__all__ = [
    "ablation",
    "common",
    "energy",
    "fig3",
    "fig4",
    "fig5",
    "fig6_7_8",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig18_19",
    "runner",
    "tables",
]
