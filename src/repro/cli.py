"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``run`` — orchestrate registered experiments across a process pool
  (``--jobs N --only fig13,table2 --force``), with disk-backed result
  caching and JSON/Markdown artifacts under ``results/``.
* ``list-experiments`` — show every registered experiment with its
  tags, cost estimate and paper reference.
* ``experiment <name>`` — run one experiment module (fig3, fig13,
  tables, ablation, ...) and print its series.
* ``verify`` — report the effective threshold of every scheme under
  adversarial Row-Press patterns.
* ``size`` — print tracker provisioning for a threshold/alpha.
* ``simulate`` — run one workload (a profile, a STREAM mix, or a named
  scenario preset) against one defense configuration.
* ``scenario`` — the declarative scenario subsystem
  (see docs/scenarios.md): ``list`` the presets, ``run`` one preset
  with security metrics and a content-addressed results artifact,
  ``sweep`` a preset grid across defense configurations, ``report``
  a metric diff between two result stores/commits.
* ``bench`` — time the canonical simulations and write a tracked
  ``BENCH_<n>.json`` throughput artifact (see docs/performance.md).
* ``fuzz`` — seeded random walk over the scenario space under the
  online invariant monitor in both engines, shrinking any failure to a
  minimal stored reproducer (see docs/fuzzing.md); ``--replay KEY``
  re-runs a stored reproducer.
* ``results`` — inspect and maintain the content-addressed result
  store: ``list`` the recorded artifacts (name, key, kind, timestamp,
  git SHA); ``gc`` deletes blobs unreferenced by the index plus stale
  crash-debris temp files (``--dry-run`` reports reclaimable bytes,
  ``--json`` emits the machine-readable report).
* ``sweep`` — execute a batch of scenario presets as content-addressed
  tasks, serially or (``--distributed``) through the fault-tolerant
  work queue with external ``repro worker`` processes (see
  docs/distributed.md).
* ``worker`` — the distributed-sweep worker loop: claim leased tasks
  from a queue directory, simulate with periodic engine checkpoints,
  put result blobs into the shared store.
* ``queue`` — inspect the distributed work queue: ``status`` prints a
  census (pending/claimed/done/poisoned, live leases, poison
  tracebacks; ``--json`` for machines); ``drain`` cancels all
  unfinished work.
* ``serve`` — long-lived request daemon over the queue + store stack:
  write-ahead journaled crash recovery, admission control with
  Retry-After shedding, graceful SIGTERM drain (see docs/serving.md).
* ``request`` — submit one scenario request to a running daemon with
  deadline/retry/backoff semantics and idempotent resubmission.
* ``check`` — AST-based contract checker: mechanizes the repo's
  determinism, atomicity, and hot-path invariants (canonical-key
  hygiene, rename finality, atomic writes, ``__slots__``,
  allocation-free kernels, seeded RNGs, SimResult parity) with
  ``--json``/``--rule``/``--changed`` modes and counted inline
  suppressions (see docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from . import experiments
from .experiments import registry
from .experiments.orchestrator import Orchestrator
from .core.analysis import impress_n_effective_threshold
from .dram.timing import default_cycle_timings
from .security.verifier import effective_threshold
from .sim.config import DefenseConfig, SCHEME_NAMES, TRACKER_NAMES
from .sim.system import ENGINE_NAMES, simulate_workload
from .trackers.para import para_probability
from .trackers.sizing import graphene_entries, graphene_storage, mithril_entries

EXPERIMENT_MODULES = {
    "tables": experiments.tables,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "fig6_7_8": experiments.fig6_7_8,
    "fig12": experiments.fig12,
    "fig13": experiments.fig13,
    "fig14": experiments.fig14,
    "fig15": experiments.fig15,
    "fig16": experiments.fig16,
    "fig18_19": experiments.fig18_19,
    "energy": experiments.energy,
    "ablation": experiments.ablation,
    "all": experiments.runner,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENT_MODULES.get(args.name)
    if module is None:
        known = ", ".join(sorted(EXPERIMENT_MODULES))
        print(f"unknown experiment {args.name!r}; choose from: {known}")
        return 2
    module.main()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
    try:
        orchestrator = Orchestrator(
            results_dir=Path(args.results_dir),
            jobs=args.jobs,
            force=args.force,
            quick=not args.full,
            n_requests=args.requests,
            seed=args.seed,
            sim_jobs=args.sim_jobs,
            progress=print,
        )
        report = orchestrator.run(only=only)
    except (KeyError, ValueError) as exc:
        print(exc.args[0])
        return 2
    executed = sum(1 for o in report.outcomes if not o.cached)
    print(
        f"\n{len(report.outcomes)} experiment(s) "
        f"({executed} executed, {len(report.outcomes) - executed} cached) "
        f"in {report.wall_s:.1f}s with {report.jobs} job(s)"
    )
    print(f"artifacts: {report.results_dir}/  "
          f"report: {report.results_dir}/REPORT.md")
    for row in report.comparison_rows():
        if row["paper"] is None:
            continue
        print(
            f"  {row['experiment']:>8} {row['metric']:<28} "
            f"paper {row['paper']:>8.4g}  measured {row['measured']:>8.4g}"
        )
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    print(f"{'name':<10} {'cost':>6}  {'tags':<28} {'paper ref':<28} title")
    for exp in registry.all_experiments():
        tags = ",".join(exp.tags)
        print(
            f"{exp.name:<10} {exp.cost:>6.1f}  {tags:<28} "
            f"{exp.paper_ref:<28} {exp.title}"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    timings = default_cycle_timings()
    tmro = timings.tRAS + timings.tRC
    print(f"Effective thresholds at TRH={args.trh:.0f}, "
          f"alpha={args.alpha}:")
    for scheme in SCHEME_NAMES:
        report = effective_threshold(
            scheme,
            args.trh,
            alpha=args.alpha,
            timings=timings,
            tmro_cycles=tmro if scheme == "express" else None,
            fraction_bits=args.fraction_bits,
        )
        print(f"  {scheme:>10}: T* = {report.effective_threshold:8.1f} "
              f"({report.relative_threshold:.3f} TRH), "
              f"worst: {report.worst_pattern}")
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    trh, alpha = args.trh, args.alpha
    reduced = impress_n_effective_threshold(trh, alpha)
    print(f"Provisioning for TRH={trh:.0f} (alpha={alpha}):")
    for scheme, target in (("no-rp / impress-p", trh),
                           ("express / impress-n", reduced)):
        print(f"  {scheme:>20}: target T={target:.0f}, "
              f"graphene {graphene_entries(target)} entries, "
              f"mithril {mithril_entries(target)} entries, "
              f"PARA p=1/{1 / para_probability(target):.0f}")
    precise = graphene_storage(trh, 1.0, fraction_bits=7)
    base = graphene_storage(trh, 1.0)
    print(f"  ImPress-P storage factor: "
          f"{precise.total_bits_per_channel / base.total_bits_per_channel:.2f}x")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import command_from_args

    return command_from_args(args)


def _cmd_check(args: argparse.Namespace) -> int:
    from .staticcheck.cli import command_from_args

    return command_from_args(args)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .scenarios import is_scenario

    if is_scenario(args.workload):
        # Scenario names delegate to the scenario runner: the preset
        # carries its own topology and defense, so the tracker/scheme
        # flags do not apply.
        return _print_scenario_run(
            args.workload, n_requests=args.requests, seed=0, jobs=1
        )
    defense = DefenseConfig(
        tracker=args.tracker, scheme=args.scheme, trh=args.trh,
        alpha=args.alpha,
    )
    result = simulate_workload(
        args.workload, defense, n_requests_per_core=args.requests,
        engine=args.engine,
    )
    print(f"{args.workload} + {args.tracker}/{args.scheme}: "
          f"{result.elapsed_cycles} cycles, hit rate {result.hit_rate:.3f}")
    print(f"  demand ACTs {result.counts.demand_acts}, "
          f"mitigative ACTs {result.counts.mitigative_acts}, "
          f"REF {result.counts.refreshes}, RFM {result.counts.rfms}")
    energy = result.energy()
    print(f"  energy {energy.total:.0f} units "
          f"(ACT share {energy.activation_share:.2f})")
    return 0


# -- scenario subsystem ---------------------------------------------------


def _print_scenario_metrics(payload: dict) -> None:
    """Shared pretty-printer for a scenario result payload."""
    metrics = payload["metrics"]
    print(f"  cores:   {payload['cores']}")
    print(f"  defense: {payload['defense']}")
    slowdown = metrics.get("victim_slowdown")
    act_rate = metrics.get("attacker_act_rate_per_cycle")
    acts_per_sec = metrics.get("attacker_acts_per_sec")
    if slowdown is not None:
        print(f"  victim slowdown: {slowdown:.3f}x vs idle-attacker "
              f"baseline")
    if act_rate is not None:
        print(f"  attacker ACT rate: {act_rate:.5f} ACTs/cycle "
              f"({acts_per_sec:,.0f} ACTs/s)")
    if slowdown is None and act_rate is None:
        print("  benign scenario: no attacker cores")
    print(f"  elapsed {metrics['elapsed_cycles']} cycles, "
          f"hit rate {metrics['hit_rate']:.3f}, "
          f"demand ACTs {metrics['demand_acts']}, "
          f"mitigative ACTs {metrics['mitigative_acts']}")


def _print_scenario_run(
    name: str,
    n_requests: int,
    seed: int,
    jobs: int,
    results_dir: Optional[str] = None,
    force: bool = False,
) -> int:
    from .scenarios import run_scenario, run_scenario_cached

    try:
        if results_dir is None:
            report = run_scenario(
                name, n_requests=n_requests, seed=seed, jobs=jobs
            )
            payload, cached = report.to_json(), False
        else:
            payload, path, cached = run_scenario_cached(
                name, Path(results_dir), n_requests=n_requests,
                seed=seed, jobs=jobs, force=force,
            )
    except KeyError as exc:
        print(exc.args[0])
        return 2
    state = "cached" if cached else "simulated"
    print(f"scenario {name} ({state}):")
    _print_scenario_metrics(payload)
    if results_dir is not None:
        print(f"  artifact: {path}")
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from .scenarios import SCENARIOS

    print(f"{'name':<26} {'defense':<22} cores")
    for spec in SCENARIOS.values():
        print(f"{spec.name:<26} {spec.defense_summary():<22} "
              f"{spec.core_summary()}")
        if args.verbose and spec.description:
            print(f"{'':<26} {spec.description}")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    return _print_scenario_run(
        args.name,
        n_requests=args.requests,
        seed=args.seed,
        jobs=args.jobs,
        results_dir=args.results_dir,
        force=args.force,
    )


def _cmd_scenario_report(args: argparse.Namespace) -> int:
    from .results.report import run_report

    return run_report(Path(args.dir_a), Path(args.dir_b))


def _cmd_scenario_sweep(args: argparse.Namespace) -> int:
    from .experiments.common import SweepRunner
    from .scenarios import get_scenario
    from .sim.config import DefenseConfig as Defense
    from .sim.metrics import attacker_act_rate, victim_slowdown

    try:
        specs = [get_scenario(name) for name in args.names]
    except KeyError as exc:
        print(exc.args[0])
        return 2
    systems = {spec.system for spec in specs}
    if len(systems) > 1:
        print("error: swept scenarios must share one topology "
              "(the sweep cache is keyed per topology)")
        return 2
    if args.trackers or args.schemes:
        trackers = [
            t.strip() for t in (args.trackers or "graphene").split(",")
            if t.strip()
        ]
        schemes = [
            s.strip() for s in (args.schemes or "impress-p").split(",")
            if s.strip()
        ]
        try:
            defenses = [
                Defense(tracker=tracker, scheme=scheme)
                for tracker in trackers
                for scheme in schemes
            ]
        except ValueError as exc:
            print(f"error: {exc.args[0]}")
            return 2
        points = [
            spec.with_defense(defense)
            for spec in specs
            for defense in defenses
        ]
    else:
        points = list(specs)
    runner = SweepRunner(
        system=specs[0].system, n_requests=args.requests, seed=args.seed,
        jobs=args.jobs,
    )
    # One batch covers every scenario and every baseline leg; with
    # --jobs > 1 the whole grid fans out across the process pool.
    baselines = [point.baseline() for point in points]
    runner.run_many(points + baselines, jobs=args.jobs)
    runner.close_pool()
    print(f"{'scenario':<26} {'defense':<22} {'slowdown':>9} "
          f"{'ACTs/cycle':>11}")
    for point, baseline in zip(points, baselines):
        result = runner.run(*point.sweep_point())
        base = runner.run(*baseline.sweep_point())
        attackers = point.attacker_cores()
        if attackers:
            slowdown = f"{victim_slowdown(result, base, attackers):9.3f}"
            rate = f"{attacker_act_rate(result, attackers):11.5f}"
        else:
            slowdown, rate = f"{'-':>9}", f"{'-':>11}"
        print(f"{point.name:<26} {point.defense_summary():<22} "
              f"{slowdown} {rate}")
    stats = runner.cache_stats()
    print(f"({len(points)} scenario points, {len(baselines)} baselines; "
          f"cache {stats.hits:.0f} hits / {stats.misses:.0f} misses)")
    return 0


# -- fuzzing and the result store -----------------------------------------


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .results.store import store_for
    from .scenarios.fuzz import (
        DEFAULT_FUZZ_REQUESTS,
        fuzz,
        replay_reproducer,
    )
    from .security import faults

    store = store_for(Path(args.results_dir))
    requests = (
        DEFAULT_FUZZ_REQUESTS if args.requests is None else args.requests
    )
    if args.replay is not None:
        try:
            spec, outcome = replay_reproducer(store, args.replay)
        except KeyError as exc:
            print(exc.args[0])
            return 2
        print(f"replayed {args.replay}: {spec.core_summary()} under "
              f"{spec.defense_summary()}")
        if outcome.ok:
            print("  no violations — the failure no longer reproduces")
            return 0
        for line in outcome.violations:
            print(f"  {line}")
        return 1
    if args.fault is not None:
        try:
            faults.inject(args.fault)
        except ValueError as exc:
            print(exc.args[0])
            return 2
    try:
        report = fuzz(
            seed=args.seed,
            budget=args.budget,
            n_requests=requests,
            store=store,
            progress=print,
        )
    finally:
        if args.fault is not None:
            faults.clear(args.fault)
    print(f"\n{report.candidates} candidate(s) at seed {report.seed}: "
          f"{len(report.failures)} failure(s)")
    for failure in report.failures:
        print(f"  [{'+'.join(failure.signature)}] "
              f"{failure.spec.core_summary()} under "
              f"{failure.spec.defense_summary()} "
              f"@ {failure.n_requests} requests -> {failure.store_key}")
    return 1 if report.failures else 0


def _cmd_results_list(args: argparse.Namespace) -> int:
    from .results.store import store_for

    store = store_for(Path(args.results_dir))
    entries = store.entries(name=args.name, kind=args.kind)
    if not entries:
        print(f"no matching result artifacts recorded under {store.root}")
        return 0
    print(f"{'name':<34} {'key':<18} {'kind':<18} "
          f"{'timestamp':<22} git")
    for entry in entries:
        print(f"{entry.get('name', '-'):<34} {entry['key']:<18} "
              f"{entry.get('kind', '-'):<18} "
              f"{entry.get('timestamp', '-'):<22} "
              f"{entry.get('git_sha', '-')}")
    return 0


def _cmd_results_gc(args: argparse.Namespace) -> int:
    from .results.store import store_for

    store = store_for(Path(args.results_dir))
    if not store.root.is_dir():
        print(f"no result store at {store.root}")
        return 0
    report = store.gc(
        dry_run=args.dry_run, tmp_grace_s=args.tmp_grace,
        blob_grace_s=args.blob_grace,
    )
    if args.json:
        import json

        print(json.dumps(report.to_json(), indent=2))
        return 0
    for line in report.summary_lines():
        print(line)
    return 0


# -- distributed sweeps ----------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .distrib.coordinator import (
        DistributedSweepError,
        run_distributed_sweep,
        run_serial_sweep,
        shard_points,
    )
    from .results.store import store_for
    from .scenarios import get_scenario

    try:
        specs = [get_scenario(name) for name in args.names]
    except KeyError as exc:
        print(exc.args[0])
        return 2
    recipes = shard_points(specs, args.requests, args.seed)
    store = store_for(Path(args.results_dir))
    stride = args.checkpoint_stride if args.checkpoint_stride > 0 else None
    workers = []
    try:
        if not args.distributed:
            outcome = run_serial_sweep(recipes, store)
        else:
            from .distrib.chaos import spawn_worker
            from .distrib.queue import FileWorkQueue

            queue_dir = Path(
                args.queue_dir
                if args.queue_dir is not None
                else Path(args.results_dir) / "queue"
            )
            queue = FileWorkQueue(queue_dir, lease_s=args.lease)
            for i in range(args.spawn_workers):
                workers.append(spawn_worker(
                    queue_dir, Path(args.results_dir), args.lease,
                    stride or 0,
                    log_path=queue_dir / f"worker-{i}.log",
                ))
            try:
                outcome = run_distributed_sweep(
                    recipes, queue, store,
                    serial_grace_s=args.serial_grace,
                    speculate_after_s=args.speculate_after,
                    timeout_s=args.timeout,
                    checkpoint_stride=stride,
                )
            except DistributedSweepError as exc:
                print(f"error: {exc}")
                return 1
    finally:
        for proc in workers:
            try:
                proc.wait(timeout=30.0)
            except Exception:
                proc.kill()
    print(f"{'scenario':<26} {'task/result key':<18} {'cycles':>12}")
    for spec, key, result in zip(
        specs, outcome.result_keys, outcome.results
    ):
        print(f"{spec.name:<26} {key:<18} {result.elapsed_cycles:>12,}")
    for line in outcome.summary_lines():
        print(line)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .distrib.queue import FileWorkQueue
    from .distrib.worker import install_shutdown_handler, run_worker
    from .results.store import store_for

    queue = FileWorkQueue(
        Path(args.queue_dir),
        lease_s=args.lease,
        max_attempts=args.max_attempts,
    )
    store = store_for(Path(args.results_dir))
    stride = args.checkpoint_stride if args.checkpoint_stride > 0 else None
    stop_event = install_shutdown_handler()
    try:
        summary = run_worker(
            queue, store,
            max_tasks=args.max_tasks,
            idle_exit_s=args.idle_exit,
            checkpoint_stride=stride,
            fault=args.fault,
            stop_event=stop_event,
        )
    except ValueError as exc:   # unknown --fault name
        print(f"error: {exc.args[0]}")
        return 2
    print(f"worker {summary.owner}: {summary.executed} task(s) executed "
          f"({summary.deduplicated} deduplicated), "
          f"{summary.failed} failed"
          + (f", {summary.released} released" if summary.released else "")
          + (" [graceful shutdown]" if summary.stopped else ""))
    return 1 if summary.failed else 0


# -- the serve daemon ------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .security import faults
    from .serve.server import ServeDaemon

    if args.fault is not None:
        try:
            faults.inject(args.fault)
        except ValueError as exc:
            print(f"error: {exc.args[0]}")
            return 2
    stride = args.checkpoint_stride if args.checkpoint_stride > 0 else None
    daemon = ServeDaemon(
        Path(args.results_dir),
        queue_dir=Path(args.queue_dir) if args.queue_dir else None,
        host=args.host,
        port=args.port,
        lease_s=args.lease,
        max_inflight=args.max_inflight,
        max_waiters=args.max_waiters,
        queue_watermark=args.queue_watermark,
        journal_watermark=args.journal_watermark,
        serial_grace_s=args.serial_grace,
        checkpoint_stride=stride,
        log=print,
    )
    replayed = daemon.start()
    host, port = daemon.address
    print(f"serving on http://{host}:{port} (pid {os.getpid()}, "
          f"{replayed} journal entr{'y' if replayed == 1 else 'ies'} "
          f"replayed); SIGTERM drains gracefully", flush=True)
    drained = daemon.run(drain_timeout_s=args.drain_timeout)
    return 0 if drained else 1


def _cmd_request(args: argparse.Namespace) -> int:
    from .serve.client import DeadlineExceeded, ServeClient, ServeError
    from .sim.stats import SimResult

    try:
        if args.host is not None:
            if not args.port:
                print("error: --host needs --port")
                return 2
            client = ServeClient(args.host, args.port)
        else:
            client = ServeClient.from_results_dir(Path(args.results_dir))
        outcome = client.request(
            {
                "scenario": args.name,
                "n_requests": args.requests,
                "seed": args.seed,
            },
            deadline_s=args.deadline,
            wait_s=args.wait,
        )
    except DeadlineExceeded as exc:
        print(f"error: {exc}")
        if exc.key:
            print("the daemon keeps working; rerun the same request "
                  "to pick the result up (resubmission is idempotent)")
        return 3
    except ServeError as exc:
        print(f"error: {exc}")
        return 2
    result = SimResult.from_json(outcome.payload)
    print(f"{args.name} -> key {outcome.key} ({outcome.source}, "
          f"{outcome.elapsed_s:.2f}s; {outcome.submits} submit(s), "
          f"{outcome.polls} poll(s), {outcome.retries} retr"
          f"{'y' if outcome.retries == 1 else 'ies'})")
    print(f"  elapsed {result.elapsed_cycles} cycles, "
          f"hit rate {result.hit_rate:.3f}")
    return 0


def _queue_at(queue_dir: str):
    from .distrib.queue import FileWorkQueue

    root = Path(queue_dir)
    if not root.is_dir():
        return None
    return FileWorkQueue(root)


def _cmd_queue_status(args: argparse.Namespace) -> int:
    queue = _queue_at(args.queue_dir)
    if queue is None:
        print(f"no queue directory at {args.queue_dir}")
        return 2
    status = queue.status()
    if args.json:
        import json

        print(json.dumps(status.to_json(), indent=2))
        return 0
    for line in status.summary_lines():
        print(line)
    return 0


def _cmd_queue_drain(args: argparse.Namespace) -> int:
    queue = _queue_at(args.queue_dir)
    if queue is None:
        print(f"no queue directory at {args.queue_dir}")
        return 2
    removed = queue.drain()
    print(f"drained: {removed['pending']} pending and "
          f"{removed['claimed']} claimed marker(s) removed "
          "(done/poison records kept)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="orchestrate registered experiments (parallel, cached)",
    )
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process)",
    )
    run.add_argument(
        "--sim-jobs", type=int, default=1,
        help="per-experiment sweep fan-out processes (effective with "
             "--jobs 1; see SweepRunner.run_many)",
    )
    run.add_argument(
        "--only", default=None,
        help="comma-separated experiment names and/or tags "
             "(e.g. fig13,table2 or simulation)",
    )
    run.add_argument(
        "--force", action="store_true",
        help="re-run even when a cached result exists",
    )
    run.add_argument(
        "--full", action="store_true",
        help="full 20-workload sweeps instead of the quick set",
    )
    run.add_argument(
        "--requests", type=int, default=800,
        help="requests per core for simulation experiments",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--results-dir", default="results",
        help="artifact/cache directory (default: results/)",
    )
    run.set_defaults(func=_cmd_run)

    list_experiments = sub.add_parser(
        "list-experiments", help="list every registered experiment"
    )
    list_experiments.set_defaults(func=_cmd_list_experiments)

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("name", help="fig3, fig13, tables, all, ...")
    experiment.set_defaults(func=_cmd_experiment)

    verify = sub.add_parser("verify", help="verify effective thresholds")
    verify.add_argument("--trh", type=float, default=4000.0)
    verify.add_argument("--alpha", type=float, default=1.0)
    verify.add_argument("--fraction-bits", type=int, default=7)
    verify.set_defaults(func=_cmd_verify)

    size = sub.add_parser("size", help="tracker provisioning")
    size.add_argument("--trh", type=float, default=4000.0)
    size.add_argument("--alpha", type=float, default=1.0)
    size.set_defaults(func=_cmd_size)

    from .bench import add_bench_arguments

    bench = sub.add_parser(
        "bench",
        help="time canonical simulations; write BENCH_<n>.json artifact",
    )
    add_bench_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    from .staticcheck.cli import add_check_arguments

    check = sub.add_parser(
        "check",
        help="AST contract checker: determinism/atomicity/hot-path rules",
    )
    add_check_arguments(check)
    check.set_defaults(func=_cmd_check)

    simulate = sub.add_parser(
        "simulate",
        help="run one workload: a profile (mcf), a STREAM mix "
             "(add_copy), or a scenario preset (colocated_hammer_mcf)",
    )
    simulate.add_argument(
        "workload",
        help="profile, mix, or scenario name (see `repro scenario list`; "
             "scenario presets carry their own defense, so the flags "
             "below apply to profile/mix runs only)",
    )
    simulate.add_argument("--tracker", choices=TRACKER_NAMES,
                          default="graphene")
    simulate.add_argument("--scheme", choices=SCHEME_NAMES,
                          default="impress-p")
    simulate.add_argument("--trh", type=float, default=4000.0)
    simulate.add_argument("--alpha", type=float, default=1.0)
    simulate.add_argument("--requests", type=int, default=1000)
    simulate.add_argument(
        "--engine", choices=ENGINE_NAMES, default="fast",
        help="engine tier: the pinned reference loop, the fast event "
             "engine (default), or the NumPy batch tier (a single "
             "point degenerates to one fast run; requires numpy; "
             "scenario presets always use the fast engine)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    scenario = sub.add_parser(
        "scenario",
        help="declarative workload x attacker x defense scenarios",
    )
    scenario_sub = scenario.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_list = scenario_sub.add_parser(
        "list", help="list the registered scenario presets"
    )
    scenario_list.add_argument(
        "--verbose", action="store_true",
        help="include the one-line description of each preset",
    )
    scenario_list.set_defaults(func=_cmd_scenario_list)

    scenario_run = scenario_sub.add_parser(
        "run",
        help="run one preset (plus its victim-only baseline) and "
             "report victim slowdown and attacker ACT rate",
    )
    scenario_run.add_argument("name", help="a preset from `scenario list`")
    scenario_run.add_argument(
        "--jobs", type=int, default=1,
        help="fan the scenario and baseline legs across worker "
             "processes (results are identical to serial)",
    )
    scenario_run.add_argument("--requests", type=int, default=800,
                              help="requests per core")
    scenario_run.add_argument("--seed", type=int, default=0)
    scenario_run.add_argument(
        "--results-dir", default="results",
        help="artifact/cache directory (default: results/; the "
             "artifact lands in the content-addressed store under "
             "<dir>/store/, indexed by preset name)",
    )
    scenario_run.add_argument(
        "--force", action="store_true",
        help="re-simulate even when a matching artifact exists",
    )
    scenario_run.set_defaults(func=_cmd_scenario_run)

    scenario_sweep = scenario_sub.add_parser(
        "sweep",
        help="sweep presets across defense configurations via "
             "SweepRunner.run_many (one batch, optional process pool)",
    )
    scenario_sweep.add_argument(
        "names", nargs="+", help="presets from `scenario list`"
    )
    scenario_sweep.add_argument(
        "--trackers", default=None,
        help="comma-separated trackers to cross with --schemes "
             "(default: keep each preset's own defense)",
    )
    scenario_sweep.add_argument(
        "--schemes", default=None,
        help="comma-separated RP schemes to cross with --trackers",
    )
    scenario_sweep.add_argument("--jobs", type=int, default=1)
    scenario_sweep.add_argument("--requests", type=int, default=400,
                                help="requests per core")
    scenario_sweep.add_argument("--seed", type=int, default=0)
    scenario_sweep.set_defaults(func=_cmd_scenario_sweep)

    scenario_report = scenario_sub.add_parser(
        "report",
        help="diff scenario metrics between two result stores "
             "(results dirs or store roots; compare runs across "
             "commits the way bench_compare --trajectory does)",
    )
    scenario_report.add_argument(
        "dir_a", help="results dir or store root of side A"
    )
    scenario_report.add_argument(
        "dir_b", help="results dir or store root of side B"
    )
    scenario_report.set_defaults(func=_cmd_scenario_report)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="fuzz the scenario space under the invariant monitor in "
             "both engines; shrink and store failing reproducers",
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="grammar seed (fixes the whole run)")
    fuzz_cmd.add_argument("--budget", type=int, default=25,
                          help="number of candidates to generate")
    fuzz_cmd.add_argument(
        "--requests", type=int, default=None,
        help="requests per core per candidate (default: the fuzzer's)",
    )
    fuzz_cmd.add_argument(
        "--results-dir", default="results",
        help="reproducers land in <dir>/store/, indexed as "
             "fuzz/<signature>",
    )
    fuzz_cmd.add_argument(
        "--fault", default=None,
        help="inject a known defense fault for the run (the planted-"
             "violation path; see repro.security.faults)",
    )
    fuzz_cmd.add_argument(
        "--replay", default=None, metavar="KEY",
        help="re-run the stored reproducer with this content key "
             "instead of fuzzing",
    )
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    results_cmd = sub.add_parser(
        "results",
        help="inspect the content-addressed result store",
    )
    results_sub = results_cmd.add_subparsers(
        dest="results_command", required=True
    )
    results_list = results_sub.add_parser(
        "list",
        help="list recorded artifacts: name, key, kind, timestamp, "
             "git SHA",
    )
    results_list.add_argument(
        "--results-dir", default="results",
        help="results directory holding the store (default: results/)",
    )
    results_list.add_argument(
        "--kind", default=None,
        help="only entries of this kind (scenario, fuzz-repro, ...)",
    )
    results_list.add_argument(
        "--name", default=None, help="only entries aliased to this name"
    )
    results_list.set_defaults(func=_cmd_results_list)

    results_gc = results_sub.add_parser(
        "gc",
        help="delete blobs unreferenced by the index and stale crash-"
             "debris temp files; --dry-run reports reclaimable bytes",
    )
    results_gc.add_argument(
        "--results-dir", default="results",
        help="results directory holding the store (default: results/)",
    )
    results_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be reclaimed without deleting anything",
    )
    results_gc.add_argument(
        "--tmp-grace", type=float, default=3600.0,
        help="age (seconds) past which an unjudgeable *.tmp file "
             "counts as stale (dead-pid temp files are always stale)",
    )
    results_gc.add_argument(
        "--blob-grace", type=float, default=60.0,
        help="age (seconds) below which an unreferenced blob is kept "
             "— a concurrent writer may not have recorded its index "
             "alias yet",
    )
    results_gc.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable GC report instead of prose",
    )
    results_gc.set_defaults(func=_cmd_results_gc)

    sweep_cmd = sub.add_parser(
        "sweep",
        help="execute scenario presets as content-addressed tasks, "
             "serially or --distributed via the fault-tolerant queue",
    )
    sweep_cmd.add_argument(
        "names", nargs="+", help="presets from `repro scenario list`"
    )
    sweep_cmd.add_argument("--requests", type=int, default=400,
                           help="requests per core")
    sweep_cmd.add_argument("--seed", type=int, default=0)
    sweep_cmd.add_argument(
        "--results-dir", default="results",
        help="result blobs land in <dir>/store/ keyed by task recipe",
    )
    sweep_cmd.add_argument(
        "--distributed", action="store_true",
        help="submit tasks to the work queue and supervise external "
             "`repro worker` processes instead of running in-process",
    )
    sweep_cmd.add_argument(
        "--queue-dir", default=None,
        help="work-queue directory (default: <results-dir>/queue)",
    )
    sweep_cmd.add_argument(
        "--spawn-workers", type=int, default=0, metavar="N",
        help="convenience: launch N local `repro worker` subprocesses "
             "against the queue for the duration of the sweep",
    )
    sweep_cmd.add_argument(
        "--lease", type=float, default=30.0,
        help="lease seconds before an unheartbeaten claim is reclaimed",
    )
    sweep_cmd.add_argument(
        "--checkpoint-stride", type=int, default=50_000,
        help="cycles between engine checkpoints (0 disables)",
    )
    sweep_cmd.add_argument(
        "--serial-grace", type=float, default=5.0,
        help="seconds with no worker activity before the coordinator "
             "degrades to executing tasks in-process",
    )
    sweep_cmd.add_argument(
        "--speculate-after", type=float, default=None, metavar="S",
        help="re-dispatch a straggler still running after S seconds "
             "(the loser's identical result deduplicates)",
    )
    sweep_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="fail the sweep after this many seconds",
    )
    sweep_cmd.set_defaults(func=_cmd_sweep)

    worker_cmd = sub.add_parser(
        "worker",
        help="distributed-sweep worker: claim leased tasks, simulate "
             "with checkpoints, put result blobs into the store",
    )
    worker_cmd.add_argument(
        "--queue-dir", required=True,
        help="work-queue directory shared with the coordinator",
    )
    worker_cmd.add_argument(
        "--results-dir", default="results",
        help="results directory holding the shared store",
    )
    worker_cmd.add_argument(
        "--lease", type=float, default=30.0,
        help="lease seconds (heartbeats refresh at a third of this)",
    )
    worker_cmd.add_argument(
        "--max-attempts", type=int, default=4,
        help="failures/expiries before a task is poisoned",
    )
    worker_cmd.add_argument(
        "--checkpoint-stride", type=int, default=50_000,
        help="cycles between engine checkpoints (0 disables)",
    )
    worker_cmd.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after executing this many tasks",
    )
    worker_cmd.add_argument(
        "--idle-exit", type=float, default=10.0,
        help="exit after this many seconds without finding work",
    )
    worker_cmd.add_argument(
        "--fault", default=None,
        help="inject a known process-layer chaos fault (see "
             "repro.security.faults; test/chaos use only)",
    )
    worker_cmd.set_defaults(func=_cmd_worker)

    queue_cmd = sub.add_parser(
        "queue",
        help="inspect or drain the distributed work queue",
    )
    queue_sub = queue_cmd.add_subparsers(
        dest="queue_command", required=True
    )
    queue_status = queue_sub.add_parser(
        "status",
        help="census: pending/claimed/done/poisoned counts, live "
             "leases with deadlines, poison-list tracebacks",
    )
    queue_status.add_argument("--queue-dir", required=True)
    queue_status.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable census instead of prose",
    )
    queue_status.set_defaults(func=_cmd_queue_status)
    queue_drain = queue_sub.add_parser(
        "drain",
        help="cancel all unfinished work (keeps done/poison records)",
    )
    queue_drain.add_argument("--queue-dir", required=True)
    queue_drain.set_defaults(func=_cmd_queue_drain)

    serve_cmd = sub.add_parser(
        "serve",
        help="long-lived request daemon over the queue + store: "
             "journaled crash recovery, admission control, graceful "
             "SIGTERM drain (see docs/serving.md)",
    )
    serve_cmd.add_argument(
        "--results-dir", default="results",
        help="results directory: store, journal and endpoint file all "
             "live under it (default: results/)",
    )
    serve_cmd.add_argument(
        "--queue-dir", default=None,
        help="work-queue directory (default: <results-dir>/queue)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=0,
        help="0 picks a free port; the bound address is advertised in "
             "<results-dir>/serve/endpoint.json",
    )
    serve_cmd.add_argument(
        "--lease", type=float, default=30.0,
        help="queue lease seconds for submitted tasks",
    )
    serve_cmd.add_argument(
        "--max-inflight", type=int, default=8,
        help="admission: bound on concurrently-resolving requests",
    )
    serve_cmd.add_argument(
        "--max-waiters", type=int, default=64,
        help="admission: bound on handler threads parked in wait()",
    )
    serve_cmd.add_argument(
        "--queue-watermark", type=int, default=256,
        help="admission: shed new work past this many open queue tasks",
    )
    serve_cmd.add_argument(
        "--journal-watermark", type=int, default=64,
        help="admission: shed new work past this journal depth",
    )
    serve_cmd.add_argument(
        "--serial-grace", type=float, default=2.0,
        help="seconds with no worker progress before the daemon "
             "executes requests in-process (sticky degraded mode)",
    )
    serve_cmd.add_argument(
        "--checkpoint-stride", type=int, default=50_000,
        help="cycles between engine checkpoints (0 disables)",
    )
    serve_cmd.add_argument(
        "--drain-timeout", type=float, default=None,
        help="bound the SIGTERM graceful drain (default: wait for all "
             "in-flight requests; unfinished ones stay journaled)",
    )
    serve_cmd.add_argument(
        "--fault", default=None,
        help="inject a known chaos fault (see repro.security.faults; "
             "test/chaos use only)",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    request_cmd = sub.add_parser(
        "request",
        help="submit one scenario request to a running `repro serve` "
             "daemon (deadline/retry semantics; resubmission is "
             "idempotent by content key)",
    )
    request_cmd.add_argument(
        "name", help="a preset from `repro scenario list`"
    )
    request_cmd.add_argument("--requests", type=int, default=400,
                             help="requests per core")
    request_cmd.add_argument("--seed", type=int, default=0)
    request_cmd.add_argument(
        "--results-dir", default="results",
        help="discover the daemon via <dir>/serve/endpoint.json",
    )
    request_cmd.add_argument(
        "--host", default=None,
        help="connect directly instead of endpoint discovery "
             "(requires --port)",
    )
    request_cmd.add_argument("--port", type=int, default=None)
    request_cmd.add_argument(
        "--deadline", type=float, default=120.0,
        help="total client budget in seconds; on expiry the daemon "
             "keeps working and rerunning the command picks it up",
    )
    request_cmd.add_argument(
        "--wait", type=float, default=10.0,
        help="per-round-trip server-side wait before a 202",
    )
    request_cmd.set_defaults(func=_cmd_request)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
