"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``run`` — orchestrate registered experiments across a process pool
  (``--jobs N --only fig13,table2 --force``), with disk-backed result
  caching and JSON/Markdown artifacts under ``results/``.
* ``list-experiments`` — show every registered experiment with its
  tags, cost estimate and paper reference.
* ``experiment <name>`` — run one experiment module (fig3, fig13,
  tables, ablation, ...) and print its series.
* ``verify`` — report the effective threshold of every scheme under
  adversarial Row-Press patterns.
* ``size`` — print tracker provisioning for a threshold/alpha.
* ``simulate`` — run one workload against one defense configuration.
* ``bench`` — time the canonical simulations and write a tracked
  ``BENCH_<n>.json`` throughput artifact (see docs/performance.md).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from . import experiments
from .experiments import registry
from .experiments.orchestrator import Orchestrator
from .core.analysis import impress_n_effective_threshold
from .dram.timing import default_cycle_timings
from .security.verifier import effective_threshold
from .sim.config import DefenseConfig, SCHEME_NAMES, TRACKER_NAMES
from .sim.system import simulate_workload
from .trackers.para import para_probability
from .trackers.sizing import graphene_entries, graphene_storage, mithril_entries

EXPERIMENT_MODULES = {
    "tables": experiments.tables,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "fig6_7_8": experiments.fig6_7_8,
    "fig12": experiments.fig12,
    "fig13": experiments.fig13,
    "fig14": experiments.fig14,
    "fig15": experiments.fig15,
    "fig16": experiments.fig16,
    "fig18_19": experiments.fig18_19,
    "energy": experiments.energy,
    "ablation": experiments.ablation,
    "all": experiments.runner,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENT_MODULES.get(args.name)
    if module is None:
        known = ", ".join(sorted(EXPERIMENT_MODULES))
        print(f"unknown experiment {args.name!r}; choose from: {known}")
        return 2
    module.main()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
    try:
        orchestrator = Orchestrator(
            results_dir=Path(args.results_dir),
            jobs=args.jobs,
            force=args.force,
            quick=not args.full,
            n_requests=args.requests,
            seed=args.seed,
            sim_jobs=args.sim_jobs,
            progress=print,
        )
        report = orchestrator.run(only=only)
    except (KeyError, ValueError) as exc:
        print(exc.args[0])
        return 2
    executed = sum(1 for o in report.outcomes if not o.cached)
    print(
        f"\n{len(report.outcomes)} experiment(s) "
        f"({executed} executed, {len(report.outcomes) - executed} cached) "
        f"in {report.wall_s:.1f}s with {report.jobs} job(s)"
    )
    print(f"artifacts: {report.results_dir}/  "
          f"report: {report.results_dir}/REPORT.md")
    for row in report.comparison_rows():
        if row["paper"] is None:
            continue
        print(
            f"  {row['experiment']:>8} {row['metric']:<28} "
            f"paper {row['paper']:>8.4g}  measured {row['measured']:>8.4g}"
        )
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    print(f"{'name':<10} {'cost':>6}  {'tags':<28} {'paper ref':<28} title")
    for exp in registry.all_experiments():
        tags = ",".join(exp.tags)
        print(
            f"{exp.name:<10} {exp.cost:>6.1f}  {tags:<28} "
            f"{exp.paper_ref:<28} {exp.title}"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    timings = default_cycle_timings()
    tmro = timings.tRAS + timings.tRC
    print(f"Effective thresholds at TRH={args.trh:.0f}, "
          f"alpha={args.alpha}:")
    for scheme in SCHEME_NAMES:
        report = effective_threshold(
            scheme,
            args.trh,
            alpha=args.alpha,
            timings=timings,
            tmro_cycles=tmro if scheme == "express" else None,
            fraction_bits=args.fraction_bits,
        )
        print(f"  {scheme:>10}: T* = {report.effective_threshold:8.1f} "
              f"({report.relative_threshold:.3f} TRH), "
              f"worst: {report.worst_pattern}")
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    trh, alpha = args.trh, args.alpha
    reduced = impress_n_effective_threshold(trh, alpha)
    print(f"Provisioning for TRH={trh:.0f} (alpha={alpha}):")
    for scheme, target in (("no-rp / impress-p", trh),
                           ("express / impress-n", reduced)):
        print(f"  {scheme:>20}: target T={target:.0f}, "
              f"graphene {graphene_entries(target)} entries, "
              f"mithril {mithril_entries(target)} entries, "
              f"PARA p=1/{1 / para_probability(target):.0f}")
    precise = graphene_storage(trh, 1.0, fraction_bits=7)
    base = graphene_storage(trh, 1.0)
    print(f"  ImPress-P storage factor: "
          f"{precise.total_bits_per_channel / base.total_bits_per_channel:.2f}x")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import command_from_args

    return command_from_args(args)


def _cmd_simulate(args: argparse.Namespace) -> int:
    defense = DefenseConfig(
        tracker=args.tracker, scheme=args.scheme, trh=args.trh,
        alpha=args.alpha,
    )
    result = simulate_workload(
        args.workload, defense, n_requests_per_core=args.requests
    )
    print(f"{args.workload} + {args.tracker}/{args.scheme}: "
          f"{result.elapsed_cycles} cycles, hit rate {result.hit_rate:.3f}")
    print(f"  demand ACTs {result.counts.demand_acts}, "
          f"mitigative ACTs {result.counts.mitigative_acts}, "
          f"REF {result.counts.refreshes}, RFM {result.counts.rfms}")
    energy = result.energy()
    print(f"  energy {energy.total:.0f} units "
          f"(ACT share {energy.activation_share:.2f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="orchestrate registered experiments (parallel, cached)",
    )
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process)",
    )
    run.add_argument(
        "--sim-jobs", type=int, default=1,
        help="per-experiment sweep fan-out processes (effective with "
             "--jobs 1; see SweepRunner.run_many)",
    )
    run.add_argument(
        "--only", default=None,
        help="comma-separated experiment names and/or tags "
             "(e.g. fig13,table2 or simulation)",
    )
    run.add_argument(
        "--force", action="store_true",
        help="re-run even when a cached result exists",
    )
    run.add_argument(
        "--full", action="store_true",
        help="full 20-workload sweeps instead of the quick set",
    )
    run.add_argument(
        "--requests", type=int, default=800,
        help="requests per core for simulation experiments",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--results-dir", default="results",
        help="artifact/cache directory (default: results/)",
    )
    run.set_defaults(func=_cmd_run)

    list_experiments = sub.add_parser(
        "list-experiments", help="list every registered experiment"
    )
    list_experiments.set_defaults(func=_cmd_list_experiments)

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("name", help="fig3, fig13, tables, all, ...")
    experiment.set_defaults(func=_cmd_experiment)

    verify = sub.add_parser("verify", help="verify effective thresholds")
    verify.add_argument("--trh", type=float, default=4000.0)
    verify.add_argument("--alpha", type=float, default=1.0)
    verify.add_argument("--fraction-bits", type=int, default=7)
    verify.set_defaults(func=_cmd_verify)

    size = sub.add_parser("size", help="tracker provisioning")
    size.add_argument("--trh", type=float, default=4000.0)
    size.add_argument("--alpha", type=float, default=1.0)
    size.set_defaults(func=_cmd_size)

    from .bench import add_bench_arguments

    bench = sub.add_parser(
        "bench",
        help="time canonical simulations; write BENCH_<n>.json artifact",
    )
    add_bench_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    simulate = sub.add_parser("simulate", help="run one workload")
    simulate.add_argument("workload")
    simulate.add_argument("--tracker", choices=TRACKER_NAMES,
                          default="graphene")
    simulate.add_argument("--scheme", choices=SCHEME_NAMES,
                          default="impress-p")
    simulate.add_argument("--trh", type=float, default=4000.0)
    simulate.add_argument("--alpha", type=float, default=1.0)
    simulate.add_argument("--requests", type=int, default=1000)
    simulate.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
