"""repro: a reproduction of "ImPress: Securing DRAM Against
Data-Disturbance Errors via Implicit Row-Press Mitigation" (MICRO 2024).

Public API highlights:

* :mod:`repro.core` — unified charge-loss model, EACT arithmetic, and the
  No-RP / ExPress / ImPress-N / ImPress-P mitigation schemes.
* :mod:`repro.trackers` — Graphene, PARA, Mithril, MINT plus sizing math.
* :mod:`repro.dram`, :mod:`repro.memctrl`, :mod:`repro.sim` — the DDR5
  memory-system simulator the evaluation runs on.
* :mod:`repro.security` — effective-threshold verification and attack
  replay.
* :mod:`repro.experiments` — one module per table/figure of the paper.
"""

from .core import (
    ALPHA_LONG,
    ALPHA_SAFE,
    ALPHA_SHORT,
    ConservativeLinearModel,
    ExpressScheme,
    ImpressNScheme,
    ImpressPScheme,
    NoRpScheme,
    impress_n_effective_threshold,
    impress_p_relative_threshold,
)
from .sim import DefenseConfig, SystemConfig, SystemSimulator, simulate_workload

__version__ = "1.0.0"

__all__ = [
    "ALPHA_LONG",
    "ALPHA_SAFE",
    "ALPHA_SHORT",
    "ConservativeLinearModel",
    "ExpressScheme",
    "ImpressNScheme",
    "ImpressPScheme",
    "NoRpScheme",
    "impress_n_effective_threshold",
    "impress_p_relative_threshold",
    "DefenseConfig",
    "SystemConfig",
    "SystemSimulator",
    "simulate_workload",
    "__version__",
]
