"""The scenario subsystem: declarative (workloads × attackers ×
topology × defense) points over the paper's design space.

* :mod:`~repro.scenarios.spec` — the frozen, hashable
  :class:`~repro.scenarios.spec.ScenarioSpec` value.
* :mod:`~repro.scenarios.registry` — named presets (benign references,
  co-located hammering, dwell, decoy, refresh-synchronized,
  multi-attacker saturation).
* :mod:`~repro.scenarios.grid` — cross-product expansion feeding
  :meth:`~repro.experiments.common.SweepRunner.run_many`.
* :mod:`~repro.scenarios.run` — execution, security metrics, and the
  disk-cached results artifacts behind ``repro scenario run``.
* :mod:`~repro.scenarios.fuzz` — the seeded spec-space fuzzer with
  shrinking reproducers behind ``repro fuzz`` (imported lazily; it
  pulls in both simulation engines).
"""

from .grid import ScenarioGrid
from .registry import SCENARIOS, get_scenario, is_scenario, scenario_names
from .run import (
    DEFAULT_SCENARIO_REQUESTS,
    ScenarioReport,
    run_scenario,
    run_scenario_cached,
    scenario_baseline_recipe,
    scenario_config_hash,
    scenario_run_recipe,
)
from .spec import ScenarioSpec, spec_from_recipe

__all__ = [
    "SCENARIOS",
    "ScenarioGrid",
    "ScenarioReport",
    "ScenarioSpec",
    "DEFAULT_SCENARIO_REQUESTS",
    "get_scenario",
    "is_scenario",
    "run_scenario",
    "run_scenario_cached",
    "scenario_baseline_recipe",
    "scenario_config_hash",
    "scenario_names",
    "scenario_run_recipe",
    "spec_from_recipe",
]
