"""Declarative scenario specifications.

A :class:`ScenarioSpec` is one point in the paper's full design space —
*(per-core workloads × attackers × topology × defense)* — as a frozen,
hashable value.  Because it is a value, it can key the
:class:`~repro.experiments.common.SweepRunner` run cache, be expanded
from grids, be pickled to worker processes, and be compared for
equality; nothing about it executes until a runner simulates it.

The per-core assignment is either

* a workload name (``"mcf"``, ``"add_copy"``) — the legacy rate-mode
  path, bit-identical to :func:`repro.sim.system.simulate_workload`
  with the same string; or
* a tuple of :mod:`repro.workloads.sources` objects, one per core —
  benign profile copies, attack generators, and idle slots in any
  combination.

``spec.sweep_point()`` canonicalizes the spec into the
``(workload, defense, tmro_ns)`` triple :class:`SweepRunner` caches on.
Named workloads canonicalize to their plain string, so a scenario sweep
and a legacy figure sweep of the same point share one cache entry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple, Union

from ..dram.timing import CycleTimings, DramClock
from ..sim.config import DefenseConfig, SystemConfig
from ..workloads.sources import (
    AttackerSource,
    CoreSources,
    IdleSource,
    PhasedAttackerSource,
    ProfileSource,
    TraceSource,
    is_attacker,
    source_from_recipe,
)
from ..workloads.synthetic import per_core_profile_names

#: The workload slot of a sweep point: a rate-mode name or core sources.
WorkloadKey = Union[str, CoreSources]


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative (workloads × attackers × topology × defense) point."""

    name: str
    cores: WorkloadKey
    system: SystemConfig = field(default_factory=SystemConfig)
    defense: Optional[DefenseConfig] = None
    tmro_ns: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.cores, str):
            # Validates the name and the core count in one shot.
            per_core_profile_names(self.cores, self.system.n_cores)
        else:
            object.__setattr__(self, "cores", tuple(self.cores))
            self.system.validate_sources(self.cores)

    # -- construction ---------------------------------------------------

    @classmethod
    def benign(
        cls,
        workload: str,
        system: Optional[SystemConfig] = None,
        defense: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
        name: Optional[str] = None,
        description: str = "",
    ) -> "ScenarioSpec":
        """A pure rate-mode scenario for one named workload."""
        return cls(
            name=name or f"benign_{workload}",
            cores=workload,
            system=system or SystemConfig(),
            defense=defense,
            tmro_ns=tmro_ns,
            description=description,
        )

    @classmethod
    def colocated(
        cls,
        name: str,
        workload: str,
        attackers: Tuple[AttackerSource, ...],
        system: Optional[SystemConfig] = None,
        defense: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
        description: str = "",
    ) -> "ScenarioSpec":
        """``workload`` on the leading cores, attackers on the trailing.

        The benign cores keep the named workload's per-core profile
        assignment (mixes split exactly as rate mode does over the full
        core count), so the victim side of a co-located scenario stays
        comparable to the corresponding benign run.
        """
        system = system or SystemConfig()
        n_attackers = len(attackers)
        if n_attackers >= system.n_cores:
            raise ValueError("attackers must leave at least one victim core")
        profiles = per_core_profile_names(workload, system.n_cores)
        victims = tuple(
            ProfileSource(profiles[core])
            for core in range(system.n_cores - n_attackers)
        )
        return cls(
            name=name,
            cores=victims + tuple(attackers),
            system=system,
            defense=defense,
            tmro_ns=tmro_ns,
            description=description,
        )

    # -- derived views --------------------------------------------------

    def sources(self) -> Optional[CoreSources]:
        """The explicit per-core sources, or None for a named workload."""
        return None if isinstance(self.cores, str) else self.cores

    def attacker_cores(self) -> Tuple[int, ...]:
        """Core ids running attack generators (empty when benign)."""
        if isinstance(self.cores, str):
            return ()
        return tuple(
            core for core, source in enumerate(self.cores)
            if is_attacker(source)
        )

    def is_benign(self) -> bool:
        """Whether no core runs an attack generator."""
        return not self.attacker_cores()

    def sweep_point(self):
        """The ``(workload, defense, tmro_ns)`` SweepRunner cache triple."""
        return (self.cores, self.defense, self.tmro_ns)

    def recipe(self) -> Dict[str, Any]:
        """The explicit field dict content-addressed artifacts key on.

        Everything that can change simulated numbers is spelled out —
        per-core sources, the full topology (including timings), the
        defense point, tMRO — as plain JSON-typed data.  ``name`` and
        ``description`` are deliberately *excluded*: they are aliases,
        not physics, so renaming a preset never invalidates artifacts
        and scenarios sharing one victim-only baseline leg share one
        stored blob.  Never key on ``repr``: cosmetic dataclass changes
        would silently shift every hash.
        """
        if isinstance(self.cores, str):
            cores: Any = self.cores
        else:
            cores = [source.recipe() for source in self.cores]
        return {
            "cores": cores,
            "system": asdict(self.system),
            "defense": (
                None if self.defense is None else asdict(self.defense)
            ),
            "tmro_ns": self.tmro_ns,
        }

    def baseline(self) -> "ScenarioSpec":
        """The victim-only reference: attacker cores idled, rest equal.

        Keeping the attacker cores (as idle slots) preserves core ids
        and topology, so per-core metrics line up index-for-index with
        the attacked run.  A benign scenario is its own baseline.
        """
        attackers = set(self.attacker_cores())
        if not attackers:
            return self
        cores = tuple(
            IdleSource() if core in attackers else source
            for core, source in enumerate(self.cores)  # type: ignore[arg-type]
        )
        return replace(
            self,
            name=f"{self.name}@baseline",
            cores=cores,
            description=f"victim-only baseline of {self.name}",
        )

    def with_defense(
        self,
        defense: Optional[DefenseConfig],
        tmro_ns: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "ScenarioSpec":
        """The same workloads/topology under another defense point."""
        return replace(
            self,
            name=name or self.name,
            defense=defense,
            tmro_ns=tmro_ns,
        )

    def core_summary(self) -> str:
        """Compact human-readable per-core composition."""
        if isinstance(self.cores, str):
            return f"{self.system.n_cores}x {self.cores} (rate mode)"
        parts = []
        run_start = 0
        labels = [_source_label(source) for source in self.cores]
        for core in range(1, len(labels) + 1):
            if core == len(labels) or labels[core] != labels[run_start]:
                count = core - run_start
                label = labels[run_start]
                parts.append(f"{count}x {label}" if count > 1 else label)
                run_start = core
        return " + ".join(parts)

    def defense_summary(self) -> str:
        """Compact defense description (tracker/scheme, tMRO)."""
        if self.defense is None:
            label = "unprotected"
        else:
            label = f"{self.defense.tracker}/{self.defense.scheme}"
        if self.tmro_ns is not None:
            label += f" tMRO={self.tmro_ns:.0f}ns"
        return label


def _source_label(source: TraceSource) -> str:
    """One word per source for :meth:`ScenarioSpec.core_summary`."""
    if isinstance(source, ProfileSource):
        return source.profile
    if isinstance(source, AttackerSource):
        return f"{source.pattern}@b{source.bank}"
    if isinstance(source, PhasedAttackerSource):
        patterns = "/".join(phase.pattern for phase in source.phases)
        return f"phased[{patterns}]"
    return "idle"


def spec_from_recipe(
    recipe: Dict[str, Any],
    name: str = "replayed",
    description: str = "",
) -> ScenarioSpec:
    """Reconstruct a :class:`ScenarioSpec` from its :meth:`recipe` dict.

    The inverse of :meth:`ScenarioSpec.recipe` up to the deliberately
    excluded ``name``/``description`` aliases (supplied by the caller),
    so ``spec_from_recipe(spec.recipe()).recipe() == spec.recipe()``.
    This is what makes a stored fuzz reproducer self-contained: the
    content-addressed blob's recipe rebuilds the exact spec it keyed.
    """
    system_fields = dict(recipe["system"])
    timing_fields = dict(system_fields.pop("timings"))
    clock = DramClock(**timing_fields.pop("clock"))
    system = SystemConfig(
        timings=CycleTimings(clock=clock, **timing_fields),
        **system_fields,
    )
    defense_fields = recipe["defense"]
    defense = (
        None if defense_fields is None else DefenseConfig(**defense_fields)
    )
    cores: WorkloadKey = recipe["cores"]
    if not isinstance(cores, str):
        cores = tuple(source_from_recipe(core) for core in cores)
    return ScenarioSpec(
        name=name,
        cores=cores,
        system=system,
        defense=defense,
        tmro_ns=recipe["tmro_ns"],
        description=description,
    )
