"""Scenario grids: declarative cross-products over the design space.

A :class:`ScenarioGrid` is a frozen value describing *(workloads ×
(defense, tMRO) points)* against one topology.  ``expand()`` yields the
individual :class:`~repro.scenarios.spec.ScenarioSpec` points and
``sweep_points()`` their canonical SweepRunner cache triples, so a
whole grid can be fanned out with one
:meth:`~repro.experiments.common.SweepRunner.run_many` call — serial or
across the persistent process pool, with bit-identical results either
way.

The defense axis is a sequence of *(defense, tmro_ns)* pairs rather
than two independent axes because real sweeps pair them: a Fig-5 tMRO
sweep provisions a different tracker per tMRO point.  Use
:meth:`ScenarioGrid.cross` when the axes really are independent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim.config import DefenseConfig, SystemConfig
from .spec import ScenarioSpec, WorkloadKey

#: One defense-axis entry: the (defense, tmro_ns) pair of a sweep point.
DefensePoint = Tuple[Optional[DefenseConfig], Optional[float]]


@dataclass(frozen=True)
class ScenarioGrid:
    """A cross-product of per-core workloads and defense points."""

    workloads: Tuple[WorkloadKey, ...]
    defense_points: Tuple[DefensePoint, ...] = ((None, None),)
    system: SystemConfig = field(default_factory=SystemConfig)
    name: str = "grid"

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("grid needs at least one workload")
        if not self.defense_points:
            raise ValueError("grid needs at least one defense point")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(
            self, "defense_points", tuple(self.defense_points)
        )

    @classmethod
    def cross(
        cls,
        workloads: Sequence[WorkloadKey],
        defenses: Sequence[Optional[DefenseConfig]] = (None,),
        tmros_ns: Sequence[Optional[float]] = (None,),
        system: Optional[SystemConfig] = None,
        name: str = "grid",
    ) -> "ScenarioGrid":
        """Independent axes: every defense at every tMRO."""
        return cls(
            workloads=tuple(workloads),
            defense_points=tuple(
                itertools.product(tuple(defenses), tuple(tmros_ns))
            ),
            system=system or SystemConfig(),
            name=name,
        )

    def __len__(self) -> int:
        return len(self.workloads) * len(self.defense_points)

    def expand(self) -> List[ScenarioSpec]:
        """Every grid point as a ScenarioSpec, workload-major order."""
        specs: List[ScenarioSpec] = []
        for index, (workload, (defense, tmro_ns)) in enumerate(
            itertools.product(self.workloads, self.defense_points)
        ):
            specs.append(
                ScenarioSpec(
                    name=f"{self.name}[{index}]",
                    cores=workload,
                    system=self.system,
                    defense=defense,
                    tmro_ns=tmro_ns,
                )
            )
        return specs

    def sweep_points(self) -> List[tuple]:
        """The grid's SweepRunner cache triples, in expansion order."""
        return [spec.sweep_point() for spec in self.expand()]
