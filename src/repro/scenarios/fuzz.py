"""Seeded scenario fuzzer with shrinking reproducers.

``repro fuzz --seed S --budget N`` random-walks the
:class:`~repro.scenarios.spec.ScenarioSpec` space — phase-changing
attackers, attacker-vs-attacker bank sharing, decoy/dwell/refresh-sync
parameter mutations, K and topology perturbations — through a seeded
mutation grammar, and runs every candidate under the online
:class:`~repro.security.invariants.InvariantMonitor` in **both**
engines.  A candidate fails when any invariant trips in either engine
*or* when the engines disagree on any SimResult field
(``engine-divergence`` — the bit-identical contract is itself an
invariant here).

Failures are greedily shrunk to minimal reproducers: halve the request
count, idle cores one by one, drop trailing idle cores (shrinking the
topology), simplify attacker sources (phased → first phase, extra rows
and tuned parameters → defaults), and clamp banks/channels — keeping
each reduction only if the exact failure signature (the sorted set of
violated invariant names) still reproduces.  Divergence failures are
additionally bisected to the first checkpoint window where the engines'
:func:`~repro.sim.snapshot.state_fingerprint` disagree.

The shrunk reproducer lands in the content-addressed
:class:`~repro.results.store.ResultStore` keyed by its explicit recipe
(spec recipe + run shape + active faults), so a fixed seed produces the
same store keys on every invocation, and
:func:`replay_reproducer`/:func:`reproducer_spec` rebuild the exact run
— or a ready-to-register named preset — from the blob alone.

Everything is deterministic in ``seed``: candidate generation draws
from one ``random.Random(seed)`` stream, and checking/shrinking draw
nothing.
"""

from __future__ import annotations

import dataclasses
import random
from contextlib import ExitStack
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..results.store import ResultStore
from ..security import faults
from ..security.invariants import monitored_run
from ..sim.config import DefenseConfig, SystemConfig
from ..sim.reference import ReferenceSimulator
from ..sim.snapshot import state_fingerprint
from ..sim.system import SystemSimulator
from ..workloads.compiled import (
    compiled_rate_mode_traces,
    compiled_source_traces,
)
from ..workloads.sources import (
    ATTACK_PATTERNS,
    AttackerSource,
    IdleSource,
    PhasedAttackerSource,
    ProfileSource,
)
from .spec import ScenarioSpec, spec_from_recipe

#: Default requests per core for fuzz candidates: enough simulated time
#: to cross refresh windows and force mitigations, small enough that a
#: candidate runs in both engines in well under a second.
DEFAULT_FUZZ_REQUESTS = 160

#: The shrinker never halves the request count below this floor — a
#: reproducer that short would not exercise the invariants it violates.
MIN_SHRINK_REQUESTS = 40

#: Benign profiles the generator places on victim cores.
FUZZ_PROFILES = ("mcf", "gcc", "omnetpp", "bwaves")

#: Defense points the generator draws from — one per tracker kind plus
#: the undefended machine, mirroring the invariant-engine test matrix.
FUZZ_DEFENSES: Tuple[Optional[DefenseConfig], ...] = (
    None,
    DefenseConfig(tracker="graphene", scheme="impress-p"),
    DefenseConfig(tracker="graphene", scheme="impress-n"),
    DefenseConfig(tracker="graphene", scheme="express", alpha=1.0),
    DefenseConfig(tracker="para", scheme="impress-p", trh=100),
    DefenseConfig(tracker="mithril", scheme="impress-p", rfmth=20),
    DefenseConfig(tracker="mint", scheme="impress-n", trh=1600, rfmth=20),
    DefenseConfig(tracker="prac", scheme="impress-p", trh=150),
    DefenseConfig(tracker="dsac", scheme="impress-p", trh=300),
)


# -- candidate generation -------------------------------------------------


def _random_attacker(
    rng: random.Random, channels: int, banks: int
) -> AttackerSource:
    """One random attack source aimed inside the given topology."""
    pattern = rng.choice(ATTACK_PATTERNS)
    bank = rng.randrange(banks)
    channel = rng.randrange(channels)
    base_row = rng.randrange(16, 480, 2)
    n_rows = rng.choice((2, 2, 3, 4))
    kwargs: Dict[str, Any] = {
        "pattern": pattern,
        "bank": bank,
        "channel": channel,
        "rows": tuple(base_row + 2 * i for i in range(n_rows)),
    }
    if pattern == "hammer":
        kwargs["gap_cycles"] = rng.choice((0, 8, 32))
    elif pattern == "k_sided":
        kwargs["victim_row"] = base_row + 1
        kwargs["k"] = rng.choice((2, 3, 4))
    elif pattern in ("dwell", "decoy"):
        kwargs["hold_gap_cycles"] = rng.choice((40, 80, 120))
        kwargs["hits_per_dwell"] = rng.choice((2, 4, 8))
        kwargs["hold_hits"] = rng.choice((1, 2, 4))
    elif pattern == "refresh_sync":
        kwargs["burst_acts"] = rng.choice((16, 40, 64))
        kwargs["idle_gap_cycles"] = rng.choice((2048, 8192))
    return AttackerSource(**kwargs)


def random_spec(rng: random.Random, index: int) -> ScenarioSpec:
    """One random scenario: small topology, mixed victim/attacker cores."""
    n_cores = rng.randint(2, 4)
    channels = rng.choice((1, 1, 2))
    banks = rng.choice((8, 16))
    # A third of candidates disable MOP auto-precharge: Row-Press
    # pressure (and tMRO enforcement) only matters when rows can
    # actually be held open.
    mop = rng.choice((8, 8, None))
    system = SystemConfig(
        n_cores=n_cores, channels=channels, banks_per_channel=banks,
        mop_burst_lines=mop,
    )
    cores: List[Any] = [ProfileSource(rng.choice(FUZZ_PROFILES))]
    for _ in range(n_cores - 1):
        roll = rng.random()
        if roll < 0.55:
            cores.append(_random_attacker(rng, channels, banks))
        elif roll < 0.70:
            phases = tuple(
                _random_attacker(rng, channels, banks)
                for _ in range(rng.randint(2, 3))
            )
            cores.append(
                PhasedAttackerSource(
                    phases=phases, phase_len=rng.choice((24, 48))
                )
            )
        elif roll < 0.85:
            cores.append(ProfileSource(rng.choice(FUZZ_PROFILES)))
        else:
            cores.append(IdleSource())
    defense = rng.choice(FUZZ_DEFENSES)
    tmro_ns = (
        rng.choice((84.0, 120.0, 180.0)) if rng.random() < 0.2 else None
    )
    return ScenarioSpec(
        name=f"fuzz_{index}",
        cores=tuple(cores),
        system=system,
        defense=defense,
        tmro_ns=tmro_ns,
        description="fuzzer-generated candidate",
    )


# -- the mutation grammar -------------------------------------------------


def _attacker_cores(spec: ScenarioSpec) -> List[int]:
    return list(spec.attacker_cores())


def _with_cores(
    spec: ScenarioSpec, cores: Sequence[Any],
    system: Optional[SystemConfig] = None,
) -> Optional[ScenarioSpec]:
    """A copy with replaced cores/topology, or None if invalid."""
    try:
        return replace(
            spec, cores=tuple(cores), system=system or spec.system
        )
    except ValueError:
        return None


def _mut_share_bank(rng, spec):
    """Attacker-vs-attacker bank sharing: retarget one onto another."""
    attackers = [
        i for i in _attacker_cores(spec)
        if isinstance(spec.cores[i], AttackerSource)
    ]
    if len(attackers) < 2:
        return None
    dst, src = rng.sample(attackers, 2)
    target = spec.cores[src]
    cores = list(spec.cores)
    cores[dst] = replace(
        cores[dst], bank=target.bank, channel=target.channel
    )
    return _with_cores(spec, cores)


def _mut_change_pattern(rng, spec):
    """Swap one attacker's pattern, keeping its target bank."""
    attackers = [
        i for i in _attacker_cores(spec)
        if isinstance(spec.cores[i], AttackerSource)
    ]
    if not attackers:
        return None
    idx = rng.choice(attackers)
    old = spec.cores[idx]
    fresh = _random_attacker(
        rng, spec.system.channels, spec.system.banks_per_channel
    )
    cores = list(spec.cores)
    cores[idx] = replace(fresh, bank=old.bank, channel=old.channel)
    return _with_cores(spec, cores)


def _mut_perturb_params(rng, spec):
    """Nudge one attacker's K/dwell/decoy/refresh-sync parameters."""
    attackers = [
        i for i in _attacker_cores(spec)
        if isinstance(spec.cores[i], AttackerSource)
    ]
    if not attackers:
        return None
    idx = rng.choice(attackers)
    source = spec.cores[idx]
    cores = list(spec.cores)
    if source.pattern == "k_sided":
        cores[idx] = replace(
            source, k=max(2, min(6, source.k + rng.choice((-1, 1))))
        )
    elif source.pattern in ("dwell", "decoy"):
        cores[idx] = replace(
            source,
            hold_gap_cycles=rng.choice((40, 80, 120, 140)),
            hold_hits=rng.choice((1, 2, 4)),
            hits_per_dwell=rng.choice((2, 4, 8)),
        )
    elif source.pattern == "refresh_sync":
        cores[idx] = replace(
            source,
            burst_acts=rng.choice((16, 32, 64)),
            idle_gap_cycles=rng.choice((2048, 4096, 8192)),
        )
    else:
        cores[idx] = replace(source, gap_cycles=rng.choice((0, 8, 32)))
    return _with_cores(spec, cores)


def _mut_phase_change(rng, spec):
    """Make an attacker phase-changing (or grow/rotate its phases)."""
    attackers = _attacker_cores(spec)
    if not attackers:
        return None
    idx = rng.choice(attackers)
    source = spec.cores[idx]
    extra = _random_attacker(
        rng, spec.system.channels, spec.system.banks_per_channel
    )
    cores = list(spec.cores)
    if isinstance(source, PhasedAttackerSource):
        phases = source.phases[1:] + source.phases[:1] + (extra,)
        cores[idx] = replace(source, phases=phases[:4])
    else:
        cores[idx] = PhasedAttackerSource(
            phases=(source, extra), phase_len=rng.choice((24, 48))
        )
    return _with_cores(spec, cores)


def _mut_topology(rng, spec):
    """Perturb the machine: bank count, channel count, or core count."""
    system = spec.system
    roll = rng.random()
    if roll < 0.4:
        banks = rng.choice((4, 8, 16, 32))
        if banks == system.banks_per_channel:
            return None
        cores = [
            replace(source, bank=source.bank % banks)
            if isinstance(source, AttackerSource) else source
            for source in spec.cores
        ]
        return _with_cores(
            spec, cores, replace(system, banks_per_channel=banks)
        )
    if roll < 0.6:
        channels = 2 if system.channels == 1 else 1
        cores = [
            replace(source, channel=source.channel % channels)
            if isinstance(source, AttackerSource) else source
            for source in spec.cores
        ]
        return _with_cores(
            spec, cores, replace(system, channels=channels)
        )
    cores = list(spec.cores) + [
        _random_attacker(rng, system.channels, system.banks_per_channel)
    ]
    return _with_cores(
        spec, cores, replace(system, n_cores=system.n_cores + 1)
    )


def _mut_defense(rng, spec):
    """Move to another defense point (or toggle an explicit tMRO)."""
    defense = rng.choice(FUZZ_DEFENSES)
    tmro_ns = (
        rng.choice((84.0, 120.0, 180.0)) if rng.random() < 0.25 else None
    )
    return replace(spec, defense=defense, tmro_ns=tmro_ns)


#: The grammar: every operator takes (rng, spec) and returns a mutated
#: spec or None when it does not apply.
MUTATIONS: Tuple[Callable, ...] = (
    _mut_share_bank,
    _mut_change_pattern,
    _mut_perturb_params,
    _mut_phase_change,
    _mut_topology,
    _mut_defense,
)


def mutate_spec(
    rng: random.Random, spec: ScenarioSpec, tries: int = 8
) -> ScenarioSpec:
    """Apply one applicable mutation (the spec itself if none applies)."""
    for _ in range(tries):
        mutated = rng.choice(MUTATIONS)(rng, spec)
        if mutated is not None:
            return mutated
    return spec


# -- candidate checking ---------------------------------------------------


@dataclass(frozen=True)
class CheckOutcome:
    """One candidate's verdict across both engines."""

    signature: Tuple[str, ...]   # sorted violated-invariant names
    violations: Tuple[str, ...]  # engine-tagged Violation.describe lines
    divergence: Optional[str]    # field summary when engines disagree
    elapsed_cycles: int

    @property
    def ok(self) -> bool:
        return not self.signature


def _result_fields(result) -> Dict[str, Any]:
    """Every SimResult field, flattened for exact comparison."""
    return {
        "elapsed_cycles": result.elapsed_cycles,
        "core_cycles": result.core_cycles,
        "core_requests": result.core_requests,
        "counts": dataclasses.asdict(result.counts),
        "row_hits": result.row_hits,
        "row_misses": result.row_misses,
        "row_conflicts": result.row_conflicts,
        "rfm_mitigations": result.rfm_mitigations,
        "tmro_closures": result.tmro_closures,
        "core_demand_acts": result.core_demand_acts,
    }


def _build_sim(spec: ScenarioSpec, engine: str, n_requests: int, seed: int):
    """One simulator for the spec, sharing the compiled-trace cache."""
    system = spec.system
    if isinstance(spec.cores, str):
        compiled = compiled_rate_mode_traces(
            spec.cores, system.n_cores, n_requests, seed, system.mapper()
        )
    else:
        compiled = compiled_source_traces(
            spec.cores, n_requests, seed, system.mapper()
        )
    if engine == "fast":
        return SystemSimulator(
            system, defense=spec.defense, tmro_ns=spec.tmro_ns,
            compiled=compiled,
        )
    return ReferenceSimulator(
        system, [entry.trace for entry in compiled],
        defense=spec.defense, tmro_ns=spec.tmro_ns,
    )


def check_scenario(
    spec: ScenarioSpec,
    n_requests: int = DEFAULT_FUZZ_REQUESTS,
    seed: int = 0,
    checkpoint_cycles: int = 50_000,
) -> CheckOutcome:
    """Run one candidate under the monitor in both engines.

    The signature unions the violated-invariant names from both engines
    and adds ``engine-divergence`` when any SimResult field differs —
    the reference engine is the oracle for the fast one, so divergence
    is a first-class violation even with every invariant clean.
    """
    results = {}
    names = set()
    describes: List[str] = []
    for engine in ("fast", "reference"):
        sim = _build_sim(spec, engine, n_requests, seed)
        result, monitor = monitored_run(
            sim, tmro_ns=spec.tmro_ns, checkpoint_cycles=checkpoint_cycles
        )
        results[engine] = result
        names.update(monitor.violation_names())
        describes.extend(
            f"{engine}: {violation.describe()}"
            for violation in monitor.violations
        )
    fast_fields = _result_fields(results["fast"])
    reference_fields = _result_fields(results["reference"])
    divergence = None
    if fast_fields != reference_fields:
        differing = sorted(
            field for field in fast_fields
            if fast_fields[field] != reference_fields[field]
        )
        divergence = "engines disagree on: " + ", ".join(differing)
        names.add("engine-divergence")
        describes.append(f"both: {divergence}")
    return CheckOutcome(
        signature=tuple(sorted(names)),
        violations=tuple(describes),
        divergence=divergence,
        elapsed_cycles=results["fast"].elapsed_cycles,
    )


def bisect_divergence(
    spec: ScenarioSpec,
    n_requests: int = DEFAULT_FUZZ_REQUESTS,
    seed: int = 0,
    stride: int = 2_000,
) -> Optional[Tuple[int, int]]:
    """The first checkpoint window where the engines' state diverges.

    Steps both engines in ``stride``-cycle lockstep and compares
    :func:`~repro.sim.snapshot.state_fingerprint` at every stop — the
    checkpoint contract makes the fingerprints total, so the returned
    ``(clean_cycle, divergent_cycle)`` window bounds the first
    mismatched event.  None when the engines agree end to end.
    """
    fast = _build_sim(spec, "fast", n_requests, seed)
    reference = _build_sim(spec, "reference", n_requests, seed)
    prev_stop = 0
    stop = stride
    while True:
        fast_done = fast.run_until(stop_cycle=stop)
        ref_done = reference.run_until(stop_cycle=stop)
        if (
            fast_done != ref_done
            or state_fingerprint(fast) != state_fingerprint(reference)
        ):
            return (prev_stop, stop)
        if fast_done:
            return None
        prev_stop = stop
        stop += stride


# -- shrinking ------------------------------------------------------------


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized failing candidate plus the trail that got there."""

    spec: ScenarioSpec
    n_requests: int
    steps: Tuple[str, ...]
    evaluations: int


def _simplified_attacker(source: AttackerSource) -> AttackerSource:
    """The canonical simpler form of an attacker (same pattern/target)."""
    return AttackerSource(
        pattern=source.pattern,
        bank=source.bank,
        channel=source.channel,
        rows=source.rows[:2],
        victim_row=source.victim_row,
    )


def shrink(
    spec: ScenarioSpec,
    signature: Tuple[str, ...],
    n_requests: int = DEFAULT_FUZZ_REQUESTS,
    seed: int = 0,
    checkpoint_cycles: int = 50_000,
    max_evaluations: int = 48,
) -> ShrinkResult:
    """Greedily minimize a failing candidate, preserving its signature.

    Each pass proposes a strictly smaller candidate and keeps it only
    if re-checking still yields exactly ``signature``; passes repeat
    until a fixpoint (or the evaluation budget runs out).  Passes, in
    order: halve ``n_requests``, idle cores one by one, drop trailing
    idle cores (shrinking ``n_cores``), simplify attacker sources
    (phased → first phase, tuned parameters → defaults), and clamp the
    channel count.
    """
    evaluations = 0
    steps: List[str] = []

    def still_fails(candidate: ScenarioSpec, candidate_requests: int) -> bool:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return False
        evaluations += 1
        outcome = check_scenario(
            candidate, candidate_requests, seed, checkpoint_cycles
        )
        return outcome.signature == signature

    changed = True
    while changed and evaluations < max_evaluations:
        changed = False

        # Halve the run length.
        while (
            n_requests // 2 >= MIN_SHRINK_REQUESTS
            and still_fails(spec, n_requests // 2)
        ):
            n_requests //= 2
            steps.append(f"halved requests to {n_requests}")
            changed = True

        # Idle cores one by one (victim first: it is least load-bearing).
        if not isinstance(spec.cores, str):
            for idx, source in enumerate(spec.cores):
                if isinstance(source, IdleSource):
                    continue
                cores = list(spec.cores)
                cores[idx] = IdleSource()
                candidate = _with_cores(spec, cores)
                if candidate is not None and still_fails(candidate, n_requests):
                    spec = candidate
                    steps.append(f"idled core {idx}")
                    changed = True

            # Drop trailing idle cores, shrinking the topology with them.
            while (
                not isinstance(spec.cores, str)
                and len(spec.cores) > 1
                and isinstance(spec.cores[-1], IdleSource)
            ):
                candidate = _with_cores(
                    spec, spec.cores[:-1],
                    replace(spec.system, n_cores=spec.system.n_cores - 1),
                )
                if candidate is not None and still_fails(candidate, n_requests):
                    spec = candidate
                    steps.append(f"dropped idle core (now {len(spec.cores)})")
                    changed = True
                else:
                    break

            # Simplify attacker sources.
            for idx, source in enumerate(spec.cores):
                if isinstance(source, PhasedAttackerSource):
                    simpler: Any = source.phases[0]
                elif isinstance(source, AttackerSource):
                    simpler = _simplified_attacker(source)
                    if simpler == source:
                        continue
                else:
                    continue
                cores = list(spec.cores)
                cores[idx] = simpler
                candidate = _with_cores(spec, cores)
                if candidate is not None and still_fails(candidate, n_requests):
                    spec = candidate
                    steps.append(f"simplified attacker on core {idx}")
                    changed = True

            # Clamp to one channel when nothing targets the second.
            if spec.system.channels > 1 and all(
                getattr(source, "channel", 0) == 0
                or isinstance(source, PhasedAttackerSource)
                and all(phase.channel == 0 for phase in source.phases)
                for source in spec.cores
            ):
                candidate = _with_cores(
                    spec, spec.cores, replace(spec.system, channels=1)
                )
                if candidate is not None and still_fails(candidate, n_requests):
                    spec = candidate
                    steps.append("clamped to one channel")
                    changed = True

    return ShrinkResult(
        spec=spec,
        n_requests=n_requests,
        steps=tuple(steps),
        evaluations=evaluations,
    )


# -- reproducers ----------------------------------------------------------


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzz failure, shrunk, with its stored reproducer key."""

    candidate: int
    spec: ScenarioSpec
    n_requests: int
    seed: int
    signature: Tuple[str, ...]
    violations: Tuple[str, ...]
    divergence_window: Optional[Tuple[int, int]]
    shrink_steps: Tuple[str, ...]
    shrink_evaluations: int
    store_key: Optional[str]


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one ``fuzz()`` invocation."""

    seed: int
    budget: int
    n_requests: int
    candidates: int
    failures: Tuple[FuzzFailure, ...]
    faults: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_repro_recipe(
    spec: ScenarioSpec, n_requests: int, seed: int
) -> Dict[str, Any]:
    """The content-store recipe of one fuzz reproducer.

    Active faults are part of the identity: a failure that only exists
    under an injected fault must never collide with (or replay as) a
    clean run of the same spec.
    """
    return {
        "kind": "fuzz-repro",
        "scenario": spec.recipe(),
        "n_requests": n_requests,
        "seed": seed,
        "faults": list(faults.active_faults()),
    }


def store_reproducer(store: ResultStore, failure: FuzzFailure) -> str:
    """Persist a shrunk reproducer; returns its content key."""
    recipe = fuzz_repro_recipe(
        failure.spec, failure.n_requests, failure.seed
    )
    payload = {
        "signature": list(failure.signature),
        "violations": list(failure.violations),
        "divergence_window": (
            None if failure.divergence_window is None
            else list(failure.divergence_window)
        ),
        "shrink_steps": list(failure.shrink_steps),
        "shrink_evaluations": failure.shrink_evaluations,
        "cores": failure.spec.core_summary(),
        "defense": failure.spec.defense_summary(),
    }
    name = "fuzz/" + "+".join(failure.signature)
    key, _, _ = store.put(
        recipe, payload, name=name, kind="fuzz-repro",
        meta={"candidate": failure.candidate, "seed": failure.seed},
    )
    return key


def reproducer_spec(
    store: ResultStore, key: str, name: Optional[str] = None
) -> Tuple[ScenarioSpec, Dict[str, Any]]:
    """A stored reproducer as a ready-to-run named scenario preset.

    Returns ``(spec, recipe)``; the spec can be registered or passed
    straight to ``run_scenario``.  Raises ``KeyError`` when ``key``
    holds no fuzz reproducer.
    """
    recipe = store.recipe(key)
    if recipe is None or recipe.get("kind") != "fuzz-repro":
        raise KeyError(f"no fuzz reproducer stored under key {key!r}")
    spec = spec_from_recipe(
        recipe["scenario"],
        name=name or f"fuzz_repro_{key}",
        description=f"shrunk fuzz reproducer {key}",
    )
    return spec, recipe


def replay_reproducer(
    store: ResultStore, key: str, checkpoint_cycles: int = 50_000
) -> Tuple[ScenarioSpec, CheckOutcome]:
    """Re-run a stored reproducer exactly as the fuzzer saw it.

    The blob's recipe pins the spec, run shape *and* the injected
    faults, so replaying the planted-fault reproducer re-trips the same
    invariants, and replaying it without its recorded faults would not
    — which is why the faults ride in the recipe.
    """
    spec, recipe = reproducer_spec(store, key)
    with ExitStack() as stack:
        for fault in recipe.get("faults", ()):
            stack.enter_context(faults.injected(fault))
        outcome = check_scenario(
            spec, recipe["n_requests"], recipe["seed"],
            checkpoint_cycles=checkpoint_cycles,
        )
    return spec, outcome


# -- the main loop --------------------------------------------------------


def fuzz(
    seed: int,
    budget: int,
    n_requests: int = DEFAULT_FUZZ_REQUESTS,
    store: Optional[ResultStore] = None,
    checkpoint_cycles: int = 50_000,
    max_shrink_evaluations: int = 48,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``budget`` seeded candidates; shrink and store every failure.

    Fully deterministic in ``(seed, budget, n_requests)``: two
    invocations yield the same candidates, the same failure signatures,
    the same shrunk reproducers and the same store keys.
    """
    rng = random.Random(seed)
    failures: List[FuzzFailure] = []
    for candidate in range(budget):
        spec = random_spec(rng, candidate)
        for _ in range(rng.randint(0, 2)):
            spec = mutate_spec(rng, spec)
        outcome = check_scenario(
            spec, n_requests, seed, checkpoint_cycles
        )
        if progress is not None:
            verdict = (
                "ok" if outcome.ok else "+".join(outcome.signature)
            )
            progress(
                f"candidate {candidate}: {spec.core_summary()} under "
                f"{spec.defense_summary()} -> {verdict}"
            )
        if outcome.ok:
            continue
        shrunk = shrink(
            spec, outcome.signature, n_requests, seed,
            checkpoint_cycles=checkpoint_cycles,
            max_evaluations=max_shrink_evaluations,
        )
        final = check_scenario(
            shrunk.spec, shrunk.n_requests, seed, checkpoint_cycles
        )
        window = None
        if "engine-divergence" in final.signature:
            window = bisect_divergence(
                shrunk.spec, shrunk.n_requests, seed
            )
        failure = FuzzFailure(
            candidate=candidate,
            spec=shrunk.spec,
            n_requests=shrunk.n_requests,
            seed=seed,
            signature=final.signature,
            violations=final.violations,
            divergence_window=window,
            shrink_steps=shrunk.steps,
            shrink_evaluations=shrunk.evaluations,
            store_key=None,
        )
        if store is not None:
            failure = replace(
                failure, store_key=store_reproducer(store, failure)
            )
        failures.append(failure)
        if progress is not None:
            progress(
                f"  shrunk to {failure.spec.core_summary()} @ "
                f"{failure.n_requests} requests "
                f"({failure.shrink_evaluations} evaluations)"
                + (f", stored {failure.store_key}" if failure.store_key
                   else "")
            )
    return FuzzReport(
        seed=seed,
        budget=budget,
        n_requests=n_requests,
        candidates=budget,
        failures=tuple(failures),
        faults=faults.active_faults(),
    )
