"""Named scenario presets: the library of ready-to-run design points.

Each preset is a :class:`~repro.scenarios.spec.ScenarioSpec` value —
benign references, co-located single/double/K-sided hammering,
Row-Press dwell, decoy closures, refresh-synchronized bursts, and
multi-attacker saturation — so ``repro scenario run <name>`` and the
sweep grids all draw from one table.  Attack timing parameters are
derived from the paper's Table-I timings once, here, and stored in the
spec as plain cycle counts.
"""

from __future__ import annotations

from typing import Dict, List

from ..dram.timing import default_cycle_timings
from ..sim.config import DefenseConfig, SystemConfig
from ..workloads.sources import AttackerSource
from .spec import ScenarioSpec

_TIMINGS = default_cycle_timings()

#: Spacing between spaced row hits for dwell/decoy attackers: just
#: under the controller's default idle-close timer, so the row stays
#: open and the dwell is attacker-controlled.
HOLD_GAP_CYCLES = 120

#: Refresh-synchronized burst shape: ``burst_acts`` back-to-back ACTs,
#: then silence for the rest of one tREFI.
REFRESH_SYNC_BURST_ACTS = 40
REFRESH_SYNC_IDLE_GAP = max(
    0, _TIMINGS.tREFI - REFRESH_SYNC_BURST_ACTS * _TIMINGS.tRC
)

#: The defense most presets run under (the paper's headline scheme).
_IMPRESS_P = DefenseConfig(tracker="graphene", scheme="impress-p")
_IMPRESS_N = DefenseConfig(tracker="graphene", scheme="impress-n")
_PARA_P = DefenseConfig(tracker="para", scheme="impress-p")


def _presets() -> List[ScenarioSpec]:
    """Build the preset table (kept in one place for docs and tests)."""
    return [
        ScenarioSpec.benign(
            "mcf",
            description="8 rate-mode mcf copies, no defense — the "
                        "plain performance reference.",
        ),
        ScenarioSpec.benign(
            "add_copy",
            description="STREAM add/copy mix (4 cores each), no "
                        "defense.",
        ),
        ScenarioSpec.benign(
            "mcf",
            defense=_IMPRESS_P,
            name="benign_mcf_impress_p",
            description="8 mcf copies under Graphene + ImPress-P: the "
                        "defended-but-unattacked reference.",
        ),
        ScenarioSpec.colocated(
            "colocated_hammer_mcf",
            "mcf",
            attackers=(
                AttackerSource("hammer", bank=5, rows=(100, 102)),
            ),
            defense=_IMPRESS_P,
            description="7 mcf victims + 1 double-sided Rowhammer "
                        "attacker on bank 5, Graphene + ImPress-P.",
        ),
        ScenarioSpec.colocated(
            "colocated_ksided_add",
            "add",
            attackers=(
                AttackerSource("k_sided", bank=9, victim_row=200, k=8),
            ),
            defense=_IMPRESS_N,
            description="7 STREAM-add victims + 1 eight-sided "
                        "hammering attacker (Fig 17's K-pattern family) "
                        "under Graphene + ImPress-N.",
        ),
        ScenarioSpec.colocated(
            "colocated_dwell_mcf",
            "mcf",
            attackers=(
                AttackerSource(
                    "dwell", bank=7, rows=(300, 302),
                    hold_gap_cycles=HOLD_GAP_CYCLES, hits_per_dwell=8,
                ),
            ),
            defense=_IMPRESS_P,
            description="7 mcf victims + 1 Row-Press dwell attacker "
                        "holding aggressor rows open (Fig 2's tON axis) "
                        "under Graphene + ImPress-P.",
        ),
        ScenarioSpec.colocated(
            "colocated_decoy_mcf",
            "mcf",
            attackers=(
                AttackerSource(
                    "decoy", bank=3, rows=(400, 404),
                    hold_gap_cycles=HOLD_GAP_CYCLES, hold_hits=2,
                ),
            ),
            defense=_IMPRESS_N,
            description="7 mcf victims + 1 decoy-closure attacker "
                        "(Fig 10's evasion shape) against ImPress-N's "
                        "window accounting.",
        ),
        ScenarioSpec.colocated(
            "refresh_sync_hammer_mcf",
            "mcf",
            attackers=(
                AttackerSource(
                    "refresh_sync", bank=11, rows=(500, 502),
                    burst_acts=REFRESH_SYNC_BURST_ACTS,
                    idle_gap_cycles=REFRESH_SYNC_IDLE_GAP,
                ),
            ),
            defense=_PARA_P,
            description="7 mcf victims + 1 refresh-synchronized burst "
                        "attacker riding the tREFI cadence against "
                        "PARA's sampling.",
        ),
        ScenarioSpec.colocated(
            "multi_attacker_saturation",
            "mcf",
            attackers=tuple(
                AttackerSource("hammer", bank=bank, rows=(rows, rows + 2))
                for bank, rows in ((8, 100), (16, 140), (24, 180),
                                   (32, 220))
            ),
            defense=_IMPRESS_P,
            description="4 mcf victims + 4 double-sided attackers on "
                        "distinct banks: mitigation-throughput "
                        "saturation under Graphene + ImPress-P.",
        ),
    ]


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec for spec in _presets()
}


def scenario_names() -> List[str]:
    """Preset names, in definition order."""
    return list(SCENARIOS)


def is_scenario(name: str) -> bool:
    """Whether ``name`` is a registered scenario preset."""
    return name in SCENARIOS


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one preset; raises KeyError with the known names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(
            f"unknown scenario {name!r}; choose from: {known}"
        ) from None
