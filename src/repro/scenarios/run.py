"""Scenario execution: simulate a spec, report security-aware metrics.

:func:`run_scenario` simulates a scenario *and* its victim-only
baseline through one :class:`~repro.experiments.common.SweepRunner`
batch (so ``jobs > 1`` evaluates both legs across the persistent
process pool, with results bit-identical to serial), then folds the
two runs into a :class:`ScenarioReport` carrying the headline pair —
victim slowdown and attacker ACT rate — next to the usual performance
counters.

:func:`run_scenario_cached` adds the disk artifact layer used by
``repro scenario run``: one JSON per scenario under
``<results-dir>/scenarios/``, keyed by a config hash, so re-running an
unchanged scenario is a cache hit (the same contract the experiment
orchestrator follows).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from ..experiments.common import SweepRunner
from ..sim.metrics import attacker_act_rate, victim_slowdown
from ..sim.stats import SimResult
from .registry import get_scenario
from .spec import ScenarioSpec

#: Default requests per core for scenario runs (matches the experiment
#: default, so scenario and figure sweeps share cache entries).
DEFAULT_SCENARIO_REQUESTS = 800


@dataclass
class ScenarioReport:
    """One scenario's simulated outcome plus its security metrics."""

    spec: ScenarioSpec
    result: SimResult
    baseline: SimResult
    n_requests: int
    seed: int

    @property
    def victim_slowdown(self) -> Optional[float]:
        """Mean victim slowdown vs. the idle-attacker baseline
        (None for benign scenarios, which have no attacker leg)."""
        attackers = self.spec.attacker_cores()
        if not attackers:
            return None
        return victim_slowdown(self.result, self.baseline, attackers)

    @property
    def attacker_act_rate(self) -> Optional[float]:
        """Attacker demand ACTs per elapsed DRAM cycle (None if benign)."""
        attackers = self.spec.attacker_cores()
        if not attackers:
            return None
        return attacker_act_rate(self.result, attackers)

    @property
    def attacker_acts_per_sec(self) -> Optional[float]:
        """The ACT rate in activations per wall-clock second of DRAM
        time, via the configured DRAM clock."""
        rate = self.attacker_act_rate
        if rate is None:
            return None
        freq_hz = self.spec.system.timings.clock.freq_ghz * 1e9
        return rate * freq_hz

    def to_json(self) -> dict:
        """The results-artifact payload for this run."""
        spec = self.spec
        attackers = list(spec.attacker_cores())
        return {
            "scenario": spec.name,
            "description": spec.description,
            "cores": spec.core_summary(),
            "defense": spec.defense_summary(),
            "topology": {
                "n_cores": spec.system.n_cores,
                "channels": spec.system.channels,
                "banks_per_channel": spec.system.banks_per_channel,
            },
            "n_requests": self.n_requests,
            "seed": self.seed,
            "attacker_cores": attackers,
            "metrics": {
                "victim_slowdown": self.victim_slowdown,
                "attacker_act_rate_per_cycle": self.attacker_act_rate,
                "attacker_acts_per_sec": self.attacker_acts_per_sec,
                "elapsed_cycles": self.result.elapsed_cycles,
                "hit_rate": self.result.hit_rate,
                "demand_acts": self.result.counts.demand_acts,
                "mitigative_acts": self.result.counts.mitigative_acts,
                "rfms": self.result.counts.rfms,
                "energy": self.result.energy().total,
            },
            "core_rates": self.result.core_rates(),
            "core_demand_acts": list(self.result.core_demand_acts),
            "baseline_core_rates": self.baseline.core_rates(),
        }


def run_scenario(
    spec_or_name,
    n_requests: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> ScenarioReport:
    """Simulate a scenario (by spec or preset name) plus its baseline.

    Both legs go through ``runner.run_many`` so a passed-in runner
    shares its cache with other sweeps and ``jobs > 1`` fans the legs
    out in parallel.  A supplied runner must simulate the scenario's
    topology (same ``system``) — and, because the runner's
    ``n_requests``/``seed`` are part of its cache contract, any
    explicitly passed values must match the runner's, or the cache
    keys would lie.  Leave them as None to adopt the runner's (or the
    defaults, when no runner is given).  A locally-created runner's
    worker pool is shut down before returning.
    """
    spec = (
        get_scenario(spec_or_name)
        if isinstance(spec_or_name, str) else spec_or_name
    )
    local_runner = runner is None
    if local_runner:
        runner = SweepRunner(
            system=spec.system,
            n_requests=(
                DEFAULT_SCENARIO_REQUESTS if n_requests is None
                else n_requests
            ),
            seed=0 if seed is None else seed,
            jobs=jobs,
        )
    else:
        if runner.system != spec.system:
            raise ValueError(
                "runner simulates a different topology than the scenario"
            )
        if n_requests is not None and n_requests != runner.n_requests:
            raise ValueError(
                f"n_requests={n_requests} conflicts with the runner's "
                f"fixed n_requests={runner.n_requests}"
            )
        if seed is not None and seed != runner.seed:
            raise ValueError(
                f"seed={seed} conflicts with the runner's fixed "
                f"seed={runner.seed}"
            )
    baseline_spec = spec.baseline()
    points = [spec.sweep_point(), baseline_spec.sweep_point()]
    try:
        result, baseline = runner.run_many(points, jobs=jobs)
    finally:
        if local_runner:
            runner.close_pool()
    return ScenarioReport(
        spec=spec,
        result=result,
        baseline=baseline,
        n_requests=runner.n_requests,
        seed=runner.seed,
    )


# -- disk artifacts ------------------------------------------------------


def scenario_config_hash(
    spec: ScenarioSpec, n_requests: int, seed: int
) -> str:
    """Deterministic short hash identifying one scenario run recipe."""
    canonical = json.dumps(
        {
            "spec": repr(spec),
            "n_requests": n_requests,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def scenario_artifact_path(results_dir: Path, name: str) -> Path:
    """Where ``repro scenario run <name>`` stores its JSON artifact."""
    return Path(results_dir) / "scenarios" / f"{name}.json"


def run_scenario_cached(
    spec_or_name,
    results_dir: Path,
    n_requests: int = DEFAULT_SCENARIO_REQUESTS,
    seed: int = 0,
    jobs: int = 1,
    force: bool = False,
) -> Tuple[dict, Path, bool]:
    """Run a scenario with a disk-cached artifact.

    Returns ``(payload, artifact_path, cached)``.  A matching artifact
    (same scenario recipe hash) short-circuits the simulation unless
    ``force`` is set; parallelism (``jobs``) is never part of the hash
    because it cannot change results.
    """
    spec = (
        get_scenario(spec_or_name)
        if isinstance(spec_or_name, str) else spec_or_name
    )
    config_hash = scenario_config_hash(spec, n_requests, seed)
    path = scenario_artifact_path(Path(results_dir), spec.name)
    if not force and path.is_file():
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = None
        if payload is not None and payload.get("config_hash") == config_hash:
            return payload, path, True
    report = run_scenario(spec, n_requests=n_requests, seed=seed, jobs=jobs)
    payload = report.to_json()
    payload["config_hash"] = config_hash
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload, path, False
