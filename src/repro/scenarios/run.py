"""Scenario execution: simulate a spec, report security-aware metrics.

:func:`run_scenario` simulates a scenario *and* its victim-only
baseline through one :class:`~repro.experiments.common.SweepRunner`
batch (so ``jobs > 1`` evaluates both legs across the persistent
process pool, with results bit-identical to serial), then folds the
two runs into a :class:`ScenarioReport` carrying the headline pair —
victim slowdown and attacker ACT rate — next to the usual performance
counters.

:func:`run_scenario_cached` adds the artifact layer used by
``repro scenario run``: blobs in the content-addressed
:class:`~repro.results.store.ResultStore` under
``<results-dir>/store/``, keyed by the run's explicit recipe
(:func:`scenario_run_recipe` — spec fields, topology, defense,
``n_requests``, ``seed``; never ``repr``), so re-running an unchanged
recipe is a cache hit, two runs of one preset with different seeds are
two retrievable blobs, and the victim-only baseline leg shared by N
scenarios is stored once (the same store the experiment orchestrator
caches into).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..experiments.common import SweepRunner
from ..results.store import content_key, store_for
from ..sim.metrics import (
    attacker_act_rate,
    stalled_victim_cores,
    victim_slowdown,
)
from ..sim.stats import SimResult
from .registry import get_scenario
from .spec import ScenarioSpec

#: Default requests per core for scenario runs (matches the experiment
#: default, so scenario and figure sweeps share cache entries).
DEFAULT_SCENARIO_REQUESTS = 800


@dataclass
class ScenarioReport:
    """One scenario's simulated outcome plus its security metrics."""

    spec: ScenarioSpec
    result: SimResult
    baseline: SimResult
    n_requests: int
    seed: int

    @property
    def victim_slowdown(self) -> Optional[float]:
        """Mean victim slowdown vs. the idle-attacker baseline
        (None for benign scenarios, which have no attacker leg)."""
        attackers = self.spec.attacker_cores()
        if not attackers:
            return None
        return victim_slowdown(self.result, self.baseline, attackers)

    @property
    def attacker_act_rate(self) -> Optional[float]:
        """Attacker demand ACTs per elapsed DRAM cycle (None if benign)."""
        attackers = self.spec.attacker_cores()
        if not attackers:
            return None
        return attacker_act_rate(self.result, attackers)

    @property
    def attacker_acts_per_sec(self) -> Optional[float]:
        """The ACT rate in activations per wall-clock second of DRAM
        time, via the configured DRAM clock."""
        rate = self.attacker_act_rate
        if rate is None:
            return None
        freq_hz = self.spec.system.timings.clock.freq_ghz * 1e9
        return rate * freq_hz

    @property
    def stalled_victims(self) -> Tuple[int, ...]:
        """Victim cores with zero throughput under attack (their
        slowdown is infinite; empty for benign scenarios)."""
        attackers = self.spec.attacker_cores()
        if not attackers:
            return ()
        return stalled_victim_cores(self.result, attackers)

    def to_json(self) -> dict:
        """The results-artifact payload for this run.

        Strict JSON by construction: a stalled victim makes
        ``victim_slowdown`` infinite, which is serialized as ``null``
        with the stalled cores listed in ``stalled_victims`` (the
        store additionally rejects any non-finite float at write
        time).  The baseline leg's data is *not* inlined — it lives in
        its own deduplicated store blob (:meth:`baseline_json`).
        """
        spec = self.spec
        attackers = list(spec.attacker_cores())
        slowdown = self.victim_slowdown
        if slowdown is not None and not math.isfinite(slowdown):
            slowdown = None
        return {
            "scenario": spec.name,
            "description": spec.description,
            "cores": spec.core_summary(),
            "defense": spec.defense_summary(),
            "topology": {
                "n_cores": spec.system.n_cores,
                "channels": spec.system.channels,
                "banks_per_channel": spec.system.banks_per_channel,
            },
            "n_requests": self.n_requests,
            "seed": self.seed,
            "attacker_cores": attackers,
            "stalled_victims": list(self.stalled_victims),
            "metrics": {
                "victim_slowdown": slowdown,
                "attacker_act_rate_per_cycle": self.attacker_act_rate,
                "attacker_acts_per_sec": self.attacker_acts_per_sec,
                "elapsed_cycles": self.result.elapsed_cycles,
                "hit_rate": self.result.hit_rate,
                "demand_acts": self.result.counts.demand_acts,
                "mitigative_acts": self.result.counts.mitigative_acts,
                "rfms": self.result.counts.rfms,
                "energy": self.result.energy().total,
            },
            "core_rates": self.result.core_rates(),
            "core_demand_acts": list(self.result.core_demand_acts),
        }

    def baseline_json(self) -> dict:
        """The victim-only baseline leg's store payload.

        Deliberately name-free: the payload is a pure function of the
        baseline's recipe, so every scenario sharing the same baseline
        leg (same victims, topology, defense, run shape) produces a
        byte-identical blob and the store keeps exactly one copy.
        """
        baseline_spec = self.spec.baseline()
        return {
            "cores": baseline_spec.core_summary(),
            "defense": baseline_spec.defense_summary(),
            "metrics": {
                "elapsed_cycles": self.baseline.elapsed_cycles,
                "hit_rate": self.baseline.hit_rate,
                "demand_acts": self.baseline.counts.demand_acts,
                "mitigative_acts": self.baseline.counts.mitigative_acts,
                "rfms": self.baseline.counts.rfms,
                "energy": self.baseline.energy().total,
            },
            "core_rates": self.baseline.core_rates(),
            "core_demand_acts": list(self.baseline.core_demand_acts),
        }


def run_scenario(
    spec_or_name,
    n_requests: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> ScenarioReport:
    """Simulate a scenario (by spec or preset name) plus its baseline.

    Both legs go through ``runner.run_many`` so a passed-in runner
    shares its cache with other sweeps and ``jobs > 1`` fans the legs
    out in parallel.  A supplied runner must simulate the scenario's
    topology (same ``system``) — and, because the runner's
    ``n_requests``/``seed`` are part of its cache contract, any
    explicitly passed values must match the runner's, or the cache
    keys would lie.  Leave them as None to adopt the runner's (or the
    defaults, when no runner is given).  A locally-created runner's
    worker pool is shut down before returning.
    """
    spec = (
        get_scenario(spec_or_name)
        if isinstance(spec_or_name, str) else spec_or_name
    )
    local_runner = runner is None
    if local_runner:
        runner = SweepRunner(
            system=spec.system,
            n_requests=(
                DEFAULT_SCENARIO_REQUESTS if n_requests is None
                else n_requests
            ),
            seed=0 if seed is None else seed,
            jobs=jobs,
        )
    else:
        if runner.system != spec.system:
            raise ValueError(
                "runner simulates a different topology than the scenario"
            )
        if n_requests is not None and n_requests != runner.n_requests:
            raise ValueError(
                f"n_requests={n_requests} conflicts with the runner's "
                f"fixed n_requests={runner.n_requests}"
            )
        if seed is not None and seed != runner.seed:
            raise ValueError(
                f"seed={seed} conflicts with the runner's fixed "
                f"seed={runner.seed}"
            )
    baseline_spec = spec.baseline()
    points = [spec.sweep_point(), baseline_spec.sweep_point()]
    try:
        result, baseline = runner.run_many(points, jobs=jobs)
    finally:
        if local_runner:
            runner.close_pool()
    return ScenarioReport(
        spec=spec,
        result=result,
        baseline=baseline,
        n_requests=runner.n_requests,
        seed=runner.seed,
    )


# -- store artifacts -----------------------------------------------------


def scenario_run_recipe(
    spec: ScenarioSpec, n_requests: int, seed: int
) -> Dict[str, Any]:
    """The explicit field dict identifying one scenario run.

    This — not ``repr(spec)`` — is the canonical form artifacts are
    content-addressed by: :meth:`~repro.scenarios.spec.ScenarioSpec.recipe`
    spells out cores/topology/defense/tMRO as plain data, and the run
    shape (``n_requests``, ``seed``) rides alongside.  Parallelism
    (``jobs``) is never part of it because it cannot change results.
    """
    return {
        "kind": "scenario-run",
        "scenario": spec.recipe(),
        "n_requests": n_requests,
        "seed": seed,
    }


def scenario_baseline_recipe(
    spec: ScenarioSpec, n_requests: int, seed: int
) -> Dict[str, Any]:
    """The recipe of a scenario's victim-only baseline *leg* blob.

    Deliberately a distinct ``kind`` from :func:`scenario_run_recipe`:
    a leg blob holds the reduced :meth:`ScenarioReport.baseline_json`
    payload, so it must never collide with a full run artifact of an
    identical spec (someone running the victims-plus-idle composition
    as a scenario in its own right).  Payload shape is a function of
    the recipe kind — that is the store's no-collision contract.
    """
    recipe = scenario_run_recipe(spec.baseline(), n_requests, seed)
    recipe["kind"] = "scenario-baseline"
    return recipe


def scenario_config_hash(
    spec: ScenarioSpec, n_requests: int, seed: int
) -> str:
    """Deterministic short hash (content key) of one scenario run.

    Pinned by a golden-hash test (``tests/test_scenarios.py``) so a
    refactor cannot silently invalidate every stored artifact.
    """
    return content_key(scenario_run_recipe(spec, n_requests, seed))


def run_scenario_cached(
    spec_or_name,
    results_dir: Path,
    n_requests: int = DEFAULT_SCENARIO_REQUESTS,
    seed: int = 0,
    jobs: int = 1,
    force: bool = False,
) -> Tuple[dict, Path, bool]:
    """Run a scenario against the content-addressed result store.

    Returns ``(payload, blob_path, cached)``.  The blob is keyed by
    :func:`scenario_config_hash`, so runs of the same preset with
    different ``n_requests``/``seed``/defense are distinct artifacts —
    the preset name is only an index alias.  A matching blob
    short-circuits the simulation unless ``force`` is set.  The
    victim-only baseline leg is stored as its own blob keyed by *its*
    recipe, so N scenarios sharing one baseline store it once; the
    scenario payload references it via ``baseline_key``.
    """
    spec = (
        get_scenario(spec_or_name)
        if isinstance(spec_or_name, str) else spec_or_name
    )
    store = store_for(Path(results_dir))
    recipe = scenario_run_recipe(spec, n_requests, seed)
    key = content_key(recipe)
    run_meta = {"n_requests": n_requests, "seed": seed}
    if not force:
        payload = store.get(key)
        if payload is not None:
            # Re-record the aliases: a lost/corrupt index is rebuilt
            # by cache hits, not only by fresh simulations.
            store.alias(spec.name, key, "scenario", run_meta)
            baseline_key = payload.get("baseline_key")
            if baseline_key is not None:
                store.alias(
                    f"{spec.name}@baseline", baseline_key,
                    "scenario-baseline", run_meta,
                )
            return payload, store.blob_path(key), True
    report = run_scenario(spec, n_requests=n_requests, seed=seed, jobs=jobs)
    payload = report.to_json()
    payload["config_hash"] = key
    if not spec.is_benign():
        payload["baseline_key"], _, _ = store.put(
            scenario_baseline_recipe(spec, n_requests, seed),
            report.baseline_json(),
            name=f"{spec.name}@baseline",
            kind="scenario-baseline",
            meta=run_meta,
            overwrite=force,
        )
    _, path, _ = store.put(
        recipe, payload, name=spec.name, kind="scenario",
        meta=run_meta, overwrite=force,
    )
    return payload, path, False
