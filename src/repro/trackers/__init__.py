"""Rowhammer trackers: Graphene, PARA (MC-based); Mithril, MINT (in-DRAM)."""

from .base import AccountingTracker, Tracker
from .dsac import (
    DsacLikeTracker,
    dsac_weight,
    impress_weight,
    underestimation_factor,
)
from .graphene import GrapheneTracker
from .prac import DEFAULT_ROWS_PER_BANK, PracTracker
from .mint import (
    MINT_THRESHOLD_PER_RFMTH,
    MintTracker,
    mint_rfmth_for_threshold,
    mint_tolerated_threshold,
)
from .mithril import MithrilTracker
from .para import (
    PAPER_ESCAPE_PROBABILITY,
    ParaTracker,
    para_failure_probability,
    para_probability,
)
from .sizing import (
    StorageEstimate,
    counter_bits,
    graphene_entries,
    graphene_internal_threshold,
    graphene_storage,
    impress_n_storage_bytes,
    impress_p_timer_bits,
    mint_storage_bytes,
    mithril_entries,
    mithril_storage,
    mithril_tolerated_threshold,
)

__all__ = [
    "AccountingTracker",
    "Tracker",
    "DsacLikeTracker",
    "dsac_weight",
    "impress_weight",
    "underestimation_factor",
    "GrapheneTracker",
    "DEFAULT_ROWS_PER_BANK",
    "PracTracker",
    "MINT_THRESHOLD_PER_RFMTH",
    "MintTracker",
    "mint_rfmth_for_threshold",
    "mint_tolerated_threshold",
    "MithrilTracker",
    "PAPER_ESCAPE_PROBABILITY",
    "ParaTracker",
    "para_failure_probability",
    "para_probability",
    "StorageEstimate",
    "counter_bits",
    "graphene_entries",
    "graphene_internal_threshold",
    "graphene_storage",
    "impress_n_storage_bytes",
    "impress_p_timer_bits",
    "mint_storage_bytes",
    "mithril_entries",
    "mithril_storage",
    "mithril_tolerated_threshold",
]
