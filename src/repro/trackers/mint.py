"""MINT: a minimalist single-entry in-DRAM tracker.

MINT (Qureshi et al., MICRO 2024 — the paper's concurrent work) keeps
just three registers per bank:

* ``SAN`` — Selected Activation Number: which activation slot in the
  current RFM interval has been (randomly) chosen for mitigation;
* ``CAN`` — Current Activation Number: activations seen so far in the
  interval (widened by 7 fractional bits for ImPress-P);
* ``SAR`` — Selected Address Register: the row that occupied the
  selected slot.

At each RFM, the row in SAR (if valid) is mitigated, CAN resets, and a
fresh SAN is drawn uniformly from the next interval.  With ImPress-P,
CAN advances by EACT, so an access's chance of landing on the selected
slot is proportional to its EACT (Section VI-C).

The per-activation path is already three integer registers; the kernel
surface (:meth:`record_unit` / :meth:`raw_kernel`) just skips the float
conversion and the per-call list.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .base import RawRecordKernel, Tracker

#: Tolerated Rowhammer threshold per unit RFMTH (calibrated so that
#: RFMTH = 80 tolerates TRH = 1.6K, the figure of merit quoted in
#: Section III-B; MINT's own derivation is not reproduced here).
MINT_THRESHOLD_PER_RFMTH = 20.0


def mint_tolerated_threshold(rfmth: int) -> float:
    """Rowhammer threshold MINT tolerates at a given RFM threshold."""
    if rfmth < 1:
        raise ValueError("rfmth must be positive")
    return MINT_THRESHOLD_PER_RFMTH * rfmth


def mint_rfmth_for_threshold(trh: float) -> int:
    """Largest RFMTH whose tolerated threshold covers ``trh``."""
    if trh <= 0:
        raise ValueError("trh must be positive")
    return max(1, int(trh // MINT_THRESHOLD_PER_RFMTH))


class MintTracker(Tracker):
    """Per-bank MINT instance (in-DRAM)."""

    in_dram = True

    __slots__ = (
        "rfmth",
        "fraction_bits",
        "_scale",
        "rng",
        "_can",
        "_san",
        "_sar",
        "mitigations",
    )

    def __init__(
        self,
        rfmth: int = 80,
        fraction_bits: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rfmth < 1:
            raise ValueError("rfmth must be positive")
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        self.rfmth = rfmth
        self.fraction_bits = fraction_bits
        self._scale = 1 << fraction_bits
        self.rng = rng or random.Random(0)
        self._can = 0                   # fixed-point CAN
        self._san = self._draw_san()
        self._sar: Optional[int] = None
        self.mitigations = 0

    def _draw_san(self) -> int:
        """Uniform slot in (0, RFMTH], in fixed-point units."""
        span = self.rfmth * self._scale
        return self.rng.randrange(span) + 1

    @property
    def can(self) -> float:
        """Current Activation Number: (E)ACTs seen this RFM interval."""
        return self._can / self._scale

    @property
    def san(self) -> float:
        """Selected Activation Number: the randomly chosen slot."""
        return self._san / self._scale

    @property
    def sar(self) -> Optional[int]:
        """Selected Address Register: row captured for the next RFM."""
        return self._sar

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Advance CAN by the access's (E)ACT weight.

        With ImPress-P the EACT weight widens the slot span the access
        covers, so its capture probability is proportional to its
        row-open time (Section VI-C).  Never mitigates directly.
        """
        raw = int(weight * self._scale)
        if raw < 0:
            raise ValueError("weight must be non-negative")
        self._kernel(row, raw)
        return []

    def record_unit(self, row: int) -> int:
        """Kernel surface: one unit ACT advances CAN by one scale."""
        return self._kernel(row, self._scale)

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """The register kernel, valid only at the tracker's own scale."""
        if scale != self._scale:
            return None
        return self._kernel

    def _kernel(self, row: int, raw: int) -> int:
        """Advance CAN; capture ``row`` when it covers the selected slot.

        Always returns 0: MINT never mitigates on the record path.
        """
        if raw == 0:
            return 0
        before = self._can
        self._can = before + raw
        # The access covers slots (before, before + raw]; if the selected
        # slot falls inside, this row is captured for the next RFM.
        if before < self._san <= self._can:
            self._sar = row
        return 0

    def on_rfm(self, cycle: int = 0) -> Optional[int]:
        """Mitigate the captured row and start a fresh RFM interval."""
        victim_source = self._sar
        self._sar = None
        self._can = 0
        self._san = self._draw_san()
        if victim_source is not None:
            self.mitigations += 1
        return victim_source

    def snapshot(self) -> object:
        """The three registers, the count and the RNG stream position."""
        return (self._can, self._san, self._sar, self.mitigations,
                self.rng.getstate())

    def restore(self, state: object) -> None:
        """Rewind registers and RNG to a :meth:`snapshot` value."""
        can, san, sar, mitigations, rng_state = state
        self._can = can
        self._san = san
        self._sar = sar
        self.mitigations = mitigations
        self.rng.setstate(rng_state)

    def reset(self) -> None:
        """Clear CAN/SAR and redraw SAN (refresh-window boundary)."""
        self._can = 0
        self._sar = None
        self._san = self._draw_san()
