"""Tracker sizing: entries and SRAM storage per configuration.

These calculators reproduce the sizing arithmetic of Sections III-B,
VI-C and Appendix A:

* Graphene: 448 entries/bank at TRH = 4K (internal threshold 1333);
  entries scale with (1 + alpha) under ExPress / ImPress-N and stay
  unchanged under ImPress-P (which instead widens each entry by 7 bits,
  a 1.25x storage factor).
* Mithril: 383 entries at TRH = 4K / RFMTH = 80, growing to 615
  (alpha = 0.35) and 1545 (alpha = 1) when the target threshold drops.
* MINT: 4 bytes per bank, 5 with ImPress-P.
* ImPress-N itself: 4 bytes per bank (1-byte timer + 3-byte ORA);
  ImPress-P: a 10-bit timer per bank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Activations per bank per refresh window used for Graphene sizing.
#: Calibrated so TRH = 4K yields the paper's 448 entries; it corresponds
#: to tREFW minus refresh/RFM overhead at one ACT per tRC.
GRAPHENE_ACTS_PER_WINDOW = 597_000

#: Graphene's internal threshold is TRH / this divisor (4K -> 1333).
GRAPHENE_THRESHOLD_DIVISOR = 3.0

#: Mithril tolerated-threshold model, calibrated to the paper's data
#: points (383 entries @ TRH 4K, 1545 @ T* 2K, both at RFMTH = 80):
#: TRH(entries, rfmth) = MITHRIL_BASE_PER_RFMTH * rfmth + MITHRIL_SCALE / entries.
MITHRIL_SCALE = 1_018_400
MITHRIL_BASE_PER_RFMTH = 16.76

#: Row-address width for a 32 GB channel with 64 banks and 8 KB rows.
ROW_ADDRESS_BITS = 16

BANKS_PER_CHANNEL = 64


def graphene_internal_threshold(trh: float) -> float:
    """Counter value at which Graphene mitigates (1333 for TRH = 4K)."""
    if trh <= 0:
        raise ValueError("trh must be positive")
    return trh / GRAPHENE_THRESHOLD_DIVISOR


def graphene_entries(trh: float) -> int:
    """Misra-Gries entries per bank to guarantee tracking at ``trh``.

    Any row reaching the internal threshold must be tracked, which needs
    one entry per internal-threshold's worth of window activations.
    """
    threshold = graphene_internal_threshold(trh)
    return math.ceil(GRAPHENE_ACTS_PER_WINDOW / threshold)


def mithril_tolerated_threshold(entries: int, rfmth: int = 80) -> float:
    """TRH tolerated by Mithril with ``entries`` counters (calibrated)."""
    if entries < 1 or rfmth < 1:
        raise ValueError("entries and rfmth must be positive")
    return MITHRIL_BASE_PER_RFMTH * rfmth + MITHRIL_SCALE / entries


def mithril_entries(trh: float, rfmth: int = 80) -> int:
    """Entries per bank for Mithril to tolerate ``trh`` at ``rfmth``."""
    base = MITHRIL_BASE_PER_RFMTH * rfmth
    if trh <= base:
        raise ValueError(
            f"TRH {trh} is below the RFM-rate floor {base:.0f}; "
            "reduce RFMTH instead"
        )
    return math.ceil(MITHRIL_SCALE / (trh - base))


@dataclass(frozen=True, slots=True)
class StorageEstimate:
    """SRAM cost of one tracker configuration."""

    entries_per_bank: int
    bits_per_entry: int
    banks_per_channel: int = BANKS_PER_CHANNEL

    @property
    def total_bits_per_channel(self) -> int:
        """SRAM bits across all banks of one channel."""
        return self.entries_per_bank * self.bits_per_entry * self.banks_per_channel

    @property
    def kib_per_channel(self) -> float:
        """SRAM cost per channel in KiB (the unit Appendix A quotes)."""
        return self.total_bits_per_channel / 8 / 1024


def counter_bits(max_count: float, fraction_bits: int = 0) -> int:
    """Bits for a counter reaching ``max_count``, plus fractional bits."""
    if max_count <= 0:
        raise ValueError("max_count must be positive")
    return max(1, int(max_count).bit_length()) + fraction_bits


def graphene_storage(
    trh: float, scheme_factor: float = 1.0, fraction_bits: int = 0
) -> StorageEstimate:
    """Graphene SRAM per channel.

    ``scheme_factor`` multiplies the entry count: 1 for No-RP and
    ImPress-P, (1 + alpha) for ExPress / ImPress-N.  ``fraction_bits``
    widens each counter (7 for ImPress-P).
    """
    entries = math.ceil(graphene_entries(trh) * scheme_factor)
    bits = ROW_ADDRESS_BITS + counter_bits(
        graphene_internal_threshold(trh), fraction_bits
    )
    return StorageEstimate(entries_per_bank=entries, bits_per_entry=bits)


def mithril_storage(
    trh: float,
    rfmth: int = 80,
    scheme_factor: float = 1.0,
    fraction_bits: int = 0,
) -> StorageEstimate:
    """Mithril SRAM per channel (see :func:`graphene_storage`)."""
    target = trh / scheme_factor
    entries = mithril_entries(target, rfmth)
    bits = ROW_ADDRESS_BITS + counter_bits(trh, fraction_bits)
    return StorageEstimate(entries_per_bank=entries, bits_per_entry=bits)


def mint_storage_bytes(fraction_bits: int = 0) -> int:
    """MINT register bytes per bank: 4 baseline, 5 with ImPress-P."""
    # SAN (7b) + CAN (7b) + SAR (16b) = 30 bits -> 4 bytes; 7 fractional
    # bits on CAN (and SAN) push it to 5 bytes (Section VI-C).
    bits = 7 + 7 + ROW_ADDRESS_BITS + 2 * fraction_bits
    return math.ceil(bits / 8)


def impress_n_storage_bytes() -> int:
    """ImPress-N per-bank state: 1-byte timer + 3-byte ORA (Section V-A)."""
    return 4


def impress_p_timer_bits() -> int:
    """ImPress-P per-bank state: a single 10-bit tON timer (Section VI-A)."""
    return 10
