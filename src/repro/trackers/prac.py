"""PRAC: Per-Row Activation Counting (JESD79-5C), with ImPress support.

Section VI-F: for very low Rowhammer thresholds, industry and JEDEC are
adopting PRAC, where the DRAM array stores an activation counter per
row.  When a row's counter crosses the alert threshold, the DRAM raises
Alert-Back-Off (ABO): the controller pauses and the DRAM refreshes the
victims, after which the counter resets.

The paper notes ImPress composes directly with PRAC: widen each per-row
counter by 7 fractional bits and increment by EACT instead of 1.  This
module implements that tracker so the ablation bench can show PRAC+
ImPress-P holding T* at any threshold where Graphene/PARA become
impractical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import RawRecordKernel, Tracker

#: JEDEC DDR5 rows per bank in our 32 GB/channel configuration.
DEFAULT_ROWS_PER_BANK = 65536


class PracTracker(Tracker):
    """Per-row activation counters with Alert-Back-Off mitigation.

    Mitigation is synchronous from the controller's perspective: when a
    counter crosses ``alert_threshold`` the row is nominated for victim
    refresh and its counter resets (the ABO flow).  PRAC is in-DRAM
    storage-wise, but unlike Mithril/MINT it does not wait for RFM, so
    we model it on the MC-visible path.

    The per-activation path is one sparse-dict update; the kernel
    surface runs it on raw fixed-point weights with no per-call list.
    """

    in_dram = False

    __slots__ = (
        "alert_threshold",
        "rows_per_bank",
        "fraction_bits",
        "_scale",
        "_alert_raw",
        "_counters",
        "alerts",
    )

    def __init__(
        self,
        alert_threshold: float,
        rows_per_bank: int = DEFAULT_ROWS_PER_BANK,
        fraction_bits: int = 0,
    ) -> None:
        if alert_threshold <= 0:
            raise ValueError("alert_threshold must be positive")
        if rows_per_bank < 1:
            raise ValueError("rows_per_bank must be positive")
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        self.alert_threshold = alert_threshold
        self.rows_per_bank = rows_per_bank
        self.fraction_bits = fraction_bits
        self._scale = 1 << fraction_bits
        self._alert_raw = int(alert_threshold * self._scale)
        # Sparse counter map: the array conceptually has one counter per
        # row; untouched rows stay at zero.
        self._counters: Dict[int, int] = {}
        self.alerts = 0

    def count_for(self, row: int) -> float:
        """Per-row activation counter value ((E)ACT units)."""
        return self._counters.get(row, 0) / self._scale

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Advance ``row``'s in-array counter by the (E)ACT weight.

        Crossing the alert threshold raises Alert-Back-Off: the row is
        returned for victim refresh and its counter resets.  With
        ImPress-P the counter is widened by fractional EACT bits
        (Section VI-F).
        """
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} outside the bank")
        raw = int(weight * self._scale)
        if raw < 0:
            raise ValueError("weight must be non-negative")
        return [row] if self._kernel(row, raw) else []

    def record_unit(self, row: int) -> int:
        """Kernel surface: one unit ACT (raw weight = scale)."""
        return self._kernel(row, self._scale)

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """The counter kernel, valid only at the tracker's own scale."""
        if scale != self._scale:
            return None
        return self._kernel

    def _kernel(self, row: int, raw: int) -> int:
        """Per-row counter update; returns 1 on an ABO alert, else 0."""
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} outside the bank")
        if raw == 0:
            return 0
        counters = self._counters
        count = counters.get(row, 0) + raw
        if count >= self._alert_raw:
            counters[row] = 0
            self.alerts += 1
            return 1
        counters[row] = count
        return 0

    def reset(self) -> None:
        """Zero every per-row counter (refresh-window boundary)."""
        self._counters.clear()

    def snapshot(self) -> object:
        """Copy of the per-row counters and the alert count."""
        return (dict(self._counters), self.alerts)

    def restore(self, state: object) -> None:
        """In-place restore of a :meth:`snapshot` value."""
        counters, alerts = state
        self._counters.clear()
        self._counters.update(counters)
        self.alerts = alerts

    def storage_bits_per_row(self, max_count: float | None = None) -> int:
        """Counter width per row (the DRAM-array cost of PRAC).

        The alert threshold bounds the integer part; ImPress-P adds the
        fractional bits (Section VI-F).
        """
        bound = int(max_count if max_count is not None else self.alert_threshold)
        return max(1, bound.bit_length()) + self.fraction_bits

    def storage_kib_per_bank(self) -> float:
        """Total DRAM-array counter storage per bank (KiB)."""
        return self.rows_per_bank * self.storage_bits_per_row() / 8 / 1024
