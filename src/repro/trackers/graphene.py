"""Graphene: Misra-Gries counter tracking at the memory controller.

Graphene (Park et al., MICRO 2020) keeps a Misra-Gries frequent-items
summary per bank: a fixed table of (row, counter) entries plus a spillover
counter.  Any row whose true activation count exceeds the spillover is
guaranteed to be tracked; a mitigation (victim refresh) is issued when an
entry's counter reaches the internal threshold, after which that counter
resets.  The number of entries required is inversely proportional to the
threshold (Section III-B of the ImPress paper).

For ImPress-P the counters carry fractional EACT bits: ``record`` accepts
non-integer weights and the counters accumulate them in fixed point.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .base import Tracker


class GrapheneTracker(Tracker):
    """Per-bank Graphene instance.

    Parameters
    ----------
    entries:
        Misra-Gries table size (448 per bank for TRH = 4K, Table in
        Section III-B; double that for ExPress / ImPress-N at alpha = 1).
    internal_threshold:
        Counter value at which a mitigation fires (1333 for TRH = 4K).
    fraction_bits:
        Fixed-point fractional bits for EACT support (0 for the classic
        integer design, 7 for ImPress-P's default).
    """

    in_dram = False

    def __init__(
        self,
        entries: int,
        internal_threshold: float,
        fraction_bits: int = 0,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        if internal_threshold <= 0:
            raise ValueError("internal_threshold must be positive")
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        self.entries = entries
        self.fraction_bits = fraction_bits
        self._scale = 1 << fraction_bits
        self._threshold_raw = int(internal_threshold * self._scale)
        self._table: Dict[int, int] = {}
        self._spill = 0
        # Lazy min-heap of (count_at_push, row); stale entries are
        # discarded on pop.  Keeps eviction O(log n) amortized.
        self._heap: List[Tuple[int, int]] = []
        self.mitigations = 0

    @property
    def internal_threshold(self) -> float:
        """Counter value (in ACT units) at which a mitigation fires."""
        return self._threshold_raw / self._scale

    @property
    def spillover(self) -> float:
        """The Misra-Gries spillover counter, in ACT units.

        Every untracked activation lands here; a row's true count can
        exceed its table counter by at most this value, which is what
        makes the frequent-items guarantee hold.
        """
        return self._spill / self._scale

    def count_for(self, row: int) -> float:
        """Tracked (E)ACT count of ``row`` (0 when untracked)."""
        return self._table.get(row, 0) / self._scale

    def _quantize(self, weight: float) -> int:
        raw = int(weight * self._scale)
        if raw < 0:
            raise ValueError("weight must be non-negative")
        return raw

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Credit ``weight`` (E)ACTs to ``row`` (Misra-Gries update).

        With ImPress-P the weight is the access's fractional EACT; the
        fixed-point counters accumulate it exactly at 7 fraction bits.
        Returns ``[row]`` when the internal threshold is crossed and a
        victim refresh must be issued.
        """
        raw = self._quantize(weight)
        if raw == 0:
            return []
        count = self._table.get(row)
        if count is not None:
            count += raw
            self._table[row] = count
        elif len(self._table) < self.entries:
            count = self._spill + raw
            self._table[row] = count
            heapq.heappush(self._heap, (count, row))
        else:
            self._spill += raw
            count = self._maybe_swap_in(row)
            if count is None:
                return []
        if count >= self._threshold_raw:
            self._table[row] = 0
            heapq.heappush(self._heap, (0, row))
            self.mitigations += 1
            return [row]
        return []

    def _maybe_swap_in(self, row: int) -> int | None:
        """Misra-Gries swap: if spill caught up with the minimum entry,
        evict that entry and install ``row`` with the spill count."""
        while self._heap:
            count, candidate = self._heap[0]
            current = self._table.get(candidate)
            if current is None or current != count:
                heapq.heappop(self._heap)
                if current is not None:
                    heapq.heappush(self._heap, (current, candidate))
                continue
            if self._spill >= count:
                heapq.heappop(self._heap)
                del self._table[candidate]
                new_count = self._spill
                self._table[row] = new_count
                heapq.heappush(self._heap, (new_count, row))
                return new_count
            return None
        return None

    def reset(self) -> None:
        """Clear the table and spillover (refresh-window boundary)."""
        self._table.clear()
        self._heap.clear()
        self._spill = 0

    def tracked_rows(self) -> List[int]:
        """Rows currently holding a Misra-Gries table entry."""
        return list(self._table)
