"""Graphene: Misra-Gries counter tracking at the memory controller.

Graphene (Park et al., MICRO 2020) keeps a Misra-Gries frequent-items
summary per bank: a fixed table of (row, counter) entries plus a spillover
counter.  Any row whose true activation count exceeds the spillover is
guaranteed to be tracked; a mitigation (victim refresh) is issued when an
entry's counter reaches the internal threshold, after which that counter
resets.  The number of entries required is inversely proportional to the
threshold (Section III-B of the ImPress paper).

For ImPress-P the counters carry fractional EACT bits: ``record`` accepts
non-integer weights and the counters accumulate them in fixed point.

**Kernel engineering.**  The per-activation path is an integer kernel:
the table maps row -> raw fixed-point count, and the lazy eviction heap
holds ``(count << 32) | row`` packed ints instead of tuples — packed
ordering equals tuple ordering (count first, row tie-break) because rows
are below 2**32, so heap behavior is bit-identical to the original
tuple heap while each push allocates no container.  ``record`` is the
validated float API; :meth:`record_unit`/:meth:`raw_kernel` expose the
same kernel to the mitigation schemes without per-call list building.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from .base import RawRecordKernel, Tracker

#: Rows are packed into the low bits of heap entries; row ids must stay
#: below this for packed ordering to equal (count, row) tuple ordering.
_ROW_BITS = 32
_ROW_MASK = (1 << _ROW_BITS) - 1


class GrapheneTracker(Tracker):
    """Per-bank Graphene instance.

    Parameters
    ----------
    entries:
        Misra-Gries table size (448 per bank for TRH = 4K, Table in
        Section III-B; double that for ExPress / ImPress-N at alpha = 1).
    internal_threshold:
        Counter value at which a mitigation fires (1333 for TRH = 4K).
    fraction_bits:
        Fixed-point fractional bits for EACT support (0 for the classic
        integer design, 7 for ImPress-P's default).
    """

    in_dram = False

    __slots__ = (
        "entries",
        "fraction_bits",
        "_scale",
        "_threshold_raw",
        "_table",
        "_spill",
        "_heap",
        "mitigations",
    )

    def __init__(
        self,
        entries: int,
        internal_threshold: float,
        fraction_bits: int = 0,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        if internal_threshold <= 0:
            raise ValueError("internal_threshold must be positive")
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        self.entries = entries
        self.fraction_bits = fraction_bits
        self._scale = 1 << fraction_bits
        self._threshold_raw = int(internal_threshold * self._scale)
        self._table: Dict[int, int] = {}
        self._spill = 0
        # Lazy min-heap of (count_at_push << 32) | row packed ints;
        # stale entries are discarded on pop.  Keeps eviction O(log n)
        # amortized with no per-push tuple.
        self._heap: List[int] = []
        self.mitigations = 0

    @property
    def internal_threshold(self) -> float:
        """Counter value (in ACT units) at which a mitigation fires."""
        return self._threshold_raw / self._scale

    @property
    def spillover(self) -> float:
        """The Misra-Gries spillover counter, in ACT units.

        Every untracked activation lands here; a row's true count can
        exceed its table counter by at most this value, which is what
        makes the frequent-items guarantee hold.
        """
        return self._spill / self._scale

    def count_for(self, row: int) -> float:
        """Tracked (E)ACT count of ``row`` (0 when untracked)."""
        return self._table.get(row, 0) / self._scale

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Credit ``weight`` (E)ACTs to ``row`` (Misra-Gries update).

        With ImPress-P the weight is the access's fractional EACT; the
        fixed-point counters accumulate it exactly at 7 fraction bits.
        Returns ``[row]`` when the internal threshold is crossed and a
        victim refresh must be issued.
        """
        raw = int(weight * self._scale)
        if raw < 0:
            raise ValueError("weight must be non-negative")
        return [row] if self._kernel(row, raw) else []

    def record_unit(self, row: int) -> int:
        """Kernel surface: one unit ACT (raw weight = scale)."""
        return self._kernel(row, self._scale)

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """The integer kernel, valid only at the tracker's own scale."""
        if scale != self._scale:
            return None
        return self._kernel

    def _kernel(self, row: int, raw: int) -> int:
        """Misra-Gries update with a raw fixed-point weight.

        Returns the number of mitigations fired (0 or 1).
        """
        if raw == 0:
            return 0
        table = self._table
        count = table.get(row)
        if count is not None:
            count += raw
            table[row] = count
        elif len(table) < self.entries:
            count = self._spill + raw
            table[row] = count
            heappush(self._heap, (count << _ROW_BITS) | row)
        else:
            self._spill += raw
            count = self._maybe_swap_in(row)
            if count is None:
                return 0
        if count >= self._threshold_raw:
            table[row] = 0
            heappush(self._heap, row)  # count 0 packs to just the row
            self.mitigations += 1
            return 1
        return 0

    def _maybe_swap_in(self, row: int) -> int | None:
        """Misra-Gries swap: if spill caught up with the minimum entry,
        evict that entry and install ``row`` with the spill count."""
        heap = self._heap
        table = self._table
        while heap:
            packed = heap[0]
            candidate = packed & _ROW_MASK
            count = packed >> _ROW_BITS
            current = table.get(candidate)
            if current is None or current != count:
                heappop(heap)
                if current is not None:
                    heappush(heap, (current << _ROW_BITS) | candidate)
                continue
            if self._spill >= count:
                heappop(heap)
                del table[candidate]
                new_count = self._spill
                table[row] = new_count
                heappush(heap, (new_count << _ROW_BITS) | row)
                return new_count
            return None
        return None

    def reset(self) -> None:
        """Clear the table and spillover (refresh-window boundary)."""
        self._table.clear()
        self._heap.clear()
        self._spill = 0

    def snapshot(self) -> object:
        """Copy of the table, spillover, swap heap and mitigation count."""
        return (dict(self._table), self._spill, list(self._heap),
                self.mitigations)

    def restore(self, state: object) -> None:
        """In-place restore of a :meth:`snapshot` value."""
        table, spill, heap, mitigations = state
        self._table.clear()
        self._table.update(table)
        self._heap[:] = heap
        self._spill = spill
        self.mitigations = mitigations

    def tracked_rows(self) -> List[int]:
        """Rows currently holding a Misra-Gries table entry."""
        return list(self._table)
