"""Vectorized batch-replay tracker kernels (the NumPy half of the batch tier).

The batch engine (:mod:`repro.sim.batch`) simulates one *leader* lane of
a compatible sweep-point group on the fast engine while recording the
per-bank command timeline (demand ACTs, row closes, RFMs).  Every other
lane of the group shares that timeline cycle for cycle as long as its
trackers never fire a synchronous mitigation — mitigations are the only
channel through which a tracker can bend the schedule — so the lane can
be *replayed* against the recorded events instead of re-simulated.

This module holds the replay side:

* :class:`RecordedTimeline` — the recorded per-bank event streams as
  structure-of-arrays int64 NumPy arrays, with a per-scheme cache of
  derived record streams.
* :func:`derive_records` — turns one bank's event stream into the
  ``(row, raw_weight)`` record stream the lane's Row-Press scheme would
  feed its tracker (No-RP/ExPress per-ACT records, ImPress-N window
  credits, ImPress-P truncated fixed-point EACTs), vectorized.
* :func:`replay_lane_vector` — replays a whole lane through per-tracker
  vectorized kernels.  Verdicts: ``"valid"`` (no synchronous mitigation
  anywhere; the returned RFM-mitigation count is exact), ``"diverged"``
  (a mitigation *would* fire, so the lane needs a real simulation), or
  ``"unknown"`` (the cheap vector check cannot decide — the caller
  falls back to :func:`replay_lane_python`).
* :func:`replay_lane_python` — exact scalar replay through the real
  scheme/tracker kernel objects; the oracle for the vector kernels and
  the path for combinations they do not cover (DSAC under ImPress-P,
  whose per-record ``log2`` re-weighting is replayed rather than
  re-derived in floating point).

Exactness notes (all pinned by ``tests/test_batch_engine.py``):

* ImPress-P raw weights: ``int(((close - act + tPRE) / tRC) * scale)``
  is computed in float64 both here and in the scalar kernel; operands
  are exact integers below 2**53, so the NumPy result is bit-identical.
* PARA draws: :func:`numpy_rng_from` transplants a ``random.Random``
  Mersenne-Twister state into ``numpy.random.RandomState``; both
  generate doubles with the same 53-bit construction from the same
  stream, so ``random_sample(n)`` equals ``n`` sequential ``random()``
  calls bit for bit.
* MINT SAN draws replay the tracker's own ``random.Random`` consumption
  (one ``randrange`` at construction, one per RFM).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Actionable message for every surface that needs the batch tier.
NUMPY_IMPORT_HINT = (
    "the batch engine tier requires numpy (declared in pyproject.toml); "
    "install it with `pip install numpy`, or use engine='fast' — the "
    "pure-Python engines cover every feature, just without batching"
)

#: Event kinds in a recorded per-bank stream.
EV_ACT = 0      # demand activation of a row
EV_CLOSE = 1    # row close (PRE): carries act_cycle and pre_cycle
EV_RFM = 2      # RFM command arriving at the bank


def numpy_available() -> bool:
    """True when numpy imported and the vectorized kernels can run."""
    return np is not None


class BankEvents:
    """One bank's recorded event stream as parallel int64 arrays.

    ``kinds[i]`` is the event kind; ``rows[i]`` the row for ACT/CLOSE
    events (-1 for RFM); ``a[i]`` the ACT cycle of a CLOSE or the start
    cycle of an RFM; ``b[i]`` the PRE cycle of a CLOSE.  Order is the
    bank's service order, which is all a per-bank tracker ever sees.
    """

    __slots__ = ("kinds", "rows", "a", "b", "rfm_orders", "n")

    def __init__(self, kinds, rows, a, b) -> None:
        self.kinds = np.asarray(kinds, dtype=np.int64)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.a = np.asarray(a, dtype=np.int64)
        self.b = np.asarray(b, dtype=np.int64)
        self.n = len(self.kinds)
        self.rfm_orders = np.nonzero(self.kinds == EV_RFM)[0]


class RecordedTimeline:
    """All banks' recorded streams plus a per-scheme record-stream cache.

    ``banks[flat]`` is the :class:`BankEvents` of flat bank id ``flat``
    (``channel * banks_per_channel + local_bank``).  Derived record
    streams depend only on ``(scheme, scale)``, so followers sharing a
    scheme shape reuse one derivation.
    """

    __slots__ = ("banks", "banks_per_channel", "timings", "_derived")

    def __init__(self, banks: List[BankEvents],
                 banks_per_channel: int, timings) -> None:
        self.banks = banks
        self.banks_per_channel = banks_per_channel
        self.timings = timings
        self._derived = {}

    def records(self, scheme: str, scale: int):
        """Per-bank derived record streams for one scheme shape (cached)."""
        key = (scheme, scale)
        cached = self._derived.get(key)
        if cached is None:
            cached = [
                derive_records(events, scheme, scale, self.timings)
                for events in self.banks
            ]
            self._derived[key] = cached
        return cached


def derive_records(events: BankEvents, scheme: str, scale: int, timings):
    """The ``(rows, raws, orders)`` record stream a scheme feeds one bank.

    ``raws`` are fixed-point weights in units of ``1/scale`` — exactly
    what the scalar kernels receive.  ``orders`` is each record's index
    in the original event stream, used to place records relative to the
    bank's RFM markers (MINT intervals, Mithril occupancy).  ImPress-N
    window credits repeat the close event's index, matching the scalar
    kernel's consecutive ``record_unit`` calls.
    """
    kinds = events.kinds
    if scheme in ("no-rp", "express"):
        mask = kinds == EV_ACT
        orders = np.nonzero(mask)[0]
        rows = events.rows[mask]
        raws = np.full(len(rows), scale, dtype=np.int64)
        return rows, raws, orders
    if scheme == "impress-n":
        trc = timings.tRC
        tact = timings.tACT
        counts = (kinds == EV_ACT).astype(np.int64)
        close = kinds == EV_CLOSE
        # One credit per full tRC window the row stayed open; the row
        # becomes visible tACT after its ACT (ceil division, like the
        # scalar kernel's -(-x // trc)).
        first_boundary = -((-(events.a + tact)) // trc)
        credits = np.clip(events.b // trc - first_boundary, 0, None)
        counts[close] = credits[close]
        counts[kinds == EV_RFM] = 0
        rows = np.repeat(events.rows, counts)
        orders = np.repeat(np.arange(events.n, dtype=np.int64), counts)
        raws = np.full(len(rows), scale, dtype=np.int64)
        return rows, raws, orders
    if scheme == "impress-p":
        trc = timings.tRC
        tpre = timings.tPRE
        mask = kinds == EV_CLOSE
        orders = np.nonzero(mask)[0]
        rows = events.rows[mask]
        # int(eact * scale) in float64, truncated toward zero — the
        # operands are exact ints < 2**53, so this is bit-identical to
        # the scalar ImPress-P close kernel.
        eact = (events.b[mask] - events.a[mask] + tpre).astype(np.float64) / trc
        raws = (eact * scale).astype(np.int64)
        return rows, raws, orders
    raise ValueError(f"unknown scheme: {scheme!r}")


def numpy_rng_from(py_rng: "random.Random"):
    """A ``numpy.random.RandomState`` continuing ``py_rng``'s MT stream.

    Both generators run the same Mersenne-Twister core and build
    doubles from two 32-bit outputs with the same 53-bit construction,
    so after the transplant ``random_sample(n)`` is bit-identical to
    ``n`` sequential ``py_rng.random()`` calls.
    """
    version, internal, _gauss = py_rng.getstate()
    if version != 3:  # pragma: no cover - CPython has used 3 since 2.4
        raise RuntimeError(f"unsupported random.Random state version {version}")
    state = np.random.RandomState()
    state.set_state(
        ("MT19937", np.asarray(internal[:-1], dtype=np.uint32), internal[-1])
    )
    return state


def _bank_seed(defense, local_bank: int) -> int:
    """The per-bank tracker RNG seed ``DefenseConfig.build_scheme`` uses."""
    return defense.seed * 7919 + local_bank


def _sum_checks(per_bank_records, entries: Optional[int], threshold) -> str:
    """Shared validity check for table trackers: sums stay sub-threshold.

    Valid when every bank's distinct positive-weight rows fit the table
    (``entries``; None = per-row counters, no capacity bound) and every
    per-row raw sum stays strictly below ``threshold`` — then no spill,
    eviction or reset dynamics can occur and no mitigation can fire.
    Anything else is ``"unknown"``: the exact outcome depends on update
    order, which the scalar replay resolves.
    """
    for rows, raws, _orders in per_bank_records:
        positive = raws > 0
        rows = rows[positive]
        if not len(rows):
            continue
        unique, inverse = np.unique(rows, return_inverse=True)
        if entries is not None and len(unique) > entries:
            return "unknown"
        sums = np.bincount(inverse, weights=raws[positive])
        if sums.max() >= threshold:
            return "unknown"
    return "valid"


def replay_lane_vector(defense, timeline: RecordedTimeline
                       ) -> Tuple[str, int]:
    """Vectorized replay of one follower lane against the timeline.

    Returns ``(verdict, rfm_mitigations)``; the count is meaningful
    only for a ``"valid"`` verdict.  See the module docstring for the
    verdict contract.
    """
    if np is None:
        raise ImportError(NUMPY_IMPORT_HINT)
    tracker = defense.tracker
    if tracker == "none":
        return "valid", 0
    scale = 1 << defense.tracker_fraction_bits
    probe = defense._build_tracker(_bank_seed(defense, 0))
    records = timeline.records(defense.scheme, scale)

    if tracker == "graphene":
        return _sum_checks(records, probe.entries, probe._threshold_raw), 0

    if tracker == "prac":
        rows_per_bank = probe.rows_per_bank
        for rows, _raws, _orders in records:
            if len(rows) and (
                rows.min() < 0 or rows.max() >= rows_per_bank
            ):
                # The scalar kernel raises for out-of-range rows; rerun
                # the lane on the fast engine so the error is faithful.
                return "diverged", 0
        verdict = _sum_checks(records, None, probe._alert_raw)
        # Per-row counters only reset when an alert fires, so a raw sum
        # reaching the threshold *is* an alert: the check is exact.
        return ("diverged" if verdict == "unknown" else verdict), 0

    if tracker == "dsac":
        if defense.scheme == "impress-p":
            # The ImPress-P path re-weighs each record with log2();
            # leave float transcendentals to the exact scalar replay.
            return "unknown", 0
        # Unit records weigh exactly 1, so per-row sums are the counts.
        return _sum_checks(records, probe.entries,
                           probe.mitigation_threshold), 0

    if tracker == "para":
        p = probe.p
        impress_p = defense.scheme == "impress-p"
        per = timeline.banks_per_channel
        for flat, (rows, raws, _orders) in enumerate(records):
            if impress_p:
                raws = raws[raws > 0]   # zero-weight records skip the draw
                n_draws = len(raws)
            else:
                n_draws = len(rows)
            if not n_draws:
                continue
            rng = numpy_rng_from(
                random.Random(_bank_seed(defense, flat % per))
            )
            samples = rng.random_sample(n_draws)
            if impress_p:
                thresholds = np.minimum(
                    1.0, p * (raws.astype(np.float64) / scale)
                )
            else:
                thresholds = p
            if np.any(samples < thresholds):
                return "diverged", 0
        return "valid", 0

    if tracker == "mint":
        span = probe.rfmth * probe._scale  # the tracker's own SAN span
        per = timeline.banks_per_channel
        mitigated = 0
        for flat, (rows, raws, orders) in enumerate(records):
            rfm_orders = timeline.banks[flat].rfm_orders
            if not len(rfm_orders):
                continue
            rng = random.Random(_bank_seed(defense, flat % per))
            san = rng.randrange(span) + 1     # drawn at construction
            # CAN is a running raw sum reset at each RFM, so the SAN
            # slot is covered within an interval iff the interval's raw
            # sum reaches it.
            intervals = np.searchsorted(rfm_orders, orders)
            sums = np.bincount(
                intervals, weights=raws, minlength=len(rfm_orders) + 1
            )
            for i in range(len(rfm_orders)):
                if sums[i] >= san:
                    mitigated += 1
                san = rng.randrange(span) + 1  # redrawn by every on_rfm
        return "valid", mitigated

    if tracker == "mithril":
        mitigated = 0
        for flat, (rows, raws, orders) in enumerate(records):
            rfm_orders = timeline.banks[flat].rfm_orders
            if not len(rfm_orders):
                continue
            positive = np.nonzero(raws > 0)[0]
            if not len(positive):
                continue
            # Entries are never removed (eviction replaces), so on_rfm
            # mitigates at every RFM after the first positive record.
            first = orders[positive[0]]
            mitigated += int(np.count_nonzero(rfm_orders > first))
        return "valid", mitigated

    return "unknown", 0


def replay_lane_python(defense, timings, banks_per_channel: int,
                       channels: int, bank_logs) -> Tuple[bool, int]:
    """Exact scalar replay through the real scheme/tracker kernels.

    ``bank_logs`` is the recorder's raw per-bank event lists (flat bank
    order, one ``(kinds, rows, a, b)`` quadruple per bank).  Builds the
    lane's own scheme per channel — the same construction, seeds and
    kernel objects a real simulation would use — and drives the events
    through it.  Returns ``(valid, rfm_mitigations)``; ``valid`` is
    False as soon as any act/close kernel fires a mitigation, at which
    point the lane must be re-simulated for real.  Exceptions (e.g.
    PRAC's out-of-range row) are the caller's cue to re-simulate too,
    so the error surfaces from the real engine.
    """
    mitigated = 0
    for channel in range(channels):
        scheme = defense.build_scheme(timings, banks_per_channel)
        act_kernels = scheme.act_kernels()
        close_kernels = scheme.close_kernels()
        rfm_kernels = scheme.rfm_kernels()
        for bank in range(banks_per_channel):
            log = bank_logs[channel * banks_per_channel + bank]
            act_kernel = act_kernels[bank]
            close_kernel = close_kernels[bank]
            rfm_kernel = rfm_kernels[bank]
            for kind, row, a, b in zip(log.kinds, log.rows, log.a, log.b):
                if kind == EV_ACT:
                    if act_kernel is not None and act_kernel(row):
                        return False, 0
                elif kind == EV_CLOSE:
                    if close_kernel is not None and close_kernel(row, a, b):
                        return False, 0
                elif rfm_kernel(a) is not None:
                    mitigated += 1
    return True, mitigated
