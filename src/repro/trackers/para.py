"""PARA: probabilistic aggressor mitigation at the memory controller.

PARA (Kim et al., ISCA 2014) selects each activation for mitigation with
a small probability ``p`` chosen for a target failure rate.  It keeps no
state, which makes it trivially compatible with ImPress-P: the selection
probability simply scales with EACT — an access that kept its row open
for 2.5 tRC is selected with probability ``min(1, 2.5 * p)``
(Section VI-C of the ImPress paper).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from .base import RawRecordKernel, Tracker

#: Per-attack escape probability implied by the paper's p = 1/184 at
#: TRH = 4K for a 0.1 FIT bank-failure target (Section III-B).
PAPER_ESCAPE_PROBABILITY = 3.7e-10


def para_probability(
    trh: float, escape_probability: float = PAPER_ESCAPE_PROBABILITY
) -> float:
    """Mitigation probability for a Rowhammer threshold.

    An aggressor escapes if none of its ``trh`` activations is selected:
    ``(1 - p) ** trh <= escape_probability``, so
    ``p = -ln(escape_probability) / trh``.  The default target reproduces
    the paper's p = 1/184 at TRH = 4K (and 1/92 at the halved threshold
    used by ExPress / ImPress-N with alpha = 1).
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    if not 0 < escape_probability < 1:
        raise ValueError("escape_probability must be in (0, 1)")
    return min(1.0, -math.log(escape_probability) / trh)


def para_failure_probability(p: float, trh: float) -> float:
    """Probability an aggressor reaches ``trh`` ACTs with no mitigation."""
    if not 0 <= p <= 1:
        raise ValueError("p must be a probability")
    if p == 1.0:
        return 0.0
    return (1.0 - p) ** trh


class ParaTracker(Tracker):
    """Stateless probabilistic tracker.

    ``record(row, weight)`` mitigates ``row`` with probability
    ``min(1, p * weight)``; with integer weight 1 this is classic PARA,
    with fractional EACT weights it is ImPress-P's variable-probability
    PARA.

    The kernel surface draws from the *same* RNG in the same order as
    ``record`` (one draw per non-zero-weight activation), so sequences
    stay reproducible whichever surface drives the tracker.
    """

    in_dram = False

    __slots__ = ("p", "rng", "mitigations")

    def __init__(self, p: float, rng: Optional[random.Random] = None) -> None:
        if not 0 < p <= 1:
            raise ValueError("p must be in (0, 1]")
        self.p = p
        self.rng = rng or random.Random(0)
        self.mitigations = 0

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Select ``row`` for mitigation with probability ``p * weight``.

        ``weight`` is the access's EACT under ImPress-P, making the
        selection probability proportional to row-open time; weight 1
        is classic per-ACT PARA.
        """
        if weight < 0:
            raise ValueError("weight must be non-negative")
        if weight == 0:
            return []
        if self.rng.random() < min(1.0, self.p * weight):
            self.mitigations += 1
            return [row]
        return []

    def record_unit(self, row: int) -> int:
        """Kernel surface: one unit ACT, selection probability ``p``."""
        if self.rng.random() < self.p:
            self.mitigations += 1
            return 1
        return 0

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """Selection with probability ``p * raw / scale`` (any scale).

        PARA keeps no counters, so any fixed-point scale works — the
        kernel reconstructs the exact float weight (``raw / scale`` is
        exact for power-of-two scales) before the draw.
        """
        p = self.p

        def _kernel(row: int, raw: int) -> int:
            if raw == 0:
                return 0
            if self.rng.random() < min(1.0, p * (raw / scale)):
                self.mitigations += 1
                return 1
            return 0

        return _kernel

    def snapshot(self) -> object:
        """The RNG stream position and the mitigation count."""
        return (self.rng.getstate(), self.mitigations)

    def restore(self, state: object) -> None:
        """Rewind the RNG and the count to a :meth:`snapshot` value."""
        rng_state, mitigations = state
        self.rng.setstate(rng_state)
        self.mitigations = mitigations

    def reset(self) -> None:
        """PARA keeps no state."""
