"""Common interface for Rowhammer trackers.

A tracker observes activations — possibly fractional, once ImPress-P
converts row-open time into EACT — and decides which aggressor rows to
mitigate.  Memory-controller-based trackers (Graphene, PARA) return
mitigations synchronously from :meth:`Tracker.record`; in-DRAM trackers
(Mithril, MINT) accumulate state and mitigate only when the controller
issues an RFM command (:meth:`Tracker.on_rfm`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Tracker(abc.ABC):
    """Abstract aggressor-row tracker."""

    #: True for trackers that live inside the DRAM chip and mitigate
    #: under RFM; False for memory-controller-based trackers.
    in_dram: bool = False

    @abc.abstractmethod
    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Observe ``weight`` (E)ACTs on ``row``.

        Returns the aggressor rows that must be mitigated immediately
        (always empty for in-DRAM trackers).
        """

    def on_rfm(self, cycle: int = 0) -> Optional[int]:
        """Called when an RFM command arrives (in-DRAM trackers only).

        Returns the aggressor row to mitigate under this RFM, or None.
        """
        return None

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all tracking state (e.g. at the refresh window boundary)."""


@dataclass
class AccountingTracker(Tracker):
    """A tracker that only records: per-row accumulated (E)ACT weight.

    Used by the security verifier to measure how much damage a defense
    *credits* to a row, which is then compared against the true charge
    loss from the unified model.  It never mitigates.
    """

    in_dram: bool = False
    recorded: Dict[int, float] = field(default_factory=dict)
    total: float = 0.0

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Accumulate the (E)ACT weight credited to ``row``; never mitigates."""
        self.recorded[row] = self.recorded.get(row, 0.0) + weight
        self.total += weight
        return []

    def recorded_for(self, row: int) -> float:
        """Charge-accounting total the defense has credited to ``row``."""
        return self.recorded.get(row, 0.0)

    def reset(self) -> None:
        """Forget all per-row accounting (refresh-window boundary)."""
        self.recorded.clear()
        self.total = 0.0
