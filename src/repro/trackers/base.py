"""Common interface for Rowhammer trackers.

A tracker observes activations — possibly fractional, once ImPress-P
converts row-open time into EACT — and decides which aggressor rows to
mitigate.  Memory-controller-based trackers (Graphene, PARA) return
mitigations synchronously from :meth:`Tracker.record`; in-DRAM trackers
(Mithril, MINT) accumulate state and mitigate only when the controller
issues an RFM command (:meth:`Tracker.on_rfm`).

**Two record surfaces.**  :meth:`Tracker.record` is the readable,
validated API used by tests, the security verifier and attack replays:
it takes a float weight and returns the mitigated rows as a list.  The
simulator hot path instead goes through the *kernel* surface —
:meth:`Tracker.record_unit` and :meth:`Tracker.raw_kernel` — which
works on pre-scaled integers, allocates nothing per call, and returns a
plain mitigation count.  The mitigation schemes
(:mod:`repro.core.mitigation`) bind these kernels per bank once at
construction, so a row close costs one dict update instead of three
layers of dynamic dispatch.  Every concrete tracker implements both
surfaces over the *same* state, and the golden-sequence tests
(``tests/test_tracker_golden.py``) pin them to the original per-call
implementations bit for bit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Kernel-surface callable: ``(row, raw_weight) -> mitigation count``.
RawRecordKernel = Callable[[int, int], int]


class Tracker(abc.ABC):
    """Abstract aggressor-row tracker."""

    __slots__ = ()

    #: True for trackers that live inside the DRAM chip and mitigate
    #: under RFM; False for memory-controller-based trackers.
    in_dram: bool = False

    @abc.abstractmethod
    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Observe ``weight`` (E)ACTs on ``row``.

        Returns the aggressor rows that must be mitigated immediately
        (always empty for in-DRAM trackers).
        """

    def on_rfm(self, cycle: int = 0) -> Optional[int]:
        """Called when an RFM command arrives (in-DRAM trackers only).

        Returns the aggressor row to mitigate under this RFM, or None.
        """
        return None

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all tracking state (e.g. at the refresh window boundary)."""

    # -- kernel surface (simulator hot path) ---------------------------

    def record_unit(self, row: int) -> int:
        """Record one unit ACT on ``row``; returns the mitigation count.

        Kernel-surface equivalent of ``len(record(row, 1.0))``.  The
        default delegates to :meth:`record`; concrete trackers override
        it with an allocation-free integer path.
        """
        return len(self.record(row, 1.0))

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """A ``(row, raw) -> count`` kernel for fixed-point weights.

        ``raw`` is the weight in units of ``1/scale`` (``scale`` a power
        of two — the caller's fraction-bit denominator).  Returns None
        when the tracker cannot consume raw weights at that scale, in
        which case the caller falls back to :meth:`record` with the
        equivalent float weight.
        """
        return None

    # -- checkpointing (engine snapshot/restore) ------------------------

    def snapshot(self) -> object:
        """Opaque copy of all mutable tracking state.

        Restoring it with :meth:`restore` must reproduce the tracker's
        behavior bit for bit, including any RNG stream.  The value is
        treated as immutable by callers; every concrete tracker returns
        copies of its containers, never the live objects.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def restore(self, state: object) -> None:
        """Write a :meth:`snapshot` value back into the live tracker.

        Containers are mutated *in place* (``clear`` + ``update``), not
        rebound: kernel closures built at construction may have captured
        references to them, and rebinding would silently split the
        state the kernels mutate from the state the tracker reads.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )


@dataclass(slots=True)
class AccountingTracker(Tracker):
    """A tracker that only records: per-row accumulated (E)ACT weight.

    Used by the security verifier to measure how much damage a defense
    *credits* to a row, which is then compared against the true charge
    loss from the unified model.  It never mitigates.
    """

    in_dram: bool = False
    recorded: Dict[int, float] = field(default_factory=dict)
    total: float = 0.0

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Accumulate the (E)ACT weight credited to ``row``; never mitigates."""
        self.recorded[row] = self.recorded.get(row, 0.0) + weight
        self.total += weight
        return []

    def record_unit(self, row: int) -> int:
        """Kernel surface: one unit ACT, no list allocation."""
        recorded = self.recorded
        recorded[row] = recorded.get(row, 0.0) + 1.0
        self.total += 1.0
        return 0

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """Accumulate ``raw/scale`` exactly (scale is a power of two)."""
        recorded = self.recorded

        def _kernel(row: int, raw: int) -> int:
            weight = raw / scale
            recorded[row] = recorded.get(row, 0.0) + weight
            self.total += weight
            return 0

        return _kernel

    def recorded_for(self, row: int) -> float:
        """Charge-accounting total the defense has credited to ``row``."""
        return self.recorded.get(row, 0.0)

    def snapshot(self) -> object:
        """Copy of the per-row accounting table and the running total."""
        return (dict(self.recorded), self.total)

    def restore(self, state: object) -> None:
        """In-place restore (``raw_kernel`` closures captured the dict)."""
        recorded, total = state
        self.recorded.clear()
        self.recorded.update(recorded)
        self.total = total

    def reset(self) -> None:
        """Forget all per-row accounting (refresh-window boundary)."""
        self.recorded.clear()
        self.total = 0.0
