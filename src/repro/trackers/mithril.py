"""Mithril: in-DRAM counter-based summary tracking under RFM.

Mithril (Kim et al., HPCA 2022) keeps a Counter-based Summary (a
Misra-Gries-style table) inside the DRAM chip.  The memory controller
issues an RFM command every ``RFMTH`` activations per bank; under each
RFM, Mithril mitigates the row with the highest counter and resets that
counter to the current spillover floor.  Because mitigation happens under
RFM, the access pattern cannot change Mithril's performance cost
(Appendix B of the ImPress paper).

For ImPress-P, each counter is widened by 7 fractional bits and
incremented by EACT instead of 1 (Section VI-C).

**Kernel engineering.**  Both lazy heaps hold packed ints instead of
tuples: the min-heap packs ``(count << 32) | row`` and the max-heap
packs ``row - (count << 32)`` (rows sit in the low 32 bits, so integer
order equals the original ``(count, row)`` / ``(-count, row)`` tuple
order, tie-break included).  Each record does two int pushes and zero
container allocations; :meth:`record_unit`/:meth:`raw_kernel` feed the
kernel raw fixed-point weights straight from the mitigation scheme.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from .base import RawRecordKernel, Tracker

_ROW_BITS = 32
_ROW_MASK = (1 << _ROW_BITS) - 1


class MithrilTracker(Tracker):
    """Per-bank Mithril instance (in-DRAM)."""

    in_dram = True

    __slots__ = (
        "entries",
        "fraction_bits",
        "_scale",
        "_table",
        "_spill",
        "_heap",
        "_min_heap",
        "mitigations",
    )

    def __init__(self, entries: int, fraction_bits: int = 0) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        self.entries = entries
        self.fraction_bits = fraction_bits
        self._scale = 1 << fraction_bits
        self._table: Dict[int, int] = {}
        self._spill = 0
        # Lazy max-heap (row - (count << 32)) for top-row retrieval at
        # RFM and lazy min-heap ((count << 32) | row) for Misra-Gries
        # eviction; stale entries are discarded on pop so both stay
        # O(log n) amortized.
        self._heap: List[int] = []
        self._min_heap: List[int] = []
        self.mitigations = 0

    def count_for(self, row: int) -> float:
        """Tracked (E)ACT count of ``row`` (0 when untracked)."""
        return self._table.get(row, 0) / self._scale

    @property
    def spillover(self) -> float:
        """Misra-Gries spillover floor (in ACT units) untracked rows share."""
        return self._spill / self._scale

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Credit ``weight`` (E)ACTs to ``row`` in the in-DRAM summary.

        Counters carry ImPress-P's fractional EACT bits when configured;
        mitigation is deferred to :meth:`on_rfm`, so this always returns
        an empty list.
        """
        raw = int(weight * self._scale)
        if raw < 0:
            raise ValueError("weight must be non-negative")
        self._kernel(row, raw)
        return []

    def record_unit(self, row: int) -> int:
        """Kernel surface: one unit ACT (raw weight = scale)."""
        return self._kernel(row, self._scale)

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """The integer kernel, valid only at the tracker's own scale."""
        if scale != self._scale:
            return None
        return self._kernel

    def _kernel(self, row: int, raw: int) -> int:
        """Misra-Gries update with a raw fixed-point weight.

        Always returns 0: Mithril mitigates under RFM, never here.
        """
        if raw == 0:
            return 0
        table = self._table
        count = table.get(row)
        if count is not None:
            count += raw
            table[row] = count
            shifted = count << _ROW_BITS
            heappush(self._heap, row - shifted)
            heappush(self._min_heap, shifted | row)
        elif len(table) < self.entries:
            count = self._spill + raw
            table[row] = count
            shifted = count << _ROW_BITS
            heappush(self._heap, row - shifted)
            heappush(self._min_heap, shifted | row)
        else:
            self._spill += raw
            self._swap_if_caught_up(row)
        return 0

    def _swap_if_caught_up(self, row: int) -> None:
        """Evict the minimum entry once spillover reaches it (Misra-Gries)."""
        min_heap = self._min_heap
        table = self._table
        while min_heap:
            packed = min_heap[0]
            candidate = packed & _ROW_MASK
            count = packed >> _ROW_BITS
            current = table.get(candidate)
            if current is None or current != count:
                heappop(min_heap)
                if current is not None:
                    heappush(min_heap, (current << _ROW_BITS) | candidate)
                continue
            if self._spill >= count:
                heappop(min_heap)
                del table[candidate]
                spill = self._spill
                table[row] = spill
                shifted = spill << _ROW_BITS
                heappush(self._heap, row - shifted)
                heappush(min_heap, shifted | row)
            return

    def on_rfm(self, cycle: int = 0) -> Optional[int]:
        """Mitigate the hottest tracked row; reset it to the spill floor."""
        heap = self._heap
        table = self._table
        while heap:
            packed = heap[0]
            row = packed & _ROW_MASK
            count = (row - packed) >> _ROW_BITS
            current = table.get(row)
            if current is None or current != count:
                heappop(heap)
                continue
            heappop(heap)
            spill = self._spill
            table[row] = spill
            shifted = spill << _ROW_BITS
            heappush(heap, row - shifted)
            heappush(self._min_heap, shifted | row)
            self.mitigations += 1
            return row
        return None

    def record_batch(self, rows: List[int]) -> None:
        """Record one unit ACT for each row (attack-replay convenience)."""
        kernel = self._kernel
        scale = self._scale
        for row in rows:
            kernel(row, scale)

    def reset(self) -> None:
        """Clear the summary and spillover (refresh-window boundary)."""
        self._table.clear()
        self._heap.clear()
        self._min_heap.clear()
        self._spill = 0

    def snapshot(self) -> object:
        """Copy of the table, spillover, both heaps and the count."""
        return (dict(self._table), self._spill, list(self._heap),
                list(self._min_heap), self.mitigations)

    def restore(self, state: object) -> None:
        """In-place restore of a :meth:`snapshot` value."""
        table, spill, heap, min_heap, mitigations = state
        self._table.clear()
        self._table.update(table)
        self._heap[:] = heap
        self._min_heap[:] = min_heap
        self._spill = spill
        self.mitigations = mitigations
