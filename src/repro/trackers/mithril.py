"""Mithril: in-DRAM counter-based summary tracking under RFM.

Mithril (Kim et al., HPCA 2022) keeps a Counter-based Summary (a
Misra-Gries-style table) inside the DRAM chip.  The memory controller
issues an RFM command every ``RFMTH`` activations per bank; under each
RFM, Mithril mitigates the row with the highest counter and resets that
counter to the current spillover floor.  Because mitigation happens under
RFM, the access pattern cannot change Mithril's performance cost
(Appendix B of the ImPress paper).

For ImPress-P, each counter is widened by 7 fractional bits and
incremented by EACT instead of 1 (Section VI-C).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .base import Tracker


class MithrilTracker(Tracker):
    """Per-bank Mithril instance (in-DRAM)."""

    in_dram = True

    def __init__(self, entries: int, fraction_bits: int = 0) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        if fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        self.entries = entries
        self.fraction_bits = fraction_bits
        self._scale = 1 << fraction_bits
        self._table: Dict[int, int] = {}
        self._spill = 0
        # Lazy max-heap (negated counts) for top-row retrieval at RFM and
        # lazy min-heap for Misra-Gries eviction; stale entries are
        # discarded on pop so both stay O(log n) amortized.
        self._heap: List[Tuple[int, int]] = []
        self._min_heap: List[Tuple[int, int]] = []
        self.mitigations = 0

    def count_for(self, row: int) -> float:
        """Tracked (E)ACT count of ``row`` (0 when untracked)."""
        return self._table.get(row, 0) / self._scale

    @property
    def spillover(self) -> float:
        """Misra-Gries spillover floor (in ACT units) untracked rows share."""
        return self._spill / self._scale

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Credit ``weight`` (E)ACTs to ``row`` in the in-DRAM summary.

        Counters carry ImPress-P's fractional EACT bits when configured;
        mitigation is deferred to :meth:`on_rfm`, so this always returns
        an empty list.
        """
        raw = int(weight * self._scale)
        if raw < 0:
            raise ValueError("weight must be non-negative")
        if raw == 0:
            return []
        count = self._table.get(row)
        if count is not None:
            count += raw
            self._table[row] = count
            heapq.heappush(self._heap, (-count, row))
            heapq.heappush(self._min_heap, (count, row))
        elif len(self._table) < self.entries:
            count = self._spill + raw
            self._table[row] = count
            heapq.heappush(self._heap, (-count, row))
            heapq.heappush(self._min_heap, (count, row))
        else:
            self._spill += raw
            self._swap_if_caught_up(row)
        return []

    def _swap_if_caught_up(self, row: int) -> None:
        """Evict the minimum entry once spillover reaches it (Misra-Gries)."""
        while self._min_heap:
            count, candidate = self._min_heap[0]
            current = self._table.get(candidate)
            if current is None or current != count:
                heapq.heappop(self._min_heap)
                if current is not None:
                    heapq.heappush(self._min_heap, (current, candidate))
                continue
            if self._spill >= count:
                heapq.heappop(self._min_heap)
                del self._table[candidate]
                self._table[row] = self._spill
                heapq.heappush(self._heap, (-self._spill, row))
                heapq.heappush(self._min_heap, (self._spill, row))
            return

    def on_rfm(self, cycle: int = 0) -> Optional[int]:
        """Mitigate the hottest tracked row; reset it to the spill floor."""
        while self._heap:
            neg_count, row = self._heap[0]
            current = self._table.get(row)
            if current is None or current != -neg_count:
                heapq.heappop(self._heap)
                continue
            heapq.heappop(self._heap)
            self._table[row] = self._spill
            heapq.heappush(self._heap, (-self._spill, row))
            heapq.heappush(self._min_heap, (self._spill, row))
            self.mitigations += 1
            return row
        return None

    def record_batch(self, rows: List[int]) -> None:
        """Record one unit ACT for each row (attack-replay convenience)."""
        for row in rows:
            self.record(row)

    def reset(self) -> None:
        """Clear the summary and spillover (refresh-window boundary)."""
        self._table.clear()
        self._heap.clear()
        self._min_heap.clear()
        self._spill = 0
