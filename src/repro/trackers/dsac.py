"""DSAC-style time-weighted counting, as critiqued in Section VII.

DSAC (Hong et al., 2023) weighs activations by a *logarithmic* function
of the row-open time.  The ImPress paper's Related Work shows why this
underestimates Row-Press: at tON = 256 tRC the logarithmic weight is
about 8, whereas the characterization demands ~0.48 * 256 = 122 — a 15x
underestimate that an attacker converts into unmitigated charge loss.

We implement the weighting so the critique is reproducible: the
:mod:`repro.security` verifier run against this weighting exhibits the
threshold collapse the paper predicts.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .base import RawRecordKernel, Tracker

_log2 = math.log2


def dsac_weight(ton_trc: float) -> float:
    """DSAC's logarithmic time weight for a row open ``ton_trc``.

    Normalized so a minimal access (1 tRC) weighs 1 and tON = 256 tRC
    weighs 8 (the paper's example): weight = 1 + log2(tON/tRC) * 7/8.
    """
    if ton_trc < 1.0:
        raise ValueError("tON cannot be below one tRC")
    return 1.0 + _log2(ton_trc) * (7.0 / 8.0)


def impress_weight(ton_trc: float, alpha: float = 0.48) -> float:
    """The linear weight the characterization requires (CLM, Eq 3)."""
    if ton_trc < 1.0:
        raise ValueError("tON cannot be below one tRC")
    return 1.0 + alpha * (ton_trc - 0.75)


def underestimation_factor(ton_trc: float, alpha: float = 0.48) -> float:
    """How far DSAC's weight falls below the required weight."""
    return impress_weight(ton_trc, alpha) / dsac_weight(ton_trc)


class DsacLikeTracker(Tracker):
    """A counter tracker that applies the DSAC weighting itself.

    ``record`` receives the access's open time (in tRC units) as the
    weight and *re-weighs* it logarithmically — in contrast to ImPress-P
    trackers, which accumulate the weight they are given.  Two further
    DSAC properties the paper criticizes are modeled: newly-installed
    rows always start at weight 1 (Row-Press on insertion is ignored),
    and counters are integer-valued.

    The table is a plain int dict; eviction keeps the original
    first-minimum (insertion-order tie-break) semantics.  The kernel
    surface (:meth:`record_unit` / :meth:`raw_kernel`) runs the same
    update without per-call list allocation — a unit activation's DSAC
    weight is exactly 1, so ``record_unit`` skips the logarithm.
    """

    in_dram = True

    __slots__ = ("entries", "mitigation_threshold", "_table", "mitigations")

    def __init__(self, entries: int, mitigation_threshold: float) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        if mitigation_threshold <= 0:
            raise ValueError("mitigation_threshold must be positive")
        self.entries = entries
        self.mitigation_threshold = mitigation_threshold
        self._table: dict = {}
        self.mitigations = 0

    def record(self, row: int, weight: float = 1.0, cycle: int = 0) -> List[int]:
        """Credit ``row`` with DSAC's logarithmic time weight.

        ``weight`` carries the access's row-open time in tRC units; the
        tracker re-weighs it with :func:`dsac_weight`, reproducing the
        underestimation the paper's Section VII critique exploits.
        """
        ton_trc = weight if weight > 1.0 else 1.0
        return [row] if self._kernel_ton(row, ton_trc) else []

    def record_unit(self, row: int) -> int:
        """Kernel surface: unit ACT; dsac_weight(1) is exactly 1."""
        table = self._table
        count = table.get(row)
        if count is not None:
            count += 1
            table[row] = count
        elif len(table) < self.entries:
            count = 1
            table[row] = 1
        else:
            victim = min(table, key=table.__getitem__)
            del table[victim]
            count = 1
            table[row] = 1
        if count >= self.mitigation_threshold:
            table[row] = 0
            self.mitigations += 1
            return 1
        return 0

    def raw_kernel(self, scale: int) -> Optional[RawRecordKernel]:
        """Kernel taking the open time as a raw ``1/scale`` fixed-point.

        Any power-of-two scale works: the kernel reconstructs the exact
        float open time (``raw / scale`` is exact) before re-weighing.
        """
        kernel_ton = self._kernel_ton

        def _kernel(row: int, raw: int) -> int:
            ton_trc = raw / scale
            return kernel_ton(row, ton_trc if ton_trc > 1.0 else 1.0)

        return _kernel

    def _kernel_ton(self, row: int, ton_trc: float) -> int:
        """DSAC update for an access open ``ton_trc`` (>= 1) tRC units."""
        table = self._table
        count = table.get(row)
        if count is not None:
            count += int(1.0 + _log2(ton_trc) * (7.0 / 8.0))
            table[row] = count
        elif len(table) < self.entries:
            count = 1  # problem 2: installation weight is 1
            table[row] = 1
        else:
            victim = min(table, key=table.__getitem__)
            del table[victim]
            count = 1
            table[row] = 1
        if count >= self.mitigation_threshold:
            table[row] = 0
            self.mitigations += 1
            return 1
        return 0

    def count_for(self, row: int) -> float:
        """Integer weight DSAC has accumulated for ``row``."""
        return float(self._table.get(row, 0))

    def reset(self) -> None:
        """Clear the counter table (refresh-window boundary)."""
        self._table.clear()

    def snapshot(self) -> object:
        """Copy of the counter table and the mitigation count.

        The dict copy preserves insertion order, which matters here:
        eviction tie-breaks on first-minimum, i.e. insertion order.
        """
        return (dict(self._table), self.mitigations)

    def restore(self, state: object) -> None:
        """In-place restore of a :meth:`snapshot` value."""
        table, mitigations = state
        self._table.clear()
        self._table.update(table)
        self.mitigations = mitigations
