"""Shared cache instrumentation.

One counters shape for every process-local cache in the repo (the
compiled-trace cache, the :class:`~repro.experiments.common.SweepRunner`
run cache), so ``repro bench`` serializes them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheStats:
    """Hit/miss/size counters for a process-local cache."""

    hits: int = 0
    misses: int = 0
    size: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> Dict[str, float]:
        """The counters as the artifact dict shape ``repro bench`` writes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "hit_rate": self.hit_rate,
        }
