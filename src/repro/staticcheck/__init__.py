"""AST-based contract checker: ``repro check`` (see docs/static_analysis.md).

The simulation's headline guarantee — byte-identical results across
engines, workers, crashes and replays — rests on source-level
disciplines (canonical-key hygiene, atomic-rename finality, hot-path
allocation freedom, seeded determinism) that were historically enforced
by review and bled for twice.  This package mechanizes them: a
:class:`~repro.staticcheck.engine.Rule` registry (the experiment-
registry idiom), a per-file parse cache, structured
:class:`~repro.staticcheck.engine.Finding` output, and counted inline
suppressions (``# repro: allow[rule-id] reason``).
"""

from .engine import (  # noqa: F401
    Finding,
    Suppression,
    CheckReport,
    ParsedFile,
    Rule,
    FileRule,
    all_rules,
    get_rules,
    register_rule,
    run_check,
    collect_files,
)
from . import rules  # noqa: F401  (registers the repo's rule set)
