"""Command surface for ``repro check``.

Follows the bench-module split: :func:`add_check_arguments` installs
the options, :func:`command_from_args` executes them, and both the
``repro check`` subcommand and the ``tools/staticcheck_smoke.py`` CI
wrapper build on the same pair so the two surfaces cannot drift.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from .engine import CheckReport, all_rules, run_check

#: Directories ``repro check`` sweeps when no explicit paths are given —
#: the same scope the CI static-smoke job gates on.
DEFAULT_PATHS = ("src", "tools")


def changed_files(ref: str, root: Optional[Path] = None) -> List[Path]:
    """Python files changed relative to ``ref`` (``git diff`` + untracked).

    Used by ``--changed`` so the pre-commit loop only parses the files
    the commit actually touches.  Raises ``RuntimeError`` when git is
    unavailable or ``ref`` is unknown — the caller must not silently
    check nothing.
    """
    root = Path(root) if root is not None else Path.cwd()
    files: List[Path] = []
    for cmd in (
        ["git", "diff", "--name-only", ref],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            cmd, cwd=root, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(cmd)} failed: {proc.stderr.strip()}"
            )
        for line in proc.stdout.splitlines():
            path = root / line.strip()
            if path.suffix == ".py" and path.is_file():
                files.append(path)
    return sorted(set(files))


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``check`` options on ``parser``.

    Shared by ``repro check`` (:mod:`repro.cli`) and the standalone
    ``tools/staticcheck_smoke.py`` wrapper.
    """
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check "
             f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", default=None,
        metavar="RULE_ID",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the structured report as JSON on stdout",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="check only files changed vs REF (git diff --name-only; "
             "default REF: HEAD) plus untracked files",
    )
    parser.add_argument(
        "--root", default=None,
        help="directory findings are reported relative to "
             "(default: current directory)",
    )


def _list_rules() -> int:
    width = max(len(rule.rule_id) for rule in all_rules())
    for rule in all_rules():
        print(f"{rule.rule_id.ljust(width)}  {rule.summary}")
    return 0


def report_from_args(args: argparse.Namespace) -> CheckReport:
    """Run the check described by parsed ``check`` arguments."""
    root = Path(args.root) if args.root else Path.cwd()
    if args.changed is not None:
        paths: List[Path] = changed_files(args.changed, root)
    elif args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [root / part for part in DEFAULT_PATHS]
    return run_check(paths, rule_ids=args.rules, root=root)


def command_from_args(args: argparse.Namespace) -> int:
    """Execute ``repro check`` from parsed arguments; returns exit code."""
    if args.list_rules:
        return _list_rules()
    try:
        report = report_from_args(args)
    except (KeyError, RuntimeError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """Parser for the standalone ``tools/staticcheck_smoke.py`` script."""
    parser = argparse.ArgumentParser(prog="staticcheck", description=__doc__)
    add_check_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by ``repro check`` and the CI smoke wrapper."""
    return command_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
