"""The repo's rule set: each rule mechanizes a contract we bled for.

Every rule below encodes a discipline this codebase already violated
and hand-fixed once (see docs/static_analysis.md for the full history):

* ``no-repr-key`` — the PR 5 repr-based recipe-hash bug: cosmetic
  dataclass changes silently invalidated every cached artifact.
* ``rename-is-final`` — the PR 7 write-after-rename queue races: a
  file written after being renamed into a claimable state resurrects
  state a faster claimant already owns.
* ``atomic-write-only`` — durable store/queue/journal state must go
  through the temp + ``os.replace`` helpers, or a crash mid-write
  leaves torn JSON that reads back as an empty index.
* ``slots-on-hot-classes`` — the PR 2/3 hot-path work made per-event
  allocation the enemy; ``__slots__`` keeps instance layout flat and
  catches attribute typos in kernels.
* ``no-alloc-in-kernels`` — the PR 3 allocation-free tracker kernels:
  a list/dict born per ACT re-introduces the dispatch overhead the
  kernels exist to remove.
* ``no-wallclock-nondeterminism`` — byte-identical replay dies the
  moment simulation state reads the clock or an unseeded RNG.
* ``simresult-parity`` — the "new metric collected by one engine only"
  bug class: engines must assign the same ``SimResult`` fields, and
  the batch tier's follower substitution list must keep covering every
  mutable field.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import FileRule, Finding, ParsedFile, Rule, register_rule

# -- shared AST helpers ----------------------------------------------------


def _call_name(node: ast.Call) -> str:
    """The dotted name a call resolves to (best effort), e.g. ``os.rename``."""
    parts: List[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


def _last_segment(node: ast.Call) -> str:
    name = _call_name(node)
    return name.rsplit(".", 1)[-1] if name else ""


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _arg_name(node: ast.AST) -> Optional[str]:
    return node.id if isinstance(node, ast.Name) else None


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# -- no-repr-key -----------------------------------------------------------


#: Call sites whose arguments form canonical recipes.  ``repr``/``str``
#: of a Python object must never reach them.
_KEY_SINKS = {"content_key", "canonical_json"}

#: Stringification forms that smuggle object ``repr`` cosmetics into a
#: hash: direct builtins, ``.format``, and f-strings.
_STRINGIFIERS = {"repr", "str", "format", "ascii"}


@register_rule
class NoReprKey(FileRule):
    """No ``repr()``/``str()``/f-strings inside canonical-key recipes.

    PR 5 replaced a ``sha256(repr(config))`` hash precisely because a
    cosmetic dataclass change (field order, a new default) silently
    invalidated every cached artifact.  Recipes handed to
    ``content_key`` / ``canonical_json`` must be plain data.
    """

    rule_id = "no-repr-key"
    summary = ("no repr()/str()/f-string inside content_key()/"
               "canonical_json() arguments")

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            if _last_segment(node) not in _KEY_SINKS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                yield from self._scan(parsed, arg)

    def _scan(self, parsed: ParsedFile, arg: ast.AST) -> Iterator[Finding]:
        for sub in ast.walk(arg):
            offender = None
            if isinstance(sub, ast.JoinedStr):
                offender = "an f-string"
            elif isinstance(sub, ast.Call):
                name = _call_name(sub)
                last = name.rsplit(".", 1)[-1]
                if name in _STRINGIFIERS:
                    offender = f"{name}()"
                elif last == "format" and "." in name:
                    offender = ".format()"
            elif (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mod)
                  and _str_const(sub.left) is not None):
                offender = "%-formatting"
            if offender is not None:
                yield Finding(
                    file=parsed.rel, line=sub.lineno, rule_id=self.rule_id,
                    message=(
                        f"{offender} inside a canonical-key recipe; keys "
                        "must be plain data (the PR 5 repr-hash bug class)"
                    ),
                )


# -- rename-is-final -------------------------------------------------------


#: Queue states the rename *winner* owns afterwards and may atomically
#: rewrite (the claim handshake, the poison record).  ``pending`` is a
#: handoff: once a file is renamed there, any write races the next
#: claimant — the exact PR 7 bug.
_OWNED_AFTER_RENAME = {"claimed", "poison"}

_ATOMIC_HELPERS = re.compile(r"^_?atomic_write")


@register_rule
class RenameIsFinal(FileRule):
    """A path passed to ``os.rename``/``os.replace`` is final.

    Mechanizes the queue/store/journal transition discipline: state is
    written into a file *before* the rename; the rename is the single
    visible step.  Afterwards, the source name must never be written
    (it would resurrect a file someone else now owns), and the
    destination may only be rewritten atomically when it is a state
    the winner owns (``claimed``/``poison`` — the claim handshake).
    A temp-named source must have been written before the rename.
    """

    rule_id = "rename-is-final"
    summary = ("no writes to a path after os.rename/os.replace moved it "
               "(queue/store/journal transition discipline)")
    scope = ("distrib/", "results/", "serve/")

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        for func in _functions(parsed.tree):
            yield from self._check_function(parsed, func)

    def _check_function(
        self, parsed: ParsedFile, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        states: Dict[str, str] = {}       # var -> queue state dir name
        renames: List[Tuple[int, Optional[str], Optional[str]]] = []
        writes: List[Tuple[int, str, bool]] = []   # (line, name, atomic)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = _arg_name(node.targets[0])
                if target and isinstance(node.value, ast.Call) \
                        and _last_segment(node.value) == "_path" \
                        and node.value.args:
                    state = _str_const(node.value.args[0])
                    if state is not None:
                        states[target] = state
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            last = name.rsplit(".", 1)[-1]
            if last in ("rename", "replace") and len(node.args) == 2 \
                    and (name.startswith("os.") or name == last):
                renames.append((
                    node.lineno,
                    _arg_name(node.args[0]),
                    _arg_name(node.args[1]),
                ))
            elif last in ("write_text", "write_bytes", "touch") \
                    and isinstance(node.func, ast.Attribute):
                receiver = _arg_name(node.func.value)
                if receiver:
                    writes.append((node.lineno, receiver, False))
            elif last == "open" and node.args:
                mode = _str_const(node.args[1]) if len(node.args) > 1 else "r"
                receiver = _arg_name(node.args[0])
                if receiver and mode and any(c in mode for c in "wax"):
                    writes.append((node.lineno, receiver, False))
            elif _ATOMIC_HELPERS.match(last) and node.args:
                receiver = _arg_name(node.args[0])
                if receiver:
                    writes.append((node.lineno, receiver, True))

        for line, src, dst in renames:
            if src is not None:
                for wline, wname, _atomic in writes:
                    if wname == src and wline > line:
                        yield Finding(
                            file=parsed.rel, line=wline,
                            rule_id=self.rule_id,
                            message=(
                                f"{wname!r} is written after being renamed "
                                f"away at line {line}; the rename must be "
                                "the last touch (PR 7 race class)"
                            ),
                        )
                if "tmp" in src.lower() and not any(
                    wname == src and wline < line
                    for wline, wname, _atomic in writes
                ):
                    yield Finding(
                        file=parsed.rel, line=line, rule_id=self.rule_id,
                        message=(
                            f"temp path {src!r} is renamed into place "
                            "without its content being written first in "
                            "this function"
                        ),
                    )
            if dst is not None:
                owned = states.get(dst) in _OWNED_AFTER_RENAME
                for wline, wname, atomic in writes:
                    if wname != dst or wline <= line:
                        continue
                    if owned and atomic:
                        continue      # the blessed claim/poison handshake
                    yield Finding(
                        file=parsed.rel, line=wline, rule_id=self.rule_id,
                        message=(
                            f"{wname!r} is written after the rename at "
                            f"line {line} handed it off"
                            + ("" if atomic else " (and the write is not "
                               "atomic)")
                            + "; write state before the rename instead"
                        ),
                    )


# -- atomic-write-only -----------------------------------------------------


#: Substrings naming write targets that are *not* durable data: the
#: temp half of the atomic idiom, empty lock sidecars, append-only
#: diagnostics.  Everything else in scope must go through the helpers.
_NON_DURABLE_TARGET = re.compile(r"tmp|lock|log", re.IGNORECASE)


@register_rule
class AtomicWriteOnly(FileRule):
    """Durable store/queue/journal files are written temp+replace only.

    A bare ``open(path, "w")`` or ``path.write_text(...)`` on a blob,
    index, claim or journal path can be interrupted mid-write, leaving
    torn JSON that reads back as corruption (or worse, an empty
    index).  All such writes go through the ``atomic_write_text`` /
    ``_atomic_write_json`` helpers; only temp files, lock sidecars and
    log streams may be written directly.  The chaos harnesses are
    excluded — manufacturing torn state is their job.
    """

    rule_id = "atomic-write-only"
    summary = ("no bare open(path, 'w')/write_text on durable "
               "store/queue/journal paths; use the temp+replace helpers")
    scope = ("distrib/", "results/", "serve/", "experiments/orchestrator.py")
    exclude = ("chaos",)

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        blessed_spans: List[Tuple[int, int]] = []
        for func in _functions(parsed.tree):
            if _ATOMIC_HELPERS.match(func.name):
                blessed_spans.append(
                    (func.lineno, func.end_lineno or func.lineno)
                )

        def in_blessed(line: int) -> bool:
            return any(lo <= line <= hi for lo, hi in blessed_spans)

        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            last = _last_segment(node)
            target: Optional[ast.AST] = None
            if last in ("write_text", "write_bytes") \
                    and isinstance(node.func, ast.Attribute):
                target = node.func.value
            elif last == "open" and node.args:
                mode = _str_const(node.args[1]) if len(node.args) > 1 else None
                for kw in node.keywords:
                    if kw.arg == "mode":
                        mode = _str_const(kw.value)
                if not (mode and any(c in mode for c in "wax")):
                    continue
                target = node.args[0]
            if target is None or in_blessed(node.lineno):
                continue
            name = _arg_name(target)
            if name and _NON_DURABLE_TARGET.search(name):
                continue
            shown = name or ast.unparse(target)
            yield Finding(
                file=parsed.rel, line=node.lineno, rule_id=self.rule_id,
                message=(
                    f"bare write to {shown!r}; durable paths must use "
                    "atomic_write_text/_atomic_write_json (temp + "
                    "os.replace) so a crash never leaves torn JSON"
                ),
            )


# -- slots-on-hot-classes --------------------------------------------------


_SLOTS_EXEMPT_BASES = ("Exception", "BaseException", "Protocol", "Enum",
                       "IntEnum", "Flag", "NamedTuple")


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        while isinstance(base, ast.Attribute):
            base = base.attr if isinstance(base.attr, str) else base.value
            if isinstance(base, str):
                names.append(base)
                break
        if isinstance(base, ast.Name):
            names.append(base.id)
    return names


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            _arg_name(t) == "__slots__" for t in stmt.targets
        ):
            return True
        if isinstance(stmt, ast.AnnAssign) \
                and _arg_name(stmt.target) == "__slots__":
            return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call) and _last_segment(deco) == "dataclass":
            for kw in deco.keywords:
                if kw.arg == "slots" and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is True:
                    return True
    return False


@register_rule
class SlotsOnHotClasses(FileRule):
    """Classes on the simulation hot path declare ``__slots__``.

    The engine allocates cores, banks, requests and tracker state by
    the million; ``__slots__`` (or ``@dataclass(slots=True)``) keeps
    the instance layout flat, halves per-instance memory, and turns
    kernel attribute typos into immediate AttributeErrors instead of
    silently minted dict entries.  Exceptions, Protocols and Enums are
    exempt (their metaclasses manage layout).
    """

    rule_id = "slots-on-hot-classes"
    summary = ("classes in sim/, trackers/, memctrl/ declare __slots__ "
               "or use @dataclass(slots=True)")
    scope = ("sim/", "trackers/", "memctrl/")

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            if any(
                base in _SLOTS_EXEMPT_BASES
                or base.endswith(("Error", "Exception", "Warning"))
                for base in bases
            ):
                continue
            if _declares_slots(node):
                continue
            yield Finding(
                file=parsed.rel, line=node.lineno, rule_id=self.rule_id,
                message=(
                    f"class {node.name!r} is on the hot path but declares "
                    "no __slots__ (use __slots__ = (...) or "
                    "@dataclass(slots=True))"
                ),
            )


# -- no-alloc-in-kernels ---------------------------------------------------


#: Outer functions whose *inner* defs are per-event kernels: the
#: tracker raw-record closures and the scheme act/close/RFM kernel
#: builders.  The builders themselves run once per bank at bind time
#: and may allocate freely.
_KERNEL_BUILDER = re.compile(r"^(raw_kernel|_build_\w*kernels?)$")

_ALLOC_CALLS = {"list", "dict", "set", "frozenset", "sorted", "tuple"}


@register_rule
class NoAllocInKernels(FileRule):
    """Per-event kernel bodies allocate no containers.

    PR 3 rebuilt every tracker as allocation-free integer kernels —
    ``record_unit`` and the closures returned by ``raw_kernel`` /
    ``_build_*_kernels`` run once per ACT/PRE, and one list or dict
    born there re-introduces the per-event overhead that rebuild
    removed.  Bind-time code (the builder bodies) may allocate.
    """

    rule_id = "no-alloc-in-kernels"
    summary = ("no list/dict/set/comprehension allocation inside "
               "record_unit or act/close/RFM kernel closures")

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        for func in _functions(parsed.tree):
            if func.name == "record_unit":
                yield from self._scan_kernel(parsed, func, func.name)
            elif _KERNEL_BUILDER.match(func.name):
                for stmt in ast.walk(func):
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)) \
                            and stmt is not func:
                        yield from self._scan_kernel(
                            parsed, stmt, f"{func.name}.{stmt.name}"
                        )

    def _scan_kernel(
        self, parsed: ParsedFile, func: ast.FunctionDef, label: str
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            alloc = None
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                alloc = "a comprehension"
            elif isinstance(node, ast.List):
                alloc = "a list literal"
            elif isinstance(node, ast.Dict):
                alloc = "a dict literal"
            elif isinstance(node, ast.Set):
                alloc = "a set literal"
            elif isinstance(node, ast.Call) \
                    and _call_name(node) in _ALLOC_CALLS:
                alloc = f"{_call_name(node)}()"
            if alloc is not None:
                yield Finding(
                    file=parsed.rel, line=node.lineno, rule_id=self.rule_id,
                    message=(
                        f"{alloc} inside hot kernel {label!r}; kernels "
                        "run per-event and must stay allocation-free"
                    ),
                )


# -- no-wallclock-nondeterminism -------------------------------------------


_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.perf_counter",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}


@register_rule
class NoWallclockNondeterminism(FileRule):
    """Simulation state never reads the clock or an unseeded RNG.

    Byte-identical replay — the property every chaos/equivalence test
    asserts — dies the moment anything in the simulation tiers calls
    ``time.time()``, ``datetime.now()``, an unseeded
    ``random.Random()``, or the module-level ``random.*`` functions
    (whose global state any import may perturb).  RNGs must be seeded
    from the recipe (``random.Random(seed)``).
    """

    rule_id = "no-wallclock-nondeterminism"
    summary = ("no time.time/datetime.now/unseeded RNG in sim/, "
               "trackers/, workloads/, scenarios/")
    scope = ("sim/", "trackers/", "workloads/", "scenarios/")

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _WALLCLOCK_CALLS:
                yield Finding(
                    file=parsed.rel, line=node.lineno, rule_id=self.rule_id,
                    message=(
                        f"{name}() in simulation code breaks deterministic "
                        "replay; derive values from the recipe instead"
                    ),
                )
            elif name == "random.Random" and not node.args \
                    and not node.keywords:
                yield Finding(
                    file=parsed.rel, line=node.lineno, rule_id=self.rule_id,
                    message=(
                        "unseeded random.Random() in simulation code; "
                        "seed it from the recipe (random.Random(seed))"
                    ),
                )
            elif name.startswith("random.") \
                    and name.count(".") == 1 \
                    and name.rsplit(".", 1)[-1] not in (
                        "Random", "SystemRandom"):
                yield Finding(
                    file=parsed.rel, line=node.lineno, rule_id=self.rule_id,
                    message=(
                        f"module-level {name}() uses the shared global RNG "
                        "stream; use a recipe-seeded random.Random(seed)"
                    ),
                )


# -- simresult-parity ------------------------------------------------------


def _simresult_fields(stats: ParsedFile) -> Tuple[Set[str], Set[str], int]:
    """(all fields, mutable fields, class line) of ``SimResult``."""
    for node in ast.walk(stats.tree):
        if isinstance(node, ast.ClassDef) and node.name == "SimResult":
            fields: Set[str] = set()
            mutable: Set[str] = set()
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                name = _arg_name(stmt.target)
                if name is None or name.startswith("_"):
                    continue
                fields.add(name)
                if isinstance(stmt.annotation, ast.Subscript):
                    mutable.add(name)
                elif stmt.value is not None \
                        and isinstance(stmt.value, ast.Call) \
                        and _last_segment(stmt.value) == "field" \
                        and any(kw.arg == "default_factory"
                                for kw in stmt.value.keywords):
                    mutable.add(name)
            return fields, mutable, node.lineno
    return set(), set(), 1


def _constructor_kwargs(parsed: ParsedFile,
                        callee: str) -> List[Tuple[int, Set[str]]]:
    calls = []
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.Call) and _last_segment(node) == callee:
            kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}
            calls.append((node.lineno, kwargs))
    return calls


def _json_dict_keys(parsed: ParsedFile, func_name: str) -> Set[str]:
    """String keys of the dict literal returned by ``SimResult.<func>``."""
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.FunctionDef) and node.name == func_name:
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) \
                        and isinstance(stmt.value, ast.Dict):
                    return {
                        key for key in (
                            _str_const(k) for k in stmt.value.keys
                            if k is not None
                        ) if key is not None
                    }
    return set()


@register_rule
class SimResultParity(Rule):
    """Both engines and the batch tier agree on ``SimResult`` fields.

    The cross-module check: the ``SimResult(...)`` constructions in
    ``sim/system.py`` and ``sim/reference.py`` must each pass *every*
    dataclass field explicitly (a new metric collected by one engine
    only is exactly the bug class the equivalence matrix catches too
    late), ``to_json``/``from_json`` must round-trip every field, and
    the batch tier's follower substitution list
    (``dataclasses.replace`` in ``_follower_result``) must copy every
    mutable field so group siblings never share containers.
    """

    rule_id = "simresult-parity"
    summary = ("SimResult fields assigned by sim/system.py, "
               "sim/reference.py and the batch substitution list agree")

    _ROLES = {
        "sim/stats.py": "stats",
        "sim/system.py": "system",
        "sim/reference.py": "reference",
        "sim/batch.py": "batch",
    }

    def check(self, files: Sequence[ParsedFile]) -> Iterator[Finding]:
        by_role: Dict[str, ParsedFile] = {}
        for parsed in files:
            for suffix, role in self._ROLES.items():
                if parsed.rel.endswith(suffix):
                    by_role[role] = parsed
        stats = by_role.get("stats")
        if stats is None:
            return          # scope does not include the sim package
        fields, mutable, class_line = _simresult_fields(stats)
        if not fields:
            return

        for role in ("system", "reference"):
            parsed = by_role.get(role)
            if parsed is None:
                continue
            for line, kwargs in _constructor_kwargs(parsed, "SimResult"):
                missing = fields - kwargs
                unknown = kwargs - fields
                if missing:
                    yield Finding(
                        file=parsed.rel, line=line, rule_id=self.rule_id,
                        message=(
                            "SimResult(...) does not assign "
                            f"{sorted(missing)}; every engine must collect "
                            "every field or the equivalence matrix drifts"
                        ),
                    )
                if unknown:
                    yield Finding(
                        file=parsed.rel, line=line, rule_id=self.rule_id,
                        message=(
                            f"SimResult(...) passes unknown field(s) "
                            f"{sorted(unknown)}"
                        ),
                    )

        for func_name in ("to_json", "from_json"):
            keys = (
                _json_dict_keys(stats, func_name)
                if func_name == "to_json"
                else {
                    kw
                    for _line, kwargs in _constructor_kwargs(stats, "cls")
                    for kw in kwargs
                }
            )
            if keys and keys != fields:
                diff = sorted(fields.symmetric_difference(keys))
                yield Finding(
                    file=stats.rel, line=class_line, rule_id=self.rule_id,
                    message=(
                        f"SimResult.{func_name} does not round-trip "
                        f"field(s) {diff}; store blobs would silently "
                        "drop them"
                    ),
                )

        batch = by_role.get("batch")
        if batch is not None:
            for line, kwargs in _constructor_kwargs(batch, "replace"):
                if not kwargs:
                    continue
                unknown = kwargs - fields
                uncopied = mutable - kwargs
                if unknown:
                    yield Finding(
                        file=batch.rel, line=line, rule_id=self.rule_id,
                        message=(
                            "follower substitution list names unknown "
                            f"SimResult field(s) {sorted(unknown)}"
                        ),
                    )
                if uncopied:
                    yield Finding(
                        file=batch.rel, line=line, rule_id=self.rule_id,
                        message=(
                            "follower substitution list does not copy "
                            f"mutable field(s) {sorted(uncopied)}; group "
                            "siblings would share one container"
                        ),
                    )
