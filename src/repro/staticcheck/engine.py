"""Rule engine for ``repro check``: registry, parse cache, suppressions.

The engine mirrors the experiment-registry idiom
(:mod:`repro.experiments.registry`): rules self-register at import time
via the :func:`register_rule` decorator, and every consumer — the CLI,
the CI smoke wrapper, the tests — derives its rule list from the one
registry, so selection and ``--list-rules`` can never drift.

Design points:

* **Stdlib only.**  Everything is :mod:`ast` + :mod:`tokenize`-free
  line scanning; the checker must run in the barest CI container.
* **Parse once per file.**  :class:`ParsedFile` carries the parsed tree
  plus the raw source lines; a process-local cache keyed by
  ``(path, mtime, size)`` makes repeated runs (the ``--changed``
  pre-commit loop, the test suite's whole-repo pass) cheap.
* **Findings are data.**  :class:`Finding` is ``(file, line, rule_id,
  message)`` — renderable as human text or ``--json``, and stable
  enough to diff across commits.
* **Suppressions are counted, never free.**  ``# repro: allow[rule-id]
  reason`` on the finding's line (or the line above) suppresses it, but
  every suppression — used or not — is reported, so waivers stay
  visible instead of rotting silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: ``# repro: allow[rule-id] reason`` — the inline waiver syntax.  The
#: lookbehind keeps backtick-quoted mentions in docstrings (like the
#: one above) from registering as waivers.
_SUPPRESS_RE = re.compile(
    r"(?<!`)#\s*repro:\s*allow\[(?P<rule>[a-z0-9-]+)\]\s*(?P<reason>.*)$"
)

#: Synthetic rule id reported for files the parser rejects.  A file
#: that cannot be parsed cannot be checked, which must fail the gate —
#: never read as "clean".
PARSE_ERROR_RULE = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    file: str
    line: int
    rule_id: str
    message: str

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: allow[...]`` waiver found in the source."""

    file: str
    line: int
    rule_id: str
    reason: str

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ParsedFile:
    """One checked file: its path forms, source, tree and waivers."""

    path: Path                    #: absolute path on disk
    rel: str                      #: posix path relative to the check root
    source: str
    tree: ast.Module
    suppressions: Tuple[Suppression, ...]

    def lines(self) -> List[str]:
        return self.source.splitlines()


#: Process-local parse cache: ``path -> (mtime_ns, size, ParsedFile)``.
#: Keyed on stat identity so an edited file re-parses and an untouched
#: one (the common case across ``--changed`` runs and tests) does not.
_PARSE_CACHE: Dict[Path, Tuple[int, int, ParsedFile]] = {}


def _scan_suppressions(rel: str, source: str) -> Tuple[Suppression, ...]:
    found: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is not None:
            found.append(Suppression(
                file=rel,
                line=lineno,
                rule_id=match.group("rule"),
                reason=match.group("reason").strip(),
            ))
    return tuple(found)


def parse_file(path: Path, root: Path) -> Tuple[Optional[ParsedFile],
                                                Optional[Finding]]:
    """Parse one source file, through the cache.

    Returns ``(parsed, None)`` on success and ``(None, finding)`` when
    the file cannot be read or parsed — the finding carries the
    :data:`PARSE_ERROR_RULE` id so the gate fails loudly.
    """
    path = Path(path)
    try:
        rel = path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        stat = path.stat()
        cached = _PARSE_CACHE.get(path)
        if cached is not None and cached[0] == stat.st_mtime_ns \
                and cached[1] == stat.st_size:
            return cached[2], None
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(
            file=rel, line=int(line), rule_id=PARSE_ERROR_RULE,
            message=f"cannot parse: {exc}",
        )
    parsed = ParsedFile(
        path=path, rel=rel, source=source, tree=tree,
        suppressions=_scan_suppressions(rel, source),
    )
    _PARSE_CACHE[path] = (stat.st_mtime_ns, stat.st_size, parsed)
    return parsed, None


# -- the rule protocol and registry ---------------------------------------


class Rule:
    """One mechanized source contract.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check` over the whole parsed-file set — which is what lets a
    rule correlate *across* modules (``simresult-parity``).  Rules that
    are naturally per-file subclass :class:`FileRule` instead.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, files: Sequence[ParsedFile]) -> Iterator[Finding]:
        raise NotImplementedError


class FileRule(Rule):
    """A rule applied independently to each file in its scope.

    ``scope`` is a tuple of posix path fragments; a file participates
    when any fragment occurs in its check-root-relative path (empty
    scope means every file).  ``exclude`` fragments veto.
    """

    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if any(fragment in rel for fragment in self.exclude):
            return False
        if not self.scope:
            return True
        return any(fragment in rel for fragment in self.scope)

    def check(self, files: Sequence[ParsedFile]) -> Iterator[Finding]:
        for parsed in files:
            if self.applies_to(parsed.rel):
                yield from self.check_file(parsed)

    def check_file(self, parsed: ParsedFile) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator: instantiate and register a rule by its id.

    Registration happens at import of :mod:`repro.staticcheck.rules`,
    mirroring how experiments self-register on package import.
    Duplicate ids are a programming error.
    """
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"rule {rule.rule_id!r} registered twice")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    return list(_REGISTRY.values())


def get_rules(ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Rules selected by id (all when ``ids`` is None).

    Unknown ids raise KeyError naming the known set, matching the
    experiment registry's error contract.
    """
    if ids is None:
        return all_rules()
    chosen: List[Rule] = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(
                f"unknown rule {rule_id!r}; choose from: {known}"
            )
        chosen.append(_REGISTRY[rule_id])
    return chosen


# -- running a check -------------------------------------------------------


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` run."""

    findings: List[Finding]                    #: unsuppressed violations
    suppressed: List[Finding]                  #: violations waived inline
    suppressions: List[Suppression]            #: every waiver in the scope
    files_checked: int
    rules_run: List[str]
    root: str = "."
    unused_suppressions: List[Suppression] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any unsuppressed finding remains."""
        return 1 if self.findings else 0

    def to_json(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "suppressions": [s.to_json() for s in self.suppressions],
            "unused_suppressions": [
                s.to_json() for s in self.unused_suppressions
            ],
            "counts": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "suppressions": len(self.suppressions),
            },
        }

    def summary_lines(self) -> List[str]:
        lines = [finding.render() for finding in self.findings]
        for finding in self.suppressed:
            lines.append(f"{finding.render()}  (suppressed)")
        lines.append(
            f"{self.files_checked} file(s), {len(self.rules_run)} rule(s): "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed "
            f"({len(self.suppressions)} waiver(s) in scope)"
        )
        for waiver in self.unused_suppressions:
            lines.append(
                f"{waiver.file}:{waiver.line}: unused waiver "
                f"[{waiver.rule_id}] {waiver.reason}"
            )
        return lines


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: Dict[Path, None] = {}
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for path in sorted(entry.rglob("*.py")):
                seen[path] = None
        elif entry.suffix == ".py" and entry.is_file():
            seen[entry] = None
    return sorted(seen)


def _is_suppressed(finding: Finding,
                   by_file: Dict[str, List[Suppression]]) -> Optional[Suppression]:
    """The waiver covering ``finding``, if any.

    A waiver applies to findings of its rule on its own line (trailing
    comment) or the line below (comment-above style).
    """
    for waiver in by_file.get(finding.file, ()):
        if waiver.rule_id != finding.rule_id:
            continue
        if finding.line in (waiver.line, waiver.line + 1):
            return waiver
    return None


def run_check(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> CheckReport:
    """Run the selected rules over every ``.py`` file under ``paths``.

    ``root`` anchors the relative paths findings are reported under
    (default: the common current directory).  Unknown rule ids raise
    KeyError; everything else — unreadable files, syntax errors — is a
    finding, never an exception.
    """
    root = Path(root) if root is not None else Path.cwd()
    rules = get_rules(rule_ids)
    files: List[ParsedFile] = []
    findings: List[Finding] = []
    for path in collect_files(paths):
        parsed, error = parse_file(path, root)
        if error is not None:
            findings.append(error)
        elif parsed is not None:
            files.append(parsed)
    for rule in rules:
        findings.extend(rule.check(files))
    findings.sort(key=lambda f: (f.file, f.line, f.rule_id))

    by_file: Dict[str, List[Suppression]] = {}
    suppressions: List[Suppression] = []
    for parsed in files:
        for waiver in parsed.suppressions:
            by_file.setdefault(parsed.rel, []).append(waiver)
            suppressions.append(waiver)

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[Suppression, None] = {}
    for finding in findings:
        waiver = _is_suppressed(finding, by_file)
        if waiver is None:
            kept.append(finding)
        else:
            suppressed.append(finding)
            used[waiver] = None
    return CheckReport(
        findings=kept,
        suppressed=suppressed,
        suppressions=suppressions,
        files_checked=len(files),
        rules_run=[rule.rule_id for rule in rules],
        root=str(root),
        unused_suppressions=[s for s in suppressions if s not in used],
    )
