"""Per-core trace sources: the heterogeneous workload layer.

A *trace source* declares what one core's memory traffic is — a named
SPEC/STREAM profile copy, an attack-pattern generator, or nothing at
all — without generating anything.  Sources are small frozen
dataclasses, so a tuple of them is hashable and can key the compiled-
trace and sweep caches the same way a workload-name string does.

Three source kinds:

* :class:`ProfileSource` — one rate-mode copy of a named benign
  profile, placed with the exact per-core recipe of
  :func:`repro.workloads.synthetic.rate_mode_traces` (same seed
  derivation, same address offset), so an all-:class:`ProfileSource`
  scenario is bit-identical to the legacy single-workload path.
* :class:`AttackerSource` — a deterministic attack trace from
  :mod:`repro.workloads.attacks` (hammer, K-sided, Row-Press dwell,
  decoy, refresh-synchronized) aimed at an explicit (channel, bank).
  All shape parameters are stored in DRAM cycles so trace generation is
  a pure function of the source and the mapper geometry.
* :class:`IdleSource` — an empty trace.  Scenario baselines replace
  attackers with idle cores so victim cores keep their core ids (and
  their per-core metrics stay comparable).

:func:`build_core_traces` turns a source tuple into per-core
:class:`~repro.workloads.trace.Trace` objects;
:func:`repro.workloads.compiled.compiled_source_traces` adds the
process-local compiled cache in front of it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Tuple, Union

from ..dram.address import MopAddressMapper
from .attacks import (
    decoy_trace,
    hammer_trace,
    k_sided_hammer_trace,
    refresh_sync_hammer_trace,
    row_press_dwell_trace,
)
from .profiles import profile_for
from .synthetic import profile_core_trace
from .trace import Trace

#: Attack patterns :class:`AttackerSource` can name.
ATTACK_PATTERNS = (
    "hammer", "k_sided", "dwell", "decoy", "refresh_sync"
)


@dataclass(frozen=True)
class ProfileSource:
    """One rate-mode copy of a named benign profile on one core."""

    profile: str

    def __post_init__(self) -> None:
        profile_for(self.profile)  # validate the name early

    def recipe(self) -> Dict[str, Any]:
        """Explicit field dict for content-addressed artifact keys."""
        return {"kind": "profile", "profile": self.profile}

    def build(
        self, core_id: int, n_requests: int, seed: int,
        mapper: MopAddressMapper,
    ) -> Trace:
        """This core's trace — the exact legacy rate-mode recipe."""
        return profile_core_trace(self.profile, core_id, n_requests, seed)


@dataclass(frozen=True)
class IdleSource:
    """A core that issues no memory traffic (scenario baselines)."""

    def recipe(self) -> Dict[str, Any]:
        """Explicit field dict for content-addressed artifact keys."""
        return {"kind": "idle"}

    def build(
        self, core_id: int, n_requests: int, seed: int,
        mapper: MopAddressMapper,
    ) -> Trace:
        """An empty trace: the core finishes immediately."""
        return Trace([])


@dataclass(frozen=True)
class AttackerSource:
    """A deterministic attack-trace generator pinned to one bank.

    ``pattern`` selects the generator; the remaining fields parameterize
    it (unused fields are ignored by the other patterns):

    * ``"hammer"`` — round-robin conflicts over ``rows``
      (:func:`~repro.workloads.attacks.hammer_trace`), ``gap_cycles``
      of think time between accesses.
    * ``"k_sided"`` — K aggressors around ``victim_row``
      (:func:`~repro.workloads.attacks.k_sided_hammer_trace`).
    * ``"dwell"`` — Row-Press dwell over ``rows``: ``hits_per_dwell``
      column hits spaced ``hold_gap_cycles`` apart per aggressor
      (:func:`~repro.workloads.attacks.row_press_dwell_trace`).
    * ``"decoy"`` — hold ``rows[0]`` open, force-close it with
      ``rows[1]`` (:func:`~repro.workloads.attacks.decoy_trace`).
    * ``"refresh_sync"`` — ``burst_acts`` back-to-back conflicts over
      ``rows``, then ``idle_gap_cycles`` of silence
      (:func:`~repro.workloads.attacks.refresh_sync_hammer_trace`).

    Every duration is in DRAM cycles, so the generated trace depends
    only on this source and the mapper geometry — presets derive cycle
    values from the timings once, at definition time.
    """

    pattern: str
    bank: int = 0
    channel: int = 0
    rows: Tuple[int, ...] = (64, 66)
    victim_row: int = 65
    k: int = 2
    gap_cycles: int = 0
    hold_gap_cycles: int = 120
    hits_per_dwell: int = 4
    hold_hits: int = 2
    burst_acts: int = 64
    idle_gap_cycles: int = 8192

    def __post_init__(self) -> None:
        if self.pattern not in ATTACK_PATTERNS:
            raise ValueError(
                f"unknown attack pattern {self.pattern!r}; "
                f"choose from: {', '.join(ATTACK_PATTERNS)}"
            )
        if self.bank < 0 or self.channel < 0:
            raise ValueError("bank and channel must be non-negative")

    def recipe(self) -> Dict[str, Any]:
        """Explicit field dict for content-addressed artifact keys.

        Every parameter field is included (even ones the selected
        pattern ignores), so the dict — unlike ``repr`` — is a stable
        function of the declared fields alone.
        """
        fields = asdict(self)
        fields["rows"] = list(fields["rows"])
        return {"kind": "attacker", **fields}

    def validate_for(self, channels: int, banks_per_channel: int) -> None:
        """Reject targets outside the simulated topology."""
        if self.channel >= channels:
            raise ValueError(
                f"attacker channel {self.channel} outside the "
                f"{channels}-channel topology"
            )
        if self.bank >= banks_per_channel:
            raise ValueError(
                f"attacker bank {self.bank} outside the "
                f"{banks_per_channel}-bank channel"
            )

    def build(
        self, core_id: int, n_requests: int, seed: int,
        mapper: MopAddressMapper,
    ) -> Trace:
        """Generate the attack trace against ``mapper``'s geometry."""
        self.validate_for(mapper.channels, mapper.banks_per_channel)
        if self.pattern == "hammer":
            return hammer_trace(
                mapper, self.bank, list(self.rows), n_requests,
                channel=self.channel, gap_cycles=self.gap_cycles,
            )
        if self.pattern == "k_sided":
            return k_sided_hammer_trace(
                mapper, self.bank, self.victim_row, self.k, n_requests,
                channel=self.channel, gap_cycles=self.gap_cycles,
            )
        if self.pattern == "dwell":
            return row_press_dwell_trace(
                mapper, self.bank, list(self.rows), n_requests,
                hold_gap_cycles=self.hold_gap_cycles,
                hits_per_dwell=self.hits_per_dwell,
                channel=self.channel,
            )
        if self.pattern == "decoy":
            if len(self.rows) < 2:
                raise ValueError("decoy pattern needs (target, decoy) rows")
            return decoy_trace(
                mapper, self.bank, self.rows[0], self.rows[1], n_requests,
                hold_gap_cycles=self.hold_gap_cycles,
                hold_hits=self.hold_hits,
                channel=self.channel,
            )
        if self.pattern == "refresh_sync":
            return refresh_sync_hammer_trace(
                mapper, self.bank, list(self.rows), n_requests,
                burst_acts=self.burst_acts,
                idle_gap_cycles=self.idle_gap_cycles,
                channel=self.channel,
            )
        raise AssertionError("unreachable")


@dataclass(frozen=True)
class PhasedAttackerSource:
    """An attacker that switches behavior every ``phase_len`` requests.

    The trace concatenates each phase's generated requests in order,
    cycling through ``phases`` until ``n_requests`` are emitted — a
    phase-changing adversary (hammer, then dwell, then decoy, ...)
    that no single-pattern generator can express.  Phases may target
    different banks/channels, so one core can also spread pressure.
    """

    phases: Tuple[AttackerSource, ...]
    phase_len: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ValueError("a phased attacker needs at least one phase")
        for phase in self.phases:
            if not isinstance(phase, AttackerSource):
                raise ValueError("phases must be AttackerSource values")
        if self.phase_len < 1:
            raise ValueError("phase_len must be positive")

    def recipe(self) -> Dict[str, Any]:
        """Explicit field dict for content-addressed artifact keys."""
        return {
            "kind": "phased",
            "phase_len": self.phase_len,
            "phases": [phase.recipe() for phase in self.phases],
        }

    def validate_for(self, channels: int, banks_per_channel: int) -> None:
        """Every phase's target must fit the simulated topology."""
        for phase in self.phases:
            phase.validate_for(channels, banks_per_channel)

    def build(
        self, core_id: int, n_requests: int, seed: int,
        mapper: MopAddressMapper,
    ) -> Trace:
        """Concatenate phase traces, cycling until ``n_requests``."""
        requests: List[Any] = []
        phase_idx = 0
        while len(requests) < n_requests:
            phase = self.phases[phase_idx % len(self.phases)]
            chunk = phase.build(core_id, self.phase_len, seed, mapper)
            if len(chunk) == 0:
                break
            requests.extend(chunk)
            phase_idx += 1
        return Trace(requests[:n_requests])


#: Anything that can sit in a scenario's per-core assignment tuple.
TraceSource = Union[
    ProfileSource, AttackerSource, PhasedAttackerSource, IdleSource
]

#: A full per-core assignment: one source per simulated core.
CoreSources = Tuple[TraceSource, ...]


def is_attacker(source: TraceSource) -> bool:
    """Whether ``source`` is an attack-pattern generator."""
    return isinstance(source, (AttackerSource, PhasedAttackerSource))


def source_from_recipe(recipe: Dict[str, Any]) -> TraceSource:
    """Reconstruct a trace source from its :meth:`recipe` dict.

    The exact inverse of each source's ``recipe()`` — round-tripping
    yields an equal (frozen, hashable) source, which is what lets a
    stored fuzz reproducer be replayed from its content-addressed blob
    alone.
    """
    kind = recipe.get("kind")
    if kind == "profile":
        return ProfileSource(recipe["profile"])
    if kind == "idle":
        return IdleSource()
    if kind == "attacker":
        fields = {k: v for k, v in recipe.items() if k != "kind"}
        fields["rows"] = tuple(fields["rows"])
        return AttackerSource(**fields)
    if kind == "phased":
        phases = tuple(
            source_from_recipe(phase) for phase in recipe["phases"]
        )
        return PhasedAttackerSource(
            phases=phases, phase_len=recipe["phase_len"]  # type: ignore[arg-type]
        )
    raise ValueError(f"unknown source recipe kind: {kind!r}")


def build_core_traces(
    sources: CoreSources,
    n_requests_per_core: int,
    seed: int,
    mapper: MopAddressMapper,
) -> List[Trace]:
    """One trace per source, in core order.

    Deterministic: every source builds from ``(source, core_id,
    n_requests, seed, mapper geometry)`` alone, so cached compilations
    are bit-identical to regeneration.
    """
    return [
        source.build(core_id, n_requests_per_core, seed, mapper)
        for core_id, source in enumerate(sources)
    ]
