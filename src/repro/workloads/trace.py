"""Memory-request traces: the interface between workloads and the core model.

A workload is an iterator of :class:`TraceRequest` items — the LLC-miss
stream of one core.  ``gap_cycles`` is the core-side think time between
retiring the previous request's issue slot and issuing this one; memory-
bound workloads have small gaps, compute-bound ones large gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class TraceRequest:
    """One LLC-miss: a 64-byte line address plus issue spacing."""

    address: int
    is_write: bool = False
    gap_cycles: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.gap_cycles < 0:
            raise ValueError("gap_cycles must be non-negative")


class Trace:
    """A finite, replayable request stream."""

    def __init__(self, requests: Iterable[TraceRequest]) -> None:
        self.requests: List[TraceRequest] = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[TraceRequest]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> TraceRequest:
        return self.requests[index]

    def offset_by(self, byte_offset: int) -> "Trace":
        """Shift all addresses — used for rate-mode core copies."""
        return Trace(
            TraceRequest(
                address=request.address + byte_offset,
                is_write=request.is_write,
                gap_cycles=request.gap_cycles,
            )
            for request in self.requests
        )

    def write_fraction(self) -> float:
        if not self.requests:
            return 0.0
        writes = sum(1 for request in self.requests if request.is_write)
        return writes / len(self.requests)
