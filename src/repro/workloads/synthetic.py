"""Synthetic trace generation from workload profiles.

Generates the per-core LLC-miss streams described by
:mod:`repro.workloads.profiles`.  SPEC-like traces are runs of
consecutive cache lines (geometric run length) at random locations;
STREAM-like traces interleave fully-sequential read/write streams.
Addresses are line-aligned byte addresses; the MOP mapper decides how
they land on banks and rows.
"""

from __future__ import annotations

import random
from typing import List

from ..dram.address import LINE_BYTES
from .profiles import (
    WorkloadProfile,
    is_mix,
    mix_components,
    profile_for,
)
from .trace import Trace, TraceRequest

#: Footprint of one synthetic core's address space, in lines.  Large
#: enough that rate-mode copies never collide.
CORE_FOOTPRINT_LINES = 1 << 24

#: Base-address separation between STREAM arrays, in lines.
STREAM_ARRAY_STRIDE_LINES = 1 << 20

#: Byte offset between consecutive rate-mode core copies: disjoint
#: footprints plus a small row-group skew so the copies start in
#: different banks (the footprint itself is a multiple of every bank
#: count we use).  Shared with :mod:`repro.workloads.sources` so a
#: per-core :class:`~repro.workloads.sources.ProfileSource` reproduces
#: the rate-mode placement bit-identically.
CORE_OFFSET_BYTES = (CORE_FOOTPRINT_LINES * 4 + 5 * 8) * LINE_BYTES


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric run length with the given mean (at least 1)."""
    if mean <= 1.0:
        return 1
    # P(stop) per step = 1/mean gives mean run length `mean`.
    p_stop = 1.0 / mean
    length = 1
    while rng.random() > p_stop and length < 1024:
        length += 1
    return length


def _gap(rng: random.Random, mean: int) -> int:
    """Bounded, jittered think time around the profile mean."""
    if mean <= 0:
        return 0
    return max(0, int(rng.gauss(mean, mean * 0.3)))


def spec_like_trace(
    profile: WorkloadProfile, n_requests: int, seed: int = 0
) -> Trace:
    """Runs of consecutive lines at random locations (SPEC-like)."""
    rng = random.Random(seed)
    requests: List[TraceRequest] = []
    while len(requests) < n_requests:
        start_line = rng.randrange(CORE_FOOTPRINT_LINES)
        run = _geometric(rng, profile.run_lines)
        for offset in range(run):
            if len(requests) >= n_requests:
                break
            requests.append(
                TraceRequest(
                    address=(start_line + offset) * LINE_BYTES,
                    is_write=rng.random() < profile.write_fraction,
                    gap_cycles=_gap(rng, profile.gap_cycles),
                )
            )
    return Trace(requests)


def stream_like_trace(
    profile: WorkloadProfile, n_requests: int, seed: int = 0
) -> Trace:
    """Interleaved sequential streams (STREAM kernel).

    The kernel touches one element of every array per loop iteration, so
    the streams advance in lockstep: for ``add`` the request order is
    a[0], b[0], c[0], a[1], b[1], c[1], ...  Each array is a disjoint
    sequential region, so every stream enjoys full 8-lines-per-row MOP
    locality — until something (tMRO, a row conflict) closes its row.
    """
    if not profile.streams:
        raise ValueError(f"{profile.name} has no stream specification")
    rng = random.Random(seed)
    n_streams = len(profile.streams)
    # Offset each array by a few row groups so concurrent streams start
    # in different banks instead of marching in lockstep on one.
    bases = [
        (1 + 2 * i) * STREAM_ARRAY_STRIDE_LINES + 11 * i * 8
        for i in range(n_streams)
    ]
    # Random starting phase (in whole row groups) per stream: real
    # arrays are not bank-aligned with each other, and a deterministic
    # lockstep start would make bank collisions an all-or-nothing
    # artifact of the initial alignment.
    positions = [8 * rng.randrange(256) for _ in range(n_streams)]
    requests: List[TraceRequest] = []
    stream_index = 0
    while len(requests) < n_requests:
        kind = profile.streams[stream_index]
        line = bases[stream_index] + positions[stream_index]
        positions[stream_index] += 1
        requests.append(
            TraceRequest(
                address=line * LINE_BYTES,
                is_write=(kind == "w"),
                gap_cycles=_gap(rng, profile.gap_cycles),
            )
        )
        stream_index = (stream_index + 1) % n_streams
    return Trace(requests)


def trace_for_profile(
    profile: WorkloadProfile, n_requests: int, seed: int = 0
) -> Trace:
    if profile.category == "stream":
        return stream_like_trace(profile, n_requests, seed)
    return spec_like_trace(profile, n_requests, seed)


def per_core_profile_names(name: str, n_cores: int) -> List[str]:
    """The per-core profile assignment of a named rate-mode workload.

    SPEC and single-kernel STREAM workloads run ``n_cores`` identical
    copies; mixes split the cores between the two component kernels
    (Section III-A: "two with 4 copies each").
    """
    if n_cores < 1:
        raise ValueError("n_cores must be positive")
    if is_mix(name):
        first, second = mix_components(name)
        half = n_cores // 2
        return [first] * half + [second] * (n_cores - half)
    profile_for(name)  # validate early
    return [name] * n_cores


def profile_core_trace(
    name: str, core_id: int, n_requests: int, seed: int = 0
) -> Trace:
    """Core ``core_id``'s rate-mode trace for one named profile.

    Exactly the recipe :func:`rate_mode_traces` uses per core — seed
    ``seed + core_id``, address offset ``core_id * CORE_OFFSET_BYTES``
    — so heterogeneous scenarios that assign profiles per core place
    each copy bit-identically to the legacy single-workload path.
    """
    base = trace_for_profile(
        profile_for(name), n_requests, seed=seed + core_id
    )
    return base.offset_by(core_id * CORE_OFFSET_BYTES)


def rate_mode_traces(
    name: str, n_cores: int, n_requests_per_core: int, seed: int = 0
) -> List[Trace]:
    """Per-core traces for a named workload in rate mode."""
    return [
        profile_core_trace(core_name, core_id, n_requests_per_core, seed)
        for core_id, core_name in enumerate(per_core_profile_names(name, n_cores))
    ]
